"""Ablation — the asynchronous alarm feedback protocol.

The paper assumes every scheduler uses the alarm mechanism (servers
exclude themselves above the threshold theta). This ablation measures
how much that feedback contributes, per policy, by disabling it and by
sweeping theta. The ``-FB`` variant additionally scales TTLs down while
alarms are active (our extension; see repro.core.ttl.feedback).
"""

import pytest

from repro.experiments.config import SimulationConfig
from repro.experiments.figures import default_duration
from repro.experiments.reporting import format_table
from repro.experiments.simulation import run_simulation

from conftest import BENCH_SEED

POLICIES = ["RR", "DRR2-TTL/S_K", "DRR2-TTL/S_K-FB", "PRR2-TTL/K"]
THRESHOLDS = [0.75, 0.9, 1.0]


def run_ablation():
    duration = default_duration()
    rows = []
    for policy in POLICIES:
        base = SimulationConfig(
            policy=policy, heterogeneity=35, duration=duration,
            seed=BENCH_SEED,
        )
        no_feedback = run_simulation(base.replace(alarm_feedback=False))
        cells = [policy, f"{no_feedback.prob_max_below(0.98):.3f}"]
        for theta in THRESHOLDS:
            result = run_simulation(base.replace(alarm_threshold=theta))
            cells.append(f"{result.prob_max_below(0.98):.3f}")
        rows.append(tuple(cells))
    return rows


def test_ablation_alarm_feedback(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    print()
    print("Ablation: alarm feedback (P(max<0.98), het 35%)")
    headers = ["policy", "no feedback"] + [
        f"theta={theta:g}" for theta in THRESHOLDS
    ]
    print(format_table(headers, rows))
    assert len(rows) == len(POLICIES)
