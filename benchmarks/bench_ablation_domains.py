"""Ablation — sensitivity to the number of connected domains K.

Table 1 gives K a range of 10-100 with default 20. More domains mean a
less concentrated Zipf distribution (the hottest domain's share shrinks
as 1/H_K), so constant-TTL policies recover some ground while adaptive
policies stay strong throughout.
"""

import pytest

from repro.experiments.config import SimulationConfig
from repro.experiments.figures import default_duration
from repro.experiments.reporting import format_table
from repro.experiments.simulation import run_simulation

from conftest import BENCH_SEED

POLICIES = ["RR", "PRR2-TTL/2", "DRR2-TTL/S_K"]
DOMAIN_COUNTS = [10, 20, 50, 100]


def run_ablation():
    duration = default_duration()
    rows = []
    for policy in POLICIES:
        cells = [policy]
        for domains in DOMAIN_COUNTS:
            config = SimulationConfig(
                policy=policy,
                domain_count=domains,
                heterogeneity=35,
                duration=duration,
                seed=BENCH_SEED,
            )
            result = run_simulation(config)
            cells.append(f"{result.prob_max_below(0.98):.3f}")
        rows.append(tuple(cells))
    return rows


def test_ablation_domain_count(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    print()
    print("Ablation: connected domains K (P(max<0.98), het 35%)")
    headers = ["policy"] + [f"K={k}" for k in DOMAIN_COUNTS]
    print(format_table(headers, rows))
    # The adaptive policy dominates RR at every K.
    rr = [float(v) for v in rows[0][1:]]
    adaptive = [float(v) for v in rows[2][1:]]
    assert all(a >= r for a, r in zip(adaptive, rr))
