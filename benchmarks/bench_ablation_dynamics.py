"""Extension — non-stationary workloads and estimator choice.

The paper's closing motivation: "in a more dynamic environment where
client request rates from the domains may change constantly, it can be
difficult to obtain an accurate estimate". Here the identities of the
five hottest domains rotate cyclically during the run. A static oracle
(accurate at t=0, never updated) degrades, while the measured (EWMA) and
sliding-window estimators track the rotation.
"""

import pytest

from repro.experiments.config import SimulationConfig
from repro.experiments.figures import default_duration
from repro.experiments.reporting import format_table
from repro.experiments.simulation import run_simulation

from conftest import BENCH_SEED

POLICIES = ["DRR2-TTL/S_K", "PRR2-TTL/K"]
ESTIMATORS = ["oracle", "measured", "window"]
ROTATION_INTERVAL = 300.0


def run_ablation():
    duration = default_duration()
    rows = []
    for policy in POLICIES:
        for rotating in (False, True):
            cells = [policy, "rotating" if rotating else "static"]
            for estimator in ESTIMATORS:
                config = SimulationConfig(
                    policy=policy,
                    estimator=estimator,
                    heterogeneity=35,
                    duration=duration,
                    seed=BENCH_SEED,
                    hot_rotation_interval=(
                        ROTATION_INTERVAL if rotating else 0.0
                    ),
                )
                result = run_simulation(config)
                cells.append(f"{result.prob_max_below(0.98):.3f}")
            rows.append(tuple(cells))
    return rows


def test_ablation_workload_dynamics(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    print()
    print(
        "Extension: rotating hot domains every "
        f"{ROTATION_INTERVAL:g}s (P(max<0.98), het 35%)"
    )
    print(format_table(["policy", "workload"] + ESTIMATORS, rows))
    assert len(rows) == len(POLICIES) * 2
