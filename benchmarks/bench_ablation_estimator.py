"""Ablation — oracle vs measured hidden-load estimation.

The paper assumes the DNS can estimate each domain's hidden load weight
(deferring the estimator itself to its reference [3]). We implement the
described mechanism — servers count hits per source domain, the DNS
collects and EWMA-smooths them — and compare it against the oracle for
the headline adaptive policies.
"""

import pytest

from repro.experiments.config import SimulationConfig
from repro.experiments.figures import default_duration
from repro.experiments.reporting import format_table
from repro.experiments.simulation import run_simulation

from conftest import BENCH_SEED

POLICIES = ["DRR2-TTL/S_K", "PRR2-TTL/K", "PRR2-TTL/2", "DAL"]


def run_ablation():
    duration = default_duration()
    rows = []
    for policy in POLICIES:
        values = {}
        for estimator in ("oracle", "measured"):
            config = SimulationConfig(
                policy=policy,
                estimator=estimator,
                heterogeneity=35,
                duration=duration,
                seed=BENCH_SEED,
            )
            values[estimator] = run_simulation(config).prob_max_below(0.98)
        rows.append(
            (
                policy,
                f"{values['oracle']:.3f}",
                f"{values['measured']:.3f}",
                f"{values['measured'] - values['oracle']:+.3f}",
            )
        )
    return rows


def test_ablation_oracle_vs_measured_estimator(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    print()
    print("Ablation: hidden-load estimator (P(max<0.98), het 35%)")
    print(format_table(["policy", "oracle", "measured", "delta"], rows))
    # The measured estimator must remain usable: no policy collapses.
    for policy, oracle, measured, _ in rows:
        assert float(measured) > float(oracle) - 0.35, policy
