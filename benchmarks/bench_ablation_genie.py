"""Extension — instantaneous server state is (almost) useless to a DNS.

LEAST-LOADED answers every address request with the currently least
backlogged server (capacity-normalized) — information no real DNS has.
Intuition says such a "join the shortest queue" oracle should dominate;
it does not: a mapping pins a whole domain for the TTL, and its hidden
load arrives long after the queue snapshot, so least-backlogged routing
barely improves on RR while the adaptive-TTL policies — which reason
about *future* hidden load per unit of capacity — sit near the Ideal
envelope. This quantifies the paper's core thesis: the DNS scheduling
problem is about hidden load and TTLs, not instantaneous server state.
"""

import pytest

from repro.experiments.config import SimulationConfig
from repro.experiments.figures import default_duration
from repro.experiments.reporting import format_table
from repro.experiments.simulation import run_simulation

from conftest import BENCH_SEED

POLICIES = ["RR", "WRR", "LEAST-LOADED", "PRR2-TTL/2", "DRR2-TTL/S_K", "IDEAL"]


def run_comparison():
    duration = default_duration()
    rows = []
    for policy in POLICIES:
        config = SimulationConfig(
            policy=policy, heterogeneity=50, duration=duration,
            seed=BENCH_SEED,
        )
        result = run_simulation(config)
        rows.append(
            (
                policy,
                f"{result.prob_max_below(0.98):.3f}",
                f"{result.prob_max_below(0.90):.3f}",
                f"{result.mean_page_response_time:.3f}",
            )
        )
    return rows


def test_ablation_instantaneous_state_baseline(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    print()
    print("Extension: instantaneous-state (least-backlogged) baseline, het 50%")
    print(
        format_table(
            ["policy", "P(max<0.98)", "P(max<0.90)", "mean resp (s)"], rows
        )
    )
    values = {policy: float(p98) for policy, p98, _, _ in rows}
    # The paper's thesis, quantified: perfect instantaneous server state
    # barely helps (hidden load arrives after the snapshot), while the
    # adaptive-TTL policy recovers most of the gap to the Ideal envelope.
    assert values["DRR2-TTL/S_K"] > values["LEAST-LOADED"] + 0.3
    assert values["LEAST-LOADED"] < values["IDEAL"] - 0.3
