"""Extension — geography: proximity routing vs adaptive TTL.

The paper's servers are "geographically distributed" but its model
(rightly, for throughput) ignores the network. This extension restores
it: servers and domains get positions, each (domain, server) pair an
RTT, and the classic GeoDNS policy — answer with the nearest server —
joins the comparison. The measured trade-off: proximity routing halves
the mean network RTT but, under Zipf-skewed demand, overloads the
servers nearest the hot domains; total page latency (queueing + network)
ends up an order of magnitude worse than under the paper's adaptive TTL
policy. Latency-aware routing without load awareness recreates exactly
the imbalance the paper set out to fix.
"""

import pytest

from repro.experiments.config import SimulationConfig
from repro.experiments.figures import default_duration
from repro.experiments.reporting import format_table
from repro.experiments.simulation import run_simulation

from conftest import BENCH_SEED

POLICIES = ["PROXIMITY", "GEO-HYBRID", "RR", "DRR2-TTL/S_K"]


def run_comparison():
    duration = default_duration()
    rows = []
    for policy in POLICIES:
        config = SimulationConfig(
            policy=policy,
            heterogeneity=35,
            geography="clustered",
            duration=duration,
            seed=BENCH_SEED,
        )
        result = run_simulation(config)
        total_latency = (
            result.mean_page_response_time + result.mean_network_rtt
        )
        rows.append(
            (
                policy,
                f"{result.prob_max_below(0.98):.3f}",
                f"{result.mean_network_rtt * 1000:.1f}",
                f"{result.mean_page_response_time:.2f}",
                f"{total_latency:.2f}",
            )
        )
    return rows


def test_ablation_geography(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    print()
    print("Extension: geography (clustered layout, het 35%)")
    print(
        format_table(
            [
                "policy",
                "P(max<0.98)",
                "mean RTT (ms)",
                "queueing (s)",
                "total page latency (s)",
            ],
            rows,
        )
    )
    values = {r[0]: r for r in rows}
    # Proximity wins on network RTT ...
    assert float(values["PROXIMITY"][2]) < float(values["DRR2-TTL/S_K"][2])
    # ... but adaptive TTL wins on load balance and total latency.
    assert float(values["DRR2-TTL/S_K"][1]) > float(values["PROXIMITY"][1])
    assert float(values["DRR2-TTL/S_K"][4]) < float(values["PROXIMITY"][4])
