"""Ablation — number of domain classes i in the TTL/i meta-algorithm.

The paper evaluates i in {1, 2, K}; the meta-algorithm is defined for any
i ("for i = 3 we have a strategy that uses a three-tier partition of the
domains, and so on"). This ablation sweeps i to show how quickly the
benefit of finer domain classification saturates.
"""

import pytest

from repro.experiments.config import SimulationConfig
from repro.experiments.figures import default_duration
from repro.experiments.reporting import format_table
from repro.experiments.simulation import run_simulation

from conftest import BENCH_SEED

TIER_POLICIES = [
    ("PRR2-TTL/1", 1),
    ("PRR2-TTL/2", 2),
    ("PRR2-TTL/4", 4),
    ("PRR2-TTL/8", 8),
    ("PRR2-TTL/K", 20),
]


def run_ablation():
    duration = default_duration()
    rows = []
    for policy, tiers in TIER_POLICIES:
        config = SimulationConfig(
            policy=policy, heterogeneity=35, duration=duration,
            seed=BENCH_SEED,
        )
        result = run_simulation(config)
        rows.append(
            (
                policy,
                tiers,
                f"{result.prob_max_below(0.98):.3f}",
                f"{result.mean_max_utilization:.3f}",
            )
        )
    return rows


def test_ablation_tier_count(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    print()
    print("Ablation: TTL/i tier count (het 35%)")
    print(
        format_table(
            ["policy", "classes", "P(max<0.98)", "mean max util"], rows
        )
    )
    # More classes should not make things dramatically worse.
    single = float(rows[0][2])
    full = float(rows[-1][2])
    assert full > single
