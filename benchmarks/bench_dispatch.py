"""Multi-host dispatch throughput: grid wall time at 1/2/4 workers.

Runs one factorial grid through the remote dispatch backend
(``docs/DISTRIBUTED.md``) once per requested worker count — real
``repro worker serve`` subprocesses over localhost TCP — verifies that
every worker count produced cell-for-cell identical metrics, and prints
a speedup table::

    PYTHONPATH=src python benchmarks/bench_dispatch.py --workers 1,2,4

What this measures is the **dispatch fabric**: the coordinator's
ability to keep N workers busy — lease round-trips, result
reassembly, progress forwarding — not the simulator's CPU scaling.
Each cell therefore runs the real simulation and is then *paced* to a
fixed wall duration (``--pace``, default 0.5 s) emulating a remote
host's compute time. Pacing never touches results (the parity check
below proves it); without it, a single-core CI host could show no
speedup no matter how perfect the dispatch layer is, because extra
local worker processes cannot make CPU-bound cells faster than the one
core allows. ``--pace 0`` measures the raw CPU-bound grid instead —
meaningful on hosts with at least as many cores as workers.

Before each measured batch the same workers serve a small warm-up
batch, so the measurement captures dispatch throughput rather than
Python interpreter start-up (which any long-lived worker fleet pays
once). ``--record`` writes the numbers into ``BENCH_ENGINE.json`` at
the repo root under the ``dispatch`` key — the recorded scaling quoted
by the docs.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import subprocess
import sys
import time
from typing import List, Tuple

import repro
from repro.experiments.config import SimulationConfig
from repro.experiments.dispatch import RemoteBackend
from repro.experiments.executor import ParallelExecutor
from repro.experiments.persistence import result_to_dict
from repro.experiments.reporting import format_table

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS_FILE = REPO_ROOT / "BENCH_ENGINE.json"

DEFAULT_POLICIES = "RR,DAL,PRR2-TTL/K,DRR2-TTL/S_K"
DEFAULT_LEVELS = "20,35,50,65"


def _spawn_workers(address: Tuple[str, int], count: int) -> list:
    host, port = address
    env = dict(os.environ)
    env["PYTHONPATH"] = str(pathlib.Path(repro.__file__).resolve().parents[1])
    return [
        subprocess.Popen(
            [
                sys.executable, "-m", "repro", "worker", "serve",
                "--connect", f"{host}:{port}",
                "--connect-timeout", "15",
                "--id", f"bench-w{index}",
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        for index in range(count)
    ]


def _run_batch(
    configs: List[SimulationConfig], workers: int, pace: float
) -> Tuple[list, float]:
    """One measured dispatch of ``configs`` to ``workers`` fresh agents."""
    backend = RemoteBackend(
        ("127.0.0.1", 0), timeout=600.0, pace=pace or None
    )
    address = backend.bind()
    executor = ParallelExecutor(backend=backend)
    agents = _spawn_workers(address, workers)
    try:
        # Warm-up batch: every agent imports, connects, serves one cell.
        executor.run_simulations(
            [
                SimulationConfig(policy="RR", duration=60.0, seed=1 + index)
                for index in range(workers)
            ]
        )
        results = executor.run_simulations(configs)
        wall = executor.last_stats.wall_time
        roster = executor.dispatch_info().get("roster", [])
        if len(roster) != workers:
            print(
                f"WARNING: expected {workers} workers in the roster, "
                f"saw {len(roster)}",
                file=sys.stderr,
            )
    finally:
        backend.close()
        for agent in agents:
            try:
                agent.wait(timeout=30)
            except subprocess.TimeoutExpired:
                agent.kill()
                agent.wait()
    return results, wall


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workers", default="1,2,4",
        help="comma-separated worker counts to benchmark (default 1,2,4)",
    )
    parser.add_argument(
        "--policies", default=DEFAULT_POLICIES,
        help=f"comma-separated policy axis (default {DEFAULT_POLICIES})",
    )
    parser.add_argument(
        "--levels", default=DEFAULT_LEVELS,
        help=f"comma-separated heterogeneity axis (default {DEFAULT_LEVELS})",
    )
    parser.add_argument(
        "--duration", type=float, default=240.0,
        help="simulated seconds per cell (default 240)",
    )
    parser.add_argument(
        "--pace", type=float, default=0.5,
        help="wall seconds each cell is held to on its worker, emulating "
        "remote compute (default 0.5; 0 = unpaced CPU-bound cells)",
    )
    parser.add_argument("--seed", type=int, default=1, help="master seed")
    parser.add_argument(
        "--record", action="store_true",
        help="write the measurements into BENCH_ENGINE.json "
        "under the 'dispatch' key",
    )
    args = parser.parse_args(argv)

    worker_counts = [int(v) for v in args.workers.split(",") if v]
    configs = [
        SimulationConfig(
            policy=policy,
            heterogeneity=level,
            duration=args.duration,
            seed=args.seed,
        )
        for policy in args.policies.split(",") if policy
        for level in (int(v) for v in args.levels.split(",") if v)
    ]
    host_cpus = len(os.sched_getaffinity(0)) if hasattr(
        os, "sched_getaffinity"
    ) else (os.cpu_count() or 1)
    print(
        f"{len(configs)} cells x {args.duration:g} simulated seconds, "
        f"seed {args.seed}, pace {args.pace:g}s/cell; "
        f"worker counts: {worker_counts}; host cpus: {host_cpus}"
    )

    rows = []
    measured = {}
    baseline_wall = None
    baseline_cells = None
    for workers in worker_counts:
        results, wall = _run_batch(configs, workers, args.pace)
        fingerprint = [result_to_dict(result) for result in results]
        if baseline_cells is None:
            baseline_cells = fingerprint
            baseline_wall = wall
        elif fingerprint != baseline_cells:
            print(
                f"ERROR: workers={workers} produced different results "
                "than the first run — determinism violated",
                file=sys.stderr,
            )
            return 1
        speedup = baseline_wall / wall if wall > 0 else 0.0
        measured[str(workers)] = {
            "wall_seconds": round(wall, 3),
            "cells_per_sec": round(len(configs) / wall, 2),
            "speedup_vs_1": round(speedup, 2),
        }
        rows.append(
            (
                str(workers),
                f"{wall:.2f} s",
                f"{len(configs) / wall:.2f}",
                f"{speedup:.2f}x",
            )
        )

    print()
    print(
        format_table(
            ["workers", "wall time", "cells/s", "speedup vs first"], rows
        )
    )
    print("\nall worker counts produced cell-for-cell identical metrics")

    if args.record:
        data = json.loads(RESULTS_FILE.read_text())
        data["dispatch"] = {
            "cells": len(configs),
            "duration": args.duration,
            "pace_seconds": args.pace,
            "transport": "tcp-localhost",
            "host_cpus": host_cpus,
            "workers": measured,
            "python": sys.version.split()[0],
            "recorded_at": time.strftime("%Y-%m-%d"),
        }
        RESULTS_FILE.write_text(json.dumps(data, indent=2) + "\n")
        print(f"recorded under 'dispatch' in {RESULTS_FILE}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
