"""Micro-benchmarks of the simulation substrate.

These are true repeated-measurement benchmarks (unlike the figure
benches, which are one-shot experiments): event-queue throughput, process
switching, scheduler selection and the fluid-server hot path. They guard
against performance regressions that would make the paper-length runs
impractical.
"""

import random

import pytest

from repro.core.estimator import OracleEstimator
from repro.core.probabilistic import ProbabilisticTwoTierScheduler
from repro.core.registry import build_policy
from repro.core.state import SchedulerState
from repro.sim.engine import Environment
from repro.sim.rng import RandomStreams
from repro.web.cluster import ServerCluster
from repro.web.server import WebServer
from repro.workload.domains import DomainSet

from conftest import BENCH_SEED, BENCH_WORKERS


def make_state(heterogeneity=65, domain_count=20):
    cluster = ServerCluster.from_heterogeneity(heterogeneity)
    domains = DomainSet.pure_zipf(domain_count)
    return SchedulerState(cluster, OracleEstimator(domains.shares))


def test_bench_event_queue_throughput(benchmark):
    def run():
        env = Environment()
        counter = [0]

        def tick(event):
            counter[0] += 1
            if counter[0] < 10_000:
                env.timeout(1.0).callbacks.append(tick)

        env.timeout(1.0).callbacks.append(tick)
        env.run()
        return counter[0]

    assert benchmark(run) == 10_000


def test_bench_sleep_fast_path(benchmark):
    """The sole-waiter sleep loop — the engine's zero-allocation path.

    One process sleeping repeatedly on Timeouts nothing else waits for:
    each event should cost one heap push, one pop and one generator
    send. ``benchmarks/record_bench_engine.py`` records this same shape
    into ``BENCH_ENGINE.json``.
    """

    def run():
        env = Environment()
        done = [0]

        def sleeper():
            timeout = env.timeout
            for _ in range(10_000):
                yield timeout(1.0)
            done[0] = 1

        env.process(sleeper())
        env.run()
        return done[0]

    assert benchmark(run) == 1


def test_bench_process_switching(benchmark):
    def run():
        env = Environment()
        done = [0]

        def proc():
            for _ in range(100):
                yield env.timeout(1.0)
            done[0] += 1

        for _ in range(50):
            env.process(proc())
        env.run()
        return done[0]

    assert benchmark(run) == 50


def test_bench_fluid_server_offer(benchmark):
    server = WebServer(0, 100.0)
    clock = [0.0]

    def run():
        for _ in range(1000):
            clock[0] += 0.01
            server.offer(clock[0], hits=10, domain_id=3)
        return server.total_pages

    benchmark(run)


def test_bench_prr2_selection(benchmark):
    state = make_state(heterogeneity=65)
    scheduler = ProbabilisticTwoTierScheduler(state, random.Random(BENCH_SEED))

    def run():
        for domain in range(20):
            scheduler.select(domain, 0.0)

    benchmark(run)


def test_bench_adaptive_ttl_lookup(benchmark):
    state = make_state(heterogeneity=65)
    _, ttl_policy = build_policy(
        "DRR2-TTL/S_K", state, RandomStreams(BENCH_SEED)
    )
    ttl_policy.ttl_for(0, 0, 0.0)  # warm the calibration cache

    def run():
        total = 0.0
        for domain in range(20):
            for server in range(7):
                total += ttl_policy.ttl_for(domain, server, 0.0)
        return total

    benchmark(run)


def test_bench_full_simulation_minute(benchmark):
    """End-to-end cost of one simulated minute at paper scale."""
    from repro.experiments.config import SimulationConfig
    from repro.experiments.simulation import run_simulation

    config = SimulationConfig(
        policy="DRR2-TTL/S_K", duration=60.0, seed=BENCH_SEED
    )
    result = benchmark.pedantic(
        lambda: run_simulation(config), rounds=3, iterations=1
    )
    assert result.total_hits > 0


def test_bench_tracing_overhead_smoke():
    """Tracing must cost ~nothing when off, and stay cheap when on.

    Times the same seeded simulation with the default ``NullTracer``
    and with a full ``Tracer(None)``; prints both and the relative
    overhead. The disabled path is additionally asserted to stay within
    a generous factor of the enabled one — a machine-independent sanity
    bound (the tight 2%% budget is checked against the committed
    baseline by the CI bench job and ``docs/OBSERVABILITY.md``).
    """
    import dataclasses
    import time

    from repro.experiments.config import SimulationConfig
    from repro.experiments.simulation import run_simulation

    untraced = SimulationConfig(
        policy="DRR2-TTL/S_K", duration=300.0, seed=BENCH_SEED
    )
    traced = dataclasses.replace(untraced, trace=True)

    def best_of(config, repetitions=5):
        timings = []
        for _ in range(repetitions):
            start = time.perf_counter()
            result = run_simulation(config)
            timings.append(time.perf_counter() - start)
        assert result.total_hits > 0
        return min(timings)

    best_of(untraced, repetitions=1)  # warm caches/imports
    off = best_of(untraced)
    on = best_of(traced)
    overhead = (on - off) / off * 100.0
    print()
    print(f"[tracing off: {off * 1000:.1f} ms  on: {on * 1000:.1f} ms  "
          f"overhead: {overhead:+.1f}%]")
    # The untraced path must never cost more than the traced one by a
    # margin beyond timing noise.
    assert off <= on * 1.10


def test_bench_parallel_grid(benchmark):
    """An 8-cell policy x heterogeneity grid through the executor.

    Runs with ``REPRO_BENCH_WORKERS`` workers (default 1): rerun under
    several values to measure the fan-out speedup — the pivoted metrics
    are identical for every worker count. ``benchmarks/bench_parallel.py``
    is the standalone serial-vs-parallel version of this measurement.
    """
    from repro.experiments.config import SimulationConfig
    from repro.experiments.grid import run_grid

    base = SimulationConfig(duration=1800.0, seed=BENCH_SEED)
    axes = {
        "policy": ["RR", "DAL", "PRR2-TTL/K", "DRR2-TTL/S_K"],
        "heterogeneity": [20, 50],
    }
    grid = benchmark.pedantic(
        lambda: run_grid(base, axes, workers=BENCH_WORKERS),
        rounds=1, iterations=1,
    )
    assert len(grid) == 8
    print()
    print(f"[workers={BENCH_WORKERS} "
          f"wall={grid.execution.wall_time:.2f}s "
          f"speedup={grid.execution.speedup:.2f}x]")
    print(grid.pivot_table("policy", "heterogeneity"))
