"""Figure 1 — cumulative frequency of max utilization, deterministic
algorithms at 20% heterogeneity.

Paper's result: the fully adaptive DRR2-TTL/S_K and DRR-TTL/S_K curves
hug the Ideal envelope; TTL/S_2 sits in between; TTL/S_1 (server
capacity only) barely improves on plain RR; RR2-based variants dominate
their RR-based counterparts.
"""

from repro.experiments.figures import fig1


def test_fig1_deterministic_algorithms(run_figure):
    figure = run_figure(fig1)
    assert len(figure.series) == 8
