"""Figure 2 — cumulative frequency of max utilization, probabilistic
algorithms at 35% heterogeneity.

Paper's result: same ordering as Figure 1 for the probabilistic family;
PRR-TTL/1 (probabilistic routing with a constant TTL) is clearly below
every adaptive scheme, showing probabilistic routing alone cannot handle
the non-uniform client distribution.
"""

from repro.experiments.figures import fig2


def test_fig2_probabilistic_algorithms(run_figure):
    figure = run_figure(fig2)
    assert len(figure.series) == 8
