"""Figure 3 — sensitivity to system heterogeneity (20% to 65%).

Paper's result: the adaptive TTL/K and TTL/S_K schemes stay close to
probability 1 across all heterogeneity levels; TTL/2 and TTL/S_2 fall
off beyond 50%; RR (and, in the paper, DAL) are far below. See
EXPERIMENTS.md for the DAL fidelity discussion.
"""

from repro.experiments.figures import fig3


def test_fig3_heterogeneity_sensitivity(run_figure):
    figure = run_figure(fig3)
    assert len(figure.series) == 6
    assert figure.series[0].x == [20.0, 35.0, 50.0, 65.0]
