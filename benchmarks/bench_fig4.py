"""Figure 4 — sensitivity to the minimum accepted TTL at 20% heterogeneity.

Non-cooperative name servers clamp any recommended TTL below a threshold
to the threshold itself. Paper's result: DRR2-TTL/S_K is best with full
TTL control and degrades as the threshold grows (clamping destroys its
capacity compensation); PRR2-TTL/2 is nearly flat because its TTLs stay
above ~90 s anyway.
"""

from repro.experiments.figures import fig4


def test_fig4_min_ttl_sensitivity_het20(run_figure):
    figure = run_figure(fig4)
    assert len(figure.series) == 5
