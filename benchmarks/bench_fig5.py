"""Figure 5 — sensitivity to the minimum accepted TTL at 50% heterogeneity.

Paper's result: the crossover appears — DRR2-TTL/S_K stays best only
while the threshold is below ~100 s; beyond that PRR2-TTL/K (whose
capacity handling lives in the routing, not the TTL) takes over.
"""

from repro.experiments.figures import fig5


def test_fig5_min_ttl_sensitivity_het50(run_figure):
    figure = run_figure(fig5)
    assert len(figure.series) == 5
