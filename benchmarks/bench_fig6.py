"""Figure 6 — sensitivity to hidden-load estimation error at 20%
heterogeneity.

The busiest domain's actual request rate is inflated by e% while the DNS
estimates stay stale. Paper's result: all TTL/K and TTL/S_K schemes
cluster on top and lose only a few points even at 50% error; TTL/2 and
TTL/S_2 schemes degrade much more.
"""

from repro.experiments.figures import fig6


def test_fig6_estimation_error_het20(run_figure):
    figure = run_figure(fig6)
    assert len(figure.series) == 8
