"""Figure 7 — sensitivity to hidden-load estimation error at 50%
heterogeneity.

Paper's result: as Figure 6 but harsher — with high heterogeneity and
error >= 30% the two-class schemes degrade substantially while the
per-domain TTL/K and TTL/S_K schemes remain robust.
"""

from repro.experiments.figures import fig7


def test_fig7_estimation_error_het50(run_figure):
    figure = run_figure(fig7)
    assert len(figure.series) == 8
