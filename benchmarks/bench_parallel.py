"""Serial-vs-parallel wall-clock benchmark of the experiment executor.

Runs one factorial grid (policy x heterogeneity, 8 cells by default)
once per requested worker count, verifies that every run produced
cell-for-cell identical metrics, and prints a speedup table. This is the
measurement recorded in ``docs/PERFORMANCE.md``::

    PYTHONPATH=src python benchmarks/bench_parallel.py --workers 1,2,4

Options control the grid size (``--policies``, ``--levels``), per-cell
length (``--duration``, simulated seconds) and seed. The script has no
dependencies beyond the library itself.
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from repro.experiments.config import SimulationConfig
from repro.experiments.grid import GridResult, run_grid
from repro.experiments.reporting import format_table

DEFAULT_POLICIES = "RR,DAL,PRR2-TTL/K,DRR2-TTL/S_K"
DEFAULT_LEVELS = "20,50"


def _cell_fingerprint(grid: GridResult) -> List[tuple]:
    """Exact per-cell metrics, for cross-run identity checks."""
    return [
        (
            tuple(sorted(params.items(), key=lambda kv: kv[0])),
            tuple(result.max_utilization_samples),
            result.dns_resolutions,
            result.total_hits,
        )
        for params, result in grid.cells
    ]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workers", default="1,2,4",
        help="comma-separated worker counts to benchmark (default 1,2,4)",
    )
    parser.add_argument(
        "--policies", default=DEFAULT_POLICIES,
        help=f"comma-separated policy axis (default {DEFAULT_POLICIES})",
    )
    parser.add_argument(
        "--levels", default=DEFAULT_LEVELS,
        help=f"comma-separated heterogeneity axis (default {DEFAULT_LEVELS})",
    )
    parser.add_argument(
        "--duration", type=float, default=3600.0,
        help="simulated seconds per cell (default 3600)",
    )
    parser.add_argument("--seed", type=int, default=1, help="master seed")
    args = parser.parse_args(argv)

    worker_counts = [int(v) for v in args.workers.split(",") if v]
    base = SimulationConfig(duration=args.duration, seed=args.seed)
    axes = {
        "policy": [p for p in args.policies.split(",") if p],
        "heterogeneity": [int(v) for v in args.levels.split(",") if v],
    }
    cell_count = len(axes["policy"]) * len(axes["heterogeneity"])
    print(
        f"{cell_count} cells x {args.duration:g} simulated seconds, "
        f"seed {args.seed}; worker counts: {worker_counts}"
    )

    rows = []
    baseline_wall = None
    baseline_cells = None
    for workers in worker_counts:
        grid = run_grid(base, axes, workers=workers)
        stats = grid.execution
        fingerprint = _cell_fingerprint(grid)
        if baseline_cells is None:
            baseline_cells = fingerprint
            baseline_wall = stats.wall_time
        elif fingerprint != baseline_cells:
            print(
                f"ERROR: workers={workers} produced different results "
                "than the first run — determinism violated",
                file=sys.stderr,
            )
            return 1
        rows.append(
            (
                str(workers),
                f"{stats.wall_time:.2f} s",
                f"{stats.mean_cell_time:.2f} s",
                f"{baseline_wall / stats.wall_time:.2f}x",
            )
        )

    print()
    print(
        format_table(
            ["workers", "wall time", "cell mean", "speedup vs first"], rows
        )
    )
    print("\nall worker counts produced cell-for-cell identical metrics")
    return 0


if __name__ == "__main__":
    sys.exit(main())
