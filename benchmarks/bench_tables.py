"""Tables 1 and 2 — the model parameters and heterogeneity levels.

These are configuration artifacts rather than experiments; the
"benchmark" verifies and prints them so the bench run documents the exact
setup used by every figure benchmark.
"""

import pytest

from repro.experiments.config import SimulationConfig
from repro.experiments.figures import table1, table2
from repro.experiments.reporting import format_table


def test_table1_parameters(benchmark):
    rows = benchmark.pedantic(table1, rounds=1, iterations=1)
    print()
    print("Table 1: Parameters of the system model")
    print(format_table(["Parameter", "Setting"], rows))
    pairs = dict(rows)
    assert pairs["Connected domains K"] == "20"
    assert pairs["Total clients"] == "500"
    assert pairs["Constant TTL"] == "240 s"
    assert pairs["Average utilization"] == "0.667"


def test_table2_heterogeneity_levels(benchmark):
    levels = benchmark.pedantic(table2, rounds=1, iterations=1)
    print()
    print("Table 2: Parameters of the heterogeneity levels")
    rows = [
        (f"{level}%", ", ".join(f"{alpha:g}" for alpha in alphas))
        for level, alphas in sorted(levels.items())
    ]
    print(format_table(["Heterogeneity", "Relative capacities"], rows))
    assert levels[20] == [1.0, 1.0, 1.0, 0.8, 0.8, 0.8, 0.8]
    assert levels[65] == [1.0, 1.0, 0.8, 0.8, 0.35, 0.35, 0.35]
    # Every level keeps total capacity at 500 hits/s.
    for level in levels:
        cluster = SimulationConfig(heterogeneity=level).build_cluster()
        assert sum(cluster.capacities) == pytest.approx(500.0)
