"""Million-domain workload scale bench and memory-budget gate.

The eager ``ClientPopulation`` spawns one live generator per client
from t=0, which caps runs far below the domain counts where TTL/K
policies get interesting.  The sharded population and the trace-driven
source keep per-client state in flat arrays and per-session slots, so
a 10^6-domain run holds memory roughly constant in *domains touched*,
not domains configured.  This script proves it two ways:

``--record``
    Run the full-scale configurations — synthetic sharded at 10^6
    domains / ~10^8 requests, trace-driven at 10^6 domains — and write
    wall time, throughput, and peak RSS into ``BENCH_ENGINE.json``
    under ``workload_scale``.  The committed numbers are the scale
    contract future PRs are measured against.

``--check``
    CI smoke: a *truncated* 10^6-domain config (short duration, small
    client count) under a hard tracemalloc budget.  An eager-spawn
    regression — any path that materializes a per-domain or per-client
    Python list at construction — blows the budget by an order of
    magnitude, so it can never come back unnoticed.

Usage::

    PYTHONPATH=src python benchmarks/bench_workload_scale.py --check
    PYTHONPATH=src python benchmarks/bench_workload_scale.py --record
"""

from __future__ import annotations

import argparse
import gc
import json
import pathlib
import platform
import resource
import sys
import time
import tracemalloc

from repro.experiments.config import SimulationConfig
from repro.experiments.simulation import Simulation

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS_FILE = REPO_ROOT / "BENCH_ENGINE.json"

#: Hard tracemalloc budget for the truncated CI smoke, in MiB.  The
#: lazy path peaks around 11 MiB at 10^6 domains / 2 000 clients; an
#: eager population at the same scale allocates hundreds of MiB before
#: the first event fires.
CHECK_TRACEMALLOC_MIB = 64.0

#: Hard peak-RSS ceiling for the full --record runs, in MiB.
RECORD_RSS_MIB = 2048.0

MIB = 1024.0 * 1024.0


def _rss_mib() -> float:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def run_config(config, engine_mode="event", trace_memory=False) -> dict:
    """Build and run one configuration, measuring time and memory."""
    gc.collect()
    if trace_memory:
        tracemalloc.start()
    start = time.perf_counter()
    sim = Simulation(config, engine_mode=engine_mode)
    build_seconds = time.perf_counter() - start
    result = sim.run()
    elapsed = time.perf_counter() - start
    numbers = {
        "domains": config.domain_count,
        "duration": config.duration,
        "engine": sim.engine_info["effective_mode"],
        "build_seconds": round(build_seconds, 2),
        "wall_seconds": round(elapsed, 2),
        "sessions": result.total_sessions,
        "hits": result.total_hits,
        "hits_per_sec": round(result.total_hits / (elapsed - build_seconds)),
        "peak_rss_mib": round(_rss_mib(), 1),
    }
    if trace_memory:
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        numbers["tracemalloc_peak_mib"] = round(peak / MIB, 1)
    return numbers


def synthetic_config(domains, clients, duration) -> SimulationConfig:
    return SimulationConfig(
        policy="RR",
        domain_count=domains,
        total_clients=clients,
        population="lazy",
        duration=duration,
        seed=5,
    )


def trace_config(domains, rate, duration) -> SimulationConfig:
    return SimulationConfig(
        policy="RR",
        domain_count=domains,
        workload_source="trace",
        trace_profile="diurnal",
        trace_rate=rate,
        trace_period=3600.0,
        duration=duration,
        seed=5,
    )


def check(budget_mib: float) -> int:
    """Truncated 10^6-domain smoke under a hard tracemalloc budget."""
    failures = []
    cases = [
        ("synthetic", synthetic_config(1_000_000, 2_000, 60.0)),
        ("trace", trace_config(1_000_000, 2.0, 60.0)),
    ]
    for label, config in cases:
        numbers = run_config(config, trace_memory=True)
        peak = numbers["tracemalloc_peak_mib"]
        verdict = "ok" if peak <= budget_mib else "OVER BUDGET"
        print(
            f"{label}: {numbers['hits']} hits in "
            f"{numbers['wall_seconds']}s, tracemalloc peak "
            f"{peak} MiB (budget {budget_mib} MiB) — {verdict}"
        )
        if numbers["hits"] <= 0:
            failures.append(f"{label}: produced no traffic")
        if peak > budget_mib:
            failures.append(
                f"{label}: tracemalloc peak {peak} MiB exceeds the "
                f"{budget_mib} MiB budget — an eager-spawn path is back"
            )
    for failure in failures:
        print(f"FAIL {failure}", file=sys.stderr)
    return 1 if failures else 0


def record() -> int:
    """Full-scale runs recorded into BENCH_ENGINE.json."""
    # ~8.5M hits per 120 sim-seconds at 100k clients: 1 440 sim-seconds
    # lands the synthetic run at ~10^8 requests.
    synthetic = run_config(
        synthetic_config(1_000_000, 100_000, 1_440.0),
        engine_mode="fastforward",
    )
    print("synthetic:", json.dumps(synthetic, indent=2))
    trace = run_config(trace_config(1_000_000, 100.0, 3_600.0))
    print("trace:", json.dumps(trace, indent=2))
    over = [
        label
        for label, numbers in (("synthetic", synthetic), ("trace", trace))
        if numbers["peak_rss_mib"] > RECORD_RSS_MIB
    ]
    if over:
        print(
            f"FAIL peak RSS over {RECORD_RSS_MIB} MiB in: {', '.join(over)}",
            file=sys.stderr,
        )
        return 1
    results = json.loads(RESULTS_FILE.read_text())
    results["workload_scale"] = {
        "synthetic": synthetic,
        "trace": trace,
        "python": platform.python_version(),
        "recorded_at": time.strftime("%Y-%m-%d"),
    }
    RESULTS_FILE.write_text(json.dumps(results, indent=2) + "\n")
    print(f"recorded workload_scale into {RESULTS_FILE}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument(
        "--record",
        action="store_true",
        help="run the full-scale configs and record BENCH_ENGINE.json",
    )
    group.add_argument(
        "--check",
        action="store_true",
        help="truncated smoke under the hard tracemalloc budget (CI)",
    )
    parser.add_argument(
        "--budget-mib",
        type=float,
        default=CHECK_TRACEMALLOC_MIB,
        help="tracemalloc budget for --check (MiB)",
    )
    args = parser.parse_args(argv)
    if args.check:
        return check(args.budget_mib)
    return record()


if __name__ == "__main__":
    raise SystemExit(main())
