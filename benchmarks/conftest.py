"""Shared helpers for the benchmark suite.

Every ``bench_fig*.py`` module regenerates one figure of the paper: it
runs the underlying simulations once (``benchmark.pedantic`` with a
single round — a figure is a long-running experiment, not a microbench),
prints the regenerated series in the paper's layout, writes a CSV next to
this file under ``benchmarks/output/``, and reports any violated
qualitative expectation from :mod:`repro.experiments.paper`.

Run with::

    pytest benchmarks/ --benchmark-only -s

Set ``REPRO_PAPER_FIDELITY=1`` for full five-hour runs per point.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.experiments.paper import CHECKS
from repro.experiments.reporting import figure_to_csv, render_figure

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"

#: Seed used by every benchmark figure (change via REPRO_BENCH_SEED).
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "1"))

#: Worker processes used by the multi-cell benchmarks (change via
#: REPRO_BENCH_WORKERS; results are identical for any value).
BENCH_WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))


def report_figure(figure) -> None:
    """Print a regenerated figure, persist CSV, and check expectations."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    print()
    print(render_figure(figure))
    csv_path = OUTPUT_DIR / f"{figure.figure_id}.csv"
    csv_path.write_text(figure_to_csv(figure))
    print(f"[csv written to {csv_path}]")
    check = CHECKS.get(figure.figure_id)
    if check is not None:
        violations = check(figure)
        if violations:
            for violation in violations:
                print(f"EXPECTATION NOT MET: {violation}")
        else:
            print(f"[{figure.figure_id}: all paper expectations hold]")


@pytest.fixture
def run_figure(benchmark):
    """Benchmark a figure generator once and report its output."""

    def runner(figure_fn, **kwargs):
        kwargs.setdefault("seed", BENCH_SEED)
        figure = benchmark.pedantic(
            lambda: figure_fn(**kwargs), rounds=1, iterations=1
        )
        report_figure(figure)
        return figure

    return runner
