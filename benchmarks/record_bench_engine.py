"""Record engine microbenchmark throughput into ``BENCH_ENGINE.json``.

Times the engine's two hot microbenches (the sole-waiter sleep path and
process switching) plus one reference ``fig1`` cell, computes events per
second, and records them in ``BENCH_ENGINE.json`` at the repo root under
a named entry (``--label baseline`` for the pre-fast-path engine,
``--label current`` for the working tree). The committed file is the
performance contract future PRs are measured against.

Usage::

    PYTHONPATH=src python benchmarks/record_bench_engine.py --label current
    PYTHONPATH=src python benchmarks/record_bench_engine.py --check

``--check`` re-measures and fails (exit 1) if the sleep or switching
throughput fell below ``--threshold`` (default 0.6) times the recorded
``current`` entry — a coarse, machine-noise-tolerant regression guard
for CI; the precise before/after story lives in the recorded numbers
and ``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time

from repro.sim.engine import Environment

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS_FILE = REPO_ROOT / "BENCH_ENGINE.json"

#: Events per run of each microbench (kept moderate so --check stays fast).
SLEEP_EVENTS = 200_000
SWITCH_PROCESSES = 200
SWITCH_SLEEPS = 500


def bench_sleep() -> float:
    """One process sleeping SLEEP_EVENTS times — the sole-waiter path."""
    env = Environment()

    def sleeper():
        timeout = env.timeout
        for _ in range(SLEEP_EVENTS):
            yield timeout(1.0)

    env.process(sleeper())
    start = time.perf_counter()
    env.run()
    return SLEEP_EVENTS / (time.perf_counter() - start)


def bench_switching() -> float:
    """SWITCH_PROCESSES interleaved sleepers — process switching."""
    env = Environment()

    def sleeper():
        timeout = env.timeout
        for _ in range(SWITCH_SLEEPS):
            yield timeout(1.0)

    for _ in range(SWITCH_PROCESSES):
        env.process(sleeper())
    start = time.perf_counter()
    env.run()
    return (SWITCH_PROCESSES * SWITCH_SLEEPS) / (time.perf_counter() - start)


def bench_fig1_cell() -> float:
    """Wall-clock seconds for one reference fig1 cell (lower is better)."""
    from repro.experiments.config import SimulationConfig
    from repro.experiments.simulation import run_simulation

    config = SimulationConfig(
        policy="DRR2-TTL/S_K", heterogeneity=20, duration=1800.0, seed=1
    )
    start = time.perf_counter()
    result = run_simulation(config)
    elapsed = time.perf_counter() - start
    assert result.total_hits > 0
    return elapsed


def best_of(fn, repetitions: int, pick):
    values = [fn() for _ in range(repetitions)]
    return pick(values)


def measure(repetitions: int) -> dict:
    bench_sleep()  # warm up allocators and code paths
    return {
        "sleep_events_per_sec": round(
            best_of(bench_sleep, repetitions, max), 1
        ),
        "process_switch_events_per_sec": round(
            best_of(bench_switching, repetitions, max), 1
        ),
        "fig1_cell_seconds": round(
            best_of(bench_fig1_cell, repetitions, min), 4
        ),
        "python": platform.python_version(),
        "recorded_at": time.strftime("%Y-%m-%d"),
    }


def load_results() -> dict:
    if RESULTS_FILE.exists():
        return json.loads(RESULTS_FILE.read_text())
    return {}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--label", default=None, help="entry name to record")
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against the recorded 'current' entry instead of recording",
    )
    parser.add_argument("--repetitions", type=int, default=3)
    parser.add_argument("--threshold", type=float, default=0.6)
    args = parser.parse_args(argv)

    numbers = measure(args.repetitions)
    print(json.dumps(numbers, indent=2))

    results = load_results()
    if args.check:
        reference = results.get("current")
        if reference is None:
            print("no 'current' entry recorded; nothing to check against")
            return 1
        failed = False
        for key in ("sleep_events_per_sec", "process_switch_events_per_sec"):
            floor = reference[key] * args.threshold
            if numbers[key] < floor:
                print(
                    f"REGRESSION: {key} = {numbers[key]:.0f} events/s "
                    f"< {args.threshold:.2f} x recorded {reference[key]:.0f}"
                )
                failed = True
        if not failed:
            print(
                f"engine throughput within {args.threshold:.2f}x "
                "of the recorded baseline"
            )
        return 1 if failed else 0

    if args.label is None:
        parser.error("--label is required unless --check is given")
    results[args.label] = numbers
    if "baseline" in results and "current" in results:
        base, cur = results["baseline"], results["current"]
        results["speedup"] = {
            "sleep": round(
                cur["sleep_events_per_sec"] / base["sleep_events_per_sec"], 2
            ),
            "process_switch": round(
                cur["process_switch_events_per_sec"]
                / base["process_switch_events_per_sec"],
                2,
            ),
            "fig1_cell": round(
                base["fig1_cell_seconds"] / cur["fig1_cell_seconds"], 2
            ),
        }
    RESULTS_FILE.write_text(json.dumps(results, indent=2) + "\n")
    print(f"recorded entry {args.label!r} in {RESULTS_FILE}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
