"""Record engine microbenchmark throughput into ``BENCH_ENGINE.json``.

Times the engine's two hot microbenches (the sole-waiter sleep path and
process switching) plus one reference ``fig1`` cell in both engine
modes (``event`` and ``fastforward``), computes events per second, and
records them in ``BENCH_ENGINE.json`` at the repo root under a named
entry (``--label baseline`` for the pre-fast-path engine, ``--label
current`` for the working tree). The committed file is the performance
contract future PRs are measured against.

The fast-forward speedup is computed from the *same entry's* event and
fastforward fig1 timings — both measured in one process on one machine
moments apart — never across entries recorded on different days, so
machine drift between recordings cannot inflate (or mask) the ratio.

Usage::

    PYTHONPATH=src python benchmarks/record_bench_engine.py --label current
    PYTHONPATH=src python benchmarks/record_bench_engine.py --check

``--check`` re-measures and fails (exit 1) if the sleep or switching
throughput fell below ``--threshold`` (default 0.6) times the recorded
``current`` entry — a coarse, machine-noise-tolerant regression guard
for CI; the precise before/after story lives in the recorded numbers
and ``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

import argparse
import gc
import json
import pathlib
import platform
import sys
import time

from repro.sim.engine import Environment

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS_FILE = REPO_ROOT / "BENCH_ENGINE.json"

#: Events per run of each microbench (kept moderate so --check stays fast).
SLEEP_EVENTS = 200_000
SWITCH_PROCESSES = 200
SWITCH_SLEEPS = 500


def bench_sleep() -> float:
    """One process sleeping SLEEP_EVENTS times — the sole-waiter path."""
    env = Environment()

    def sleeper():
        timeout = env.timeout
        for _ in range(SLEEP_EVENTS):
            yield timeout(1.0)

    env.process(sleeper())
    start = time.perf_counter()
    env.run()
    return SLEEP_EVENTS / (time.perf_counter() - start)


def bench_switching() -> float:
    """SWITCH_PROCESSES interleaved sleepers — process switching."""
    env = Environment()

    def sleeper():
        timeout = env.timeout
        for _ in range(SWITCH_SLEEPS):
            yield timeout(1.0)

    for _ in range(SWITCH_PROCESSES):
        env.process(sleeper())
    start = time.perf_counter()
    env.run()
    return (SWITCH_PROCESSES * SWITCH_SLEEPS) / (time.perf_counter() - start)


def bench_fig1_cell(engine_mode: str = "event") -> float:
    """Wall-clock seconds for one reference fig1 cell (lower is better)."""
    from repro.experiments.config import SimulationConfig
    from repro.experiments.simulation import run_simulation

    config = SimulationConfig(
        policy="DRR2-TTL/S_K", heterogeneity=20, duration=1800.0, seed=1
    )
    start = time.perf_counter()
    result = run_simulation(config, engine_mode=engine_mode)
    elapsed = time.perf_counter() - start
    assert result.total_hits > 0
    return elapsed


def best_of(fn, repetitions: int, pick):
    """Best of ``repetitions`` timings, GC-controlled.

    The collector is disabled during each timed region and a full
    collect runs between repetitions, so allocation-heavy and
    allocation-light code paths are measured under the same (quiet)
    memory conditions instead of whichever GC schedule they happened
    to trigger.
    """
    values = []
    gc.collect()
    gc.disable()
    try:
        for _ in range(repetitions):
            values.append(fn())
            gc.enable()
            gc.collect()
            gc.disable()
    finally:
        gc.enable()
    return pick(values)


def measure(repetitions: int) -> dict:
    bench_sleep()  # warm up allocators and code paths
    numbers = {
        "sleep_events_per_sec": round(
            best_of(bench_sleep, repetitions, max), 1
        ),
        "process_switch_events_per_sec": round(
            best_of(bench_switching, repetitions, max), 1
        ),
        "python": platform.python_version(),
        "recorded_at": time.strftime("%Y-%m-%d"),
    }
    # The two engine modes are interleaved pairwise (event, fastforward,
    # event, fastforward, ...) rather than measured as two blocks, so
    # slow machine-speed drift hits both modes alike. The headline
    # speedup is the MEDIAN of the per-pair ratios: within a pair both
    # modes see (nearly) the same machine speed, so each ratio is
    # drift-free, and the median discards pairs where a speed shift
    # landed between the two runs — unlike best-of-each, which lets one
    # lucky fast window for either mode skew the quotient.
    pairs = best_of(
        lambda: (bench_fig1_cell("event"), bench_fig1_cell("fastforward")),
        repetitions,
        list,
    )
    event_best = min(pair[0] for pair in pairs)
    fastforward_best = min(pair[1] for pair in pairs)
    ratios = sorted(event / fastforward for event, fastforward in pairs)
    numbers["fig1_cell_seconds"] = round(event_best, 4)
    numbers["fig1_cell_fastforward_seconds"] = round(fastforward_best, 4)
    numbers["fastforward_speedup"] = round(ratios[len(ratios) // 2], 2)
    return numbers


def load_results() -> dict:
    if RESULTS_FILE.exists():
        return json.loads(RESULTS_FILE.read_text())
    return {}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--label", default=None, help="entry name to record")
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against the recorded 'current' entry instead of recording",
    )
    parser.add_argument("--repetitions", type=int, default=3)
    parser.add_argument("--threshold", type=float, default=0.6)
    args = parser.parse_args(argv)

    numbers = measure(args.repetitions)
    print(json.dumps(numbers, indent=2))

    results = load_results()
    if args.check:
        reference = results.get("current")
        if reference is None:
            print("no 'current' entry recorded; nothing to check against")
            return 1
        failed = False
        for key in ("sleep_events_per_sec", "process_switch_events_per_sec"):
            floor = reference[key] * args.threshold
            if numbers[key] < floor:
                print(
                    f"REGRESSION: {key} = {numbers[key]:.0f} events/s "
                    f"< {args.threshold:.2f} x recorded {reference[key]:.0f}"
                )
                failed = True
        if not failed:
            print(
                f"engine throughput within {args.threshold:.2f}x "
                "of the recorded baseline"
            )
        return 1 if failed else 0

    if args.label is None:
        parser.error("--label is required unless --check is given")
    results[args.label] = numbers
    if "baseline" in results and "current" in results:
        base, cur = results["baseline"], results["current"]
        results["speedup"] = {
            "sleep": round(
                cur["sleep_events_per_sec"] / base["sleep_events_per_sec"], 2
            ),
            "process_switch": round(
                cur["process_switch_events_per_sec"]
                / base["process_switch_events_per_sec"],
                2,
            ),
            "fig1_cell": round(
                base["fig1_cell_seconds"] / cur["fig1_cell_seconds"], 2
            ),
        }
        if "fig1_cell_fastforward_seconds" in cur:
            # The fast-forward engine vs this entry's own event-mode
            # measurement (same session), and vs the recorded baseline.
            results["speedup"]["fig1_cell_fastforward"] = cur[
                "fastforward_speedup"
            ]
            results["speedup"]["fig1_cell_fastforward_vs_baseline"] = round(
                base["fig1_cell_seconds"]
                / cur["fig1_cell_fastforward_seconds"],
                2,
            )
    RESULTS_FILE.write_text(json.dumps(results, indent=2) + "\n")
    print(f"recorded entry {args.label!r} in {RESULTS_FILE}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
