#!/usr/bin/env python3
"""Capacity planning with the simulator: how much load can the site take?

A practical use of the library beyond reproducing the paper: given a
heterogeneous server fleet and a scheduling policy, find the client
population at which the site starts to overload (some server above 98%
utilization more than 10% of the time). A better DNS policy is worth
real capacity: the adaptive TTL scheme sustains markedly more clients on
the same hardware than round-robin.

Usage::

    python examples/capacity_planning.py [duration_seconds]
"""

import sys

from repro import SimulationConfig, run_simulation
from repro.experiments.reporting import format_table

POLICIES = ["RR", "PRR2-TTL/2", "DRR2-TTL/S_K"]
CLIENT_STEPS = [400, 500, 600, 700]
OVERLOAD_TOLERANCE = 0.10  # accept at most 10% of intervals overloaded


def sustainable(policy: str, duration: float) -> tuple:
    """Largest tested population the policy sustains, with its table row."""
    row = [policy]
    best = 0
    for clients in CLIENT_STEPS:
        config = SimulationConfig(
            policy=policy,
            heterogeneity=50,
            total_clients=clients,
            duration=duration,
            seed=11,
        )
        result = run_simulation(config)
        p_ok = result.prob_max_below(0.98)
        row.append(f"{p_ok:.3f}")
        if p_ok >= 1.0 - OVERLOAD_TOLERANCE:
            best = clients
    return best, tuple(row)


def main() -> None:
    duration = float(sys.argv[1]) if len(sys.argv) > 1 else 2400.0
    print(
        "Capacity planning on a 500 hits/s site at 50% heterogeneity\n"
        f"({duration:g}s per run; overload tolerance "
        f"{OVERLOAD_TOLERANCE:.0%} of intervals)."
    )
    print()
    rows = []
    verdicts = []
    for policy in POLICIES:
        best, row = sustainable(policy, duration)
        rows.append(row)
        verdicts.append((policy, best))

    headers = ["policy"] + [f"{c} clients" for c in CLIENT_STEPS]
    print("P(max utilization < 0.98) per client population:")
    print(format_table(headers, rows))
    print()
    for policy, best in verdicts:
        if best:
            offered = best * (2 / 3) / 500
            print(
                f"{policy:14s} sustains ~{best} clients "
                f"(~{offered:.0%} average utilization) within tolerance"
            )
        else:
            print(
                f"{policy:14s} overloads beyond tolerance at every tested "
                f"population"
            )


if __name__ == "__main__":
    main()
