#!/usr/bin/env python3
"""Compare DNS scheduling policies on one scenario, Fig. 1/2 style.

Runs the paper's headline policies side by side on an identical scenario
(same seed, same workload) at a chosen heterogeneity level, then prints
the comparison table and a compact CDF view. This reproduces, in one
command, the qualitative content of the paper's Figures 1 and 2:

* plain RR is the lower bound — some server is almost always overloaded;
* adapting the TTL to server capacity alone (TTL/S_1) barely helps;
* adapting to domain load (TTL/2, TTL/K) helps a lot;
* the combined per-domain, per-server DRR2-TTL/S_K tracks the Ideal
  envelope.

Usage::

    python examples/compare_policies.py [heterogeneity] [duration_seconds]
"""

import sys

from repro import SimulationConfig, compare_policies
from repro.experiments.reporting import render_comparison

POLICIES = [
    "IDEAL",
    "DRR2-TTL/S_K",
    "PRR2-TTL/K",
    "DRR2-TTL/S_2",
    "PRR2-TTL/2",
    "DRR2-TTL/S_1",
    "PRR2-TTL/1",
    "RR",
]


def main() -> None:
    heterogeneity = int(sys.argv[1]) if len(sys.argv) > 1 else 35
    duration = float(sys.argv[2]) if len(sys.argv) > 2 else 3600.0

    base = SimulationConfig(
        policy=POLICIES[0],
        heterogeneity=heterogeneity,
        duration=duration,
        seed=11,
    )
    print(
        f"Comparing {len(POLICIES)} policies at {heterogeneity}% "
        f"heterogeneity ({duration:g}s each)..."
    )
    results = compare_policies(base, POLICIES)

    print()
    print(render_comparison(results))

    print()
    print("Cumulative frequency of max utilization (Fig. 1/2 style):")
    grid = [0.80, 0.85, 0.90, 0.95, 0.98]
    header = "policy".ljust(14) + "".join(f"  x={x:4.2f}" for x in grid)
    print(header)
    for policy in POLICIES:
        cdf = results[policy].cdf()
        row = policy.ljust(14) + "".join(
            f"  {cdf.probability_below(x):6.3f}" for x in grid
        )
        print(row)


if __name__ == "__main__":
    main()
