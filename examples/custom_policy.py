#!/usr/bin/env python3
"""Extending the library: write and evaluate your own DNS policy.

The substrates are composable: a scheduler is any object with
``select(domain_id, now) -> server_id`` and a TTL policy is any object
with ``ttl_for(domain_id, server_id, now) -> float``. This example
implements

* ``PowerOfTwoChoicesScheduler`` — samples two eligible servers and
  takes the one with the lower capacity-normalized assigned load
  (the classic "power of two choices" policy, which postdates the
  paper), and
* ``HalvedHotTtl`` — a minimal adaptive TTL: hot domains get half the
  base TTL,

wires them into the same simulation stack the experiment harness uses,
and scores them against the paper's policies.

Usage::

    python examples/custom_policy.py [duration_seconds]
"""

import sys

from repro import SimulationConfig, run_simulation
from repro.core import Scheduler, TtlPolicy, TwoClassClassifier
from repro.core.estimator import OracleEstimator
from repro.core.state import SchedulerState
from repro.dns import AuthoritativeDns, ResolutionChain
from repro.experiments.metrics import MaxUtilizationCollector
from repro.sim import Environment, RandomStreams
from repro.web import AlarmProtocol, ServerCluster, UtilizationMonitor
from repro.workload import ClientPopulation, DomainSet, SessionModel


class PowerOfTwoChoicesScheduler(Scheduler):
    """Sample two eligible servers; keep the less (relatively) loaded."""

    name = "P2C"

    def __init__(self, state: SchedulerState, rng):
        super().__init__(state)
        self._rng = rng
        self._assigned_weight = [0.0] * state.server_count

    def select(self, domain_id: int, now: float) -> int:
        eligible = self.state.eligible_servers()
        first = eligible[self._rng.randrange(len(eligible))]
        second = eligible[self._rng.randrange(len(eligible))]
        alphas = self.state.relative_capacities

        def cost(server_id: int) -> float:
            return self._assigned_weight[server_id] / alphas[server_id]

        chosen = first if cost(first) <= cost(second) else second
        self._assigned_weight[chosen] += self.state.estimator.shares()[
            domain_id
        ]
        return chosen


class HalvedHotTtl(TtlPolicy):
    """Hot domains get base/2, normal domains get the base TTL."""

    name = "HALVED-HOT"

    def __init__(self, classifier: TwoClassClassifier, base_ttl: float):
        self.classifier = classifier
        self.base_ttl = base_ttl

    def ttl_for(self, domain_id: int, server_id: int, now: float) -> float:
        if self.classifier.class_of(domain_id) == 0:  # hot
            return self.base_ttl / 2.0
        return self.base_ttl


def run_custom(duration: float, heterogeneity: int = 35, seed: int = 11):
    """Assemble the full stack by hand around the custom policy."""
    env = Environment()
    streams = RandomStreams(seed)
    cluster = ServerCluster.from_heterogeneity(heterogeneity)
    domains = DomainSet.pure_zipf(20)
    state = SchedulerState(cluster, OracleEstimator(domains.shares))

    scheduler = PowerOfTwoChoicesScheduler(state, streams.stream("scheduler"))
    ttl_policy = HalvedHotTtl(TwoClassClassifier(state.estimator), 240.0)

    dns = AuthoritativeDns(scheduler, ttl_policy)
    chain = ResolutionChain(dns, domains.domain_count)
    collector = MaxUtilizationCollector(cluster.server_count)
    alarms = AlarmProtocol(cluster.server_count, threshold=0.9,
                           listener=state.set_alarm)
    UtilizationMonitor(env, cluster.servers, interval=32.0,
                       alarm_protocol=alarms, sample_sink=collector.sink)
    ClientPopulation(env, cluster, chain, domains, SessionModel(), 500,
                     streams)

    env.run(until=duration)
    return collector.cdf()


def main() -> None:
    duration = float(sys.argv[1]) if len(sys.argv) > 1 else 2400.0

    print(f"Evaluating the custom P2C + halved-hot-TTL policy "
          f"({duration:g}s)...")
    custom_cdf = run_custom(duration)
    custom = custom_cdf.probability_below(0.98)

    print("Scoring reference policies on the same scenario...")
    reference = {}
    for policy in ("RR", "PRR2-TTL/2", "DRR2-TTL/S_K"):
        config = SimulationConfig(
            policy=policy, heterogeneity=35, duration=duration, seed=11
        )
        reference[policy] = run_simulation(config).prob_max_below(0.98)

    print()
    print("P(max utilization < 0.98), higher is better:")
    for name, value in [("P2C+HALVED-HOT (custom)", custom)] + list(
        reference.items()
    ):
        bar = "#" * int(40 * value)
        print(f"  {name:24s} {value:5.3f} |{bar}")
    print()
    print(
        "The custom policy illustrates the API; beating DRR2-TTL/S_K "
        "requires\nadapting the TTL to both domain load and server "
        "capacity, as the paper shows."
    )


if __name__ == "__main__":
    main()
