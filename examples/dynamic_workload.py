#!/usr/bin/env python3
"""Non-stationary workloads: why the estimator matters.

The paper closes by noting that in "a more dynamic environment where
client request rates from the domains may change constantly, it can be
difficult to obtain an accurate estimate" of the hidden load weights.
This example makes that concrete: the identities of the five hottest
domains rotate cyclically during the run, and three estimators feed the
same adaptive policy:

* ``oracle``   — exact shares at t=0, never updated (stale under rotation);
* ``measured`` — servers count hits per domain, the DNS collects and
  EWMA-smooths them every 32 s (the mechanism the paper describes);
* ``window``   — shares over a sliding window of recent intervals.

Under a static workload all three are equivalent; under rotation the
stale oracle mis-classes exactly the domains that matter and the
measurement-based estimators recover most of the loss.

Usage::

    python examples/dynamic_workload.py [rotation_seconds] [duration]
"""

import sys

from repro import SimulationConfig, run_simulation
from repro.experiments.reporting import format_table

POLICY = "DRR2-TTL/S_K"
ESTIMATORS = ("oracle", "measured", "window")


def main() -> None:
    rotation = float(sys.argv[1]) if len(sys.argv) > 1 else 300.0
    duration = float(sys.argv[2]) if len(sys.argv) > 2 else 2400.0

    print(
        f"Policy {POLICY} at 35% heterogeneity; hottest 5 domains rotate "
        f"every {rotation:g}s ({duration:g}s per run)."
    )
    rows = []
    for workload, interval in (("static", 0.0), ("rotating", rotation)):
        cells = [workload]
        for estimator in ESTIMATORS:
            config = SimulationConfig(
                policy=POLICY,
                heterogeneity=35,
                estimator=estimator,
                hot_rotation_interval=interval,
                duration=duration,
                seed=11,
            )
            result = run_simulation(config)
            cells.append(f"{result.prob_max_below(0.98):.3f}")
        rows.append(tuple(cells))

    print()
    print("P(max utilization < 0.98), higher is better:")
    print(format_table(["workload"] + list(ESTIMATORS), rows))
    print()
    print(
        "Reading: under rotation the never-updated oracle keeps issuing\n"
        "long TTLs to domains that have become hot; the measured (EWMA)\n"
        "estimator tracks the change and recovers most of the loss."
    )


if __name__ == "__main__":
    main()
