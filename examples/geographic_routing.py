#!/usr/bin/env python3
"""Geographic routing vs adaptive TTL: latency is not the whole story.

The paper's servers are geographically distributed, and the obvious
geographic policy — answer every DNS query with the *nearest* server —
is what commercial GeoDNS products ship. This example attaches a
clustered geographic layout (domains sit near population-center servers)
and compares:

* ``PROXIMITY``     — strict nearest-server routing;
* ``GEO-HYBRID``    — nearest-within-2x-RTT, filled by capacity;
* ``RR``            — the paper's lower bound;
* ``DRR2-TTL/S_K``  — the paper's best adaptive-TTL policy.

The finding mirrors operations folklore: proximity wins the network RTT
by 2x or more, but under Zipf-skewed demand it melts the servers near
the hot domains — total page latency (queueing + network) ends up an
order of magnitude *worse* than under load-aware adaptive TTL.

Usage::

    python examples/geographic_routing.py [duration_seconds]
"""

import sys

from repro import SimulationConfig, run_simulation
from repro.experiments.reporting import format_table

POLICIES = ["PROXIMITY", "GEO-HYBRID", "RR", "DRR2-TTL/S_K"]


def main() -> None:
    duration = float(sys.argv[1]) if len(sys.argv) > 1 else 2400.0

    print(
        "Clustered geography, 35% heterogeneity, "
        f"{duration:g}s per policy..."
    )
    rows = []
    for policy in POLICIES:
        config = SimulationConfig(
            policy=policy,
            heterogeneity=35,
            geography="clustered",
            duration=duration,
            seed=11,
        )
        result = run_simulation(config)
        total = result.mean_page_response_time + result.mean_network_rtt
        rows.append(
            (
                policy,
                f"{result.prob_max_below(0.98):.3f}",
                f"{result.mean_network_rtt * 1000:.1f} ms",
                f"{result.mean_page_response_time:.2f} s",
                f"{total:.2f} s",
            )
        )

    print()
    print(
        format_table(
            [
                "policy",
                "P(max<0.98)",
                "network RTT",
                "queueing delay",
                "total latency",
            ],
            rows,
        )
    )
    print()
    print(
        "Reading: PROXIMITY minimizes the network RTT but concentrates\n"
        "the hot domains on their nearest servers; the queueing delay it\n"
        "creates dwarfs the milliseconds it saved. Load-aware adaptive\n"
        "TTL pays a little more network latency and wins overall —\n"
        "modern CDNs combine both signals for exactly this reason."
    )


if __name__ == "__main__":
    main()
