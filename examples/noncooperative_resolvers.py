#!/usr/bin/env python3
"""Robustness study: non-cooperative name servers (Figs. 4-5 scenario).

Real-world resolvers often distrust small TTLs and impose their own
minimum. Adaptive-TTL policies that rely on *short* TTLs for hot domains
or slow servers lose control when that happens. This example sweeps the
resolver minimum-TTL threshold and shows the paper's operational advice:

* with full TTL control, use DRR2-TTL/S_K;
* behind aggressive resolvers on a highly heterogeneous site, prefer
  PRR2-TTL/K — its capacity handling lives in the routing, which
  resolvers cannot override.

Usage::

    python examples/noncooperative_resolvers.py [heterogeneity] [duration]
"""

import sys

from repro import SimulationConfig, run_simulation
from repro.experiments.reporting import format_table

POLICIES = ["DRR2-TTL/S_K", "PRR2-TTL/K", "PRR2-TTL/2"]
THRESHOLDS = [0.0, 60.0, 120.0]


def main() -> None:
    heterogeneity = int(sys.argv[1]) if len(sys.argv) > 1 else 50
    duration = float(sys.argv[2]) if len(sys.argv) > 2 else 2400.0

    print(
        f"Sweeping resolver minimum-TTL thresholds at {heterogeneity}% "
        f"heterogeneity ({duration:g}s per run)..."
    )
    rows = []
    for policy in POLICIES:
        cells = [policy]
        for threshold in THRESHOLDS:
            config = SimulationConfig(
                policy=policy,
                heterogeneity=heterogeneity,
                min_accepted_ttl=threshold,
                duration=duration,
                seed=11,
            )
            result = run_simulation(config)
            overridden = result.ns_ttl_overrides
            cells.append(
                f"{result.prob_max_below(0.98):.3f}"
                + (f" ({overridden} ovr)" if overridden else "")
            )
        rows.append(tuple(cells))

    print()
    headers = ["policy"] + [f"min TTL {t:g}s" for t in THRESHOLDS]
    print("P(max utilization < 0.98), higher is better:")
    print(format_table(headers, rows))
    print()
    print(
        "Reading: DRR2-TTL/S_K leads while resolvers cooperate; as the\n"
        "threshold grows, its short capacity-compensating TTLs get clamped\n"
        "and PRR2-TTL/K (capacity handled by probabilistic routing)\n"
        "becomes the better choice — the paper's Fig. 5 crossover."
    )


if __name__ == "__main__":
    main()
