#!/usr/bin/env python3
"""Quickstart: simulate one DNS scheduling policy and read the results.

Runs the paper's default scenario (Table 1: 7 servers at 20%
heterogeneity, 500 clients across 20 Zipf-distributed domains) under the
best adaptive-TTL policy, DRR2-TTL/S_K, and prints the metrics the paper
reports: the cumulative frequency of the maximum server utilization and
Prob(MaxUtilization < 0.98).

Usage::

    python examples/quickstart.py [policy] [duration_seconds]
"""

import sys

from repro import SimulationConfig, run_simulation
from repro.experiments.reporting import render_result


def main() -> None:
    policy = sys.argv[1] if len(sys.argv) > 1 else "DRR2-TTL/S_K"
    duration = float(sys.argv[2]) if len(sys.argv) > 2 else 3600.0

    config = SimulationConfig(policy=policy, duration=duration, seed=7)
    print(f"Simulating {policy} for {duration:g}s of site activity...")
    print(f"(expected average utilization: {config.offered_utilization:.3f})")
    print()

    result = run_simulation(config)

    print(render_result(result))
    print()
    print("Cumulative frequency of the maximum server utilization:")
    for x, p in result.cumulative_frequency([0.7, 0.8, 0.9, 0.95, 0.98, 1.0]):
        bar = "#" * int(50 * p)
        print(f"  P(max < {x:4.2f}) = {p:5.3f} |{bar}")
    print()
    mean, half = result.confidence_interval()
    print(
        f"Mean max utilization: {mean:.3f} +/- {half:.3f} "
        f"(95% batch-means CI)"
    )
    print(
        f"The DNS directly controlled {result.dns_control_fraction:.1%} of "
        f"all hits — the paper's core difficulty."
    )


if __name__ == "__main__":
    main()
