#!/usr/bin/env python3
"""Reproduce the paper's entire evaluation in one command.

Regenerates Tables 1-2 and Figures 1-7, runs the executable qualitative
checks from ``repro.experiments.paper`` against each figure, and writes
a Markdown report (plus per-figure CSVs) to the chosen output directory.

At the default duration (600 s per simulated point) the full run takes a
few minutes and reproduces every ordering, though with visible noise;
pass 3600 for the benchmark-grade setting or 18000 for the paper's full
five-hour runs.

Usage::

    python examples/reproduce_paper.py [duration_per_point] [output_dir]
"""

import pathlib
import sys
import time

from repro.experiments import CHECKS, FIGURES, table1, table2
from repro.experiments.persistence import save_json
from repro.experiments.reporting import (
    figure_to_csv,
    format_table,
    render_figure,
)


def main() -> None:
    duration = float(sys.argv[1]) if len(sys.argv) > 1 else 600.0
    output_dir = pathlib.Path(sys.argv[2] if len(sys.argv) > 2 else "paper_out")
    output_dir.mkdir(parents=True, exist_ok=True)

    report = []
    report.append("# Reproduction report")
    report.append("")
    report.append(f"Duration per simulated point: {duration:g} s; seed 1.")
    report.append("")

    report.append("## Table 1 — model parameters")
    report.append("```")
    report.append(format_table(["Parameter", "Setting"], table1()))
    report.append("```")

    report.append("## Table 2 — heterogeneity levels")
    rows = [
        (f"{level}%", ", ".join(f"{a:g}" for a in alphas))
        for level, alphas in sorted(table2().items())
    ]
    report.append("```")
    report.append(format_table(["Heterogeneity", "Relative capacities"], rows))
    report.append("```")

    total_violations = 0
    for figure_id in sorted(FIGURES):
        started = time.time()
        print(f"regenerating {figure_id} ...", flush=True)
        figure = FIGURES[figure_id](duration=duration, seed=1)
        elapsed = time.time() - started
        (output_dir / f"{figure_id}.csv").write_text(figure_to_csv(figure))
        save_json(figure, output_dir / f"{figure_id}.json")
        violations = CHECKS[figure_id](figure)
        total_violations += len(violations)

        report.append(f"## {figure_id} — {figure.title}")
        report.append("")
        report.append("```")
        report.append(render_figure(figure))
        report.append("```")
        if violations:
            report.append("Expectations NOT met:")
            for violation in violations:
                report.append(f"* {violation}")
        else:
            report.append("All paper expectations hold.")
        report.append(f"(regenerated in {elapsed:.1f}s wall-clock)")
        report.append("")

    report_path = output_dir / "REPORT.md"
    report_path.write_text("\n".join(report))
    print()
    print(f"report written to {report_path}")
    print(f"CSV/JSON series written to {output_dir}/")
    if total_violations:
        print(
            f"{total_violations} expectation(s) not met — expected at short "
            "durations; rerun with duration >= 3600 for stable orderings."
        )
    else:
        print("every qualitative expectation of the paper holds.")


if __name__ == "__main__":
    main()
