"""Setuptools shim.

The metadata lives in ``pyproject.toml``; this file exists so that the
legacy (non-PEP 660) editable-install path works in offline environments
that lack the ``wheel`` package.
"""

from setuptools import setup

setup()
