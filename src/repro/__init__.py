"""repro — reproduction of Colajanni, Cardellini & Yu (ICDCS 1998),
"Dynamic Load Balancing in Geographically Distributed Heterogeneous Web
Servers".

The package implements the paper's adaptive-TTL DNS scheduling policies
and every substrate they run on: a discrete-event simulation engine, the
DNS resolution path with caching name servers, a fluid web-server model
with alarm feedback, and the Zipf-skewed client workload. The
:mod:`repro.experiments` subpackage regenerates every table and figure of
the paper's evaluation.

Quickstart::

    from repro import SimulationConfig, run_simulation

    result = run_simulation(
        SimulationConfig(policy="DRR2-TTL/S_K", heterogeneity=35,
                         duration=3600.0, seed=7)
    )
    print(result.prob_max_below(0.98))
"""

from .core import (
    PAPER_POLICIES,
    PolicySpec,
    available_policies,
    build_policy,
    parse_policy_name,
)
from .errors import (
    ConfigurationError,
    EstimationError,
    PolicyError,
    ReproError,
    SimulationError,
    UnknownPolicyError,
)
from .experiments import (
    FIGURES,
    FigureResult,
    ParallelExecutor,
    SimulationConfig,
    SimulationResult,
    compare_policies,
    run_grid,
    run_replications,
    run_simulation,
    sweep,
)

__version__ = "1.0.0"

__all__ = [
    "ConfigurationError",
    "EstimationError",
    "FIGURES",
    "FigureResult",
    "PAPER_POLICIES",
    "ParallelExecutor",
    "PolicyError",
    "PolicySpec",
    "ReproError",
    "SimulationConfig",
    "SimulationError",
    "SimulationResult",
    "UnknownPolicyError",
    "__version__",
    "available_policies",
    "build_policy",
    "compare_policies",
    "parse_policy_name",
    "run_grid",
    "run_replications",
    "run_simulation",
    "sweep",
]
