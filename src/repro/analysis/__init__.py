"""Output analysis: fairness indices, warmup detection, comparisons.

Complements the paper's max-utilization metric with the standard
simulation-methodology toolbox:

* :mod:`repro.analysis.fairness` — Jain index, CoV, peak-to-mean;
* :mod:`repro.analysis.warmup` — MSER initial-transient truncation;
* :mod:`repro.analysis.comparison` — common-random-numbers paired
  intervals and stochastic-dominance checks between policies;
* :mod:`repro.analysis.timeseries` — per-server timelines, overload
  episodes, sparklines (requires ``keep_utilization_series=True``).
"""

from .comparison import (
    PairedComparison,
    paired_comparison,
    stochastically_dominates,
)
from .dossier import full_report
from .fairness import (
    coefficient_of_variation,
    imbalance_spread,
    jain_fairness_index,
    load_balance_report,
    max_mean_ratio,
)
from .timeseries import (
    fairness_over_time,
    max_series,
    overload_episodes,
    server_series,
    sparkline,
)
from .warmup import mser_cutoff, mser_statistic, truncate_warmup

__all__ = [
    "PairedComparison",
    "coefficient_of_variation",
    "fairness_over_time",
    "full_report",
    "imbalance_spread",
    "jain_fairness_index",
    "load_balance_report",
    "max_mean_ratio",
    "max_series",
    "mser_cutoff",
    "mser_statistic",
    "overload_episodes",
    "paired_comparison",
    "server_series",
    "sparkline",
    "stochastically_dominates",
    "truncate_warmup",
]
