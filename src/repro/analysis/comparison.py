"""Statistical comparison of scheduling policies.

Two policies are best compared under *common random numbers* (same seed,
same workload trajectory) and then across several independent seed pairs.
:func:`paired_comparison` forms the paired-difference confidence interval
of any scalar metric; :func:`stochastically_dominates` checks first-order
stochastic dominance of the max-utilization distributions (policy A
dominates B when its CDF lies above B's everywhere — a stronger statement
than any single-threshold comparison).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from ..errors import ConfigurationError
from ..experiments.config import SimulationConfig
from ..experiments.metrics import OVERLOAD_THRESHOLD, SimulationResult
from ..experiments.simulation import run_simulation
from ..sim.rng import derive_seed

Metric = Callable[[SimulationResult], float]


def _default_metric(result: SimulationResult) -> float:
    return result.prob_max_below(OVERLOAD_THRESHOLD)


@dataclass(frozen=True)
class PairedComparison:
    """Outcome of a common-random-numbers policy comparison."""

    policy_a: str
    policy_b: str
    #: Per-seed metric values.
    values_a: tuple
    values_b: tuple
    #: Mean of (a - b) differences.
    mean_difference: float
    #: 95% half-width of the mean difference (normal approximation).
    half_width: float

    @property
    def significant(self) -> bool:
        """Whether the interval for (a - b) excludes zero."""
        return abs(self.mean_difference) > self.half_width

    @property
    def better(self) -> Optional[str]:
        """The significantly better policy, or ``None`` if inconclusive."""
        if not self.significant:
            return None
        return self.policy_a if self.mean_difference > 0 else self.policy_b

    def __str__(self) -> str:
        verdict = self.better or "inconclusive"
        return (
            f"{self.policy_a} - {self.policy_b} = "
            f"{self.mean_difference:+.3f} +/- {self.half_width:.3f} "
            f"({verdict})"
        )


def paired_comparison(
    base: SimulationConfig,
    policy_a: str,
    policy_b: str,
    replications: int = 5,
    metric: Optional[Metric] = None,
) -> PairedComparison:
    """Compare two policies with common random numbers per replication.

    Each replication runs both policies under the same derived seed, so
    the per-seed difference cancels workload noise; the returned interval
    is over the paired differences.
    """
    if replications < 2:
        raise ConfigurationError(
            f"replications must be >= 2, got {replications!r}"
        )
    metric = metric or _default_metric
    values_a, values_b = [], []
    for index in range(replications):
        seed = derive_seed(base.seed, f"paired:{index}")
        values_a.append(
            metric(run_simulation(base.replace(policy=policy_a, seed=seed)))
        )
        values_b.append(
            metric(run_simulation(base.replace(policy=policy_b, seed=seed)))
        )
    differences = [a - b for a, b in zip(values_a, values_b)]
    n = len(differences)
    mean = sum(differences) / n
    variance = sum((d - mean) ** 2 for d in differences) / (n - 1)
    half = 1.96 * math.sqrt(variance / n)
    return PairedComparison(
        policy_a=policy_a,
        policy_b=policy_b,
        values_a=tuple(values_a),
        values_b=tuple(values_b),
        mean_difference=mean,
        half_width=half,
    )


def stochastically_dominates(
    a: SimulationResult,
    b: SimulationResult,
    grid: Optional[Sequence[float]] = None,
    tolerance: float = 0.0,
) -> bool:
    """First-order stochastic dominance of ``a`` over ``b``.

    ``a`` dominates when ``P_a(maxU < x) >= P_b(maxU < x)`` for every
    grid point ``x`` (up to ``tolerance``) — i.e. ``a``'s whole
    cumulative-frequency curve (Figs. 1-2) lies on or above ``b``'s.
    """
    if grid is None:
        grid = [0.5 + 0.02 * i for i in range(26)]
    cdf_a, cdf_b = a.cdf(), b.cdf()
    return all(
        cdf_a.probability_below(x) >= cdf_b.probability_below(x) - tolerance
        for x in grid
    )
