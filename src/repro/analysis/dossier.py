"""One-call plain-text dossier for a single simulation result.

:func:`full_report` composes every analysis view this package offers —
headline metrics, per-server balance, fairness indices, warm-up
diagnosis, overload episodes, and a sparkline timeline — into one block
of text. The CLI exposes it as ``repro run ... --report``.
"""

from __future__ import annotations

from typing import List

from ..experiments.metrics import SimulationResult
from ..experiments.reporting import format_table
from .fairness import load_balance_report
from .timeseries import max_series, overload_episodes, sparkline
from .warmup import mser_cutoff


def full_report(result: SimulationResult, overload_threshold: float = 0.98) -> str:
    """A plain-text dossier for one run (see module docstring).

    Time-series sections appear only when the result carries a
    utilization series (``keep_utilization_series=True``).
    """
    lines: List[str] = []
    summary = result.summary()

    lines.append(f"policy: {result.policy}")
    lines.append(
        f"simulated {result.duration:g}s, "
        f"{len(result.max_utilization_samples)} measurement intervals, "
        f"{result.total_sessions} sessions, {result.total_hits} hits"
    )
    lines.append("")

    lines.append("headline metrics")
    rows = [
        ("P(max util < 0.98)", f"{summary['prob_max_below_098']:.3f}"),
        ("P(max util < 0.90)", f"{summary['prob_max_below_090']:.3f}"),
        ("mean max utilization", f"{summary['mean_max_utilization']:.3f}"),
        ("mean page response", f"{result.mean_page_response_time:.3f} s"),
        ("worst page response", f"{result.max_page_response_time:.3f} s"),
        ("mean granted TTL", f"{result.mean_granted_ttl:.0f} s"),
        ("address-request rate", f"{result.address_request_rate:.4f} /s"),
        ("DNS control fraction", f"{result.dns_control_fraction:.2%}"),
        ("alarm signals", str(result.alarm_signals)),
    ]
    if result.mean_network_rtt:
        rows.append(
            ("mean network RTT", f"{result.mean_network_rtt * 1000:.1f} ms")
        )
    lines.append(format_table(["metric", "value"], rows))
    lines.append("")

    lines.append("server balance (mean utilization per server)")
    balance = load_balance_report(result.mean_utilization_per_server)
    per_server = "  ".join(
        f"S{i + 1}={u:.3f}"
        for i, u in enumerate(result.mean_utilization_per_server)
    )
    lines.append(f"  {per_server}")
    lines.append(
        f"  Jain index {balance['jain_index']:.3f}   "
        f"CoV {balance['coefficient_of_variation']:.3f}   "
        f"peak/mean {balance['max_mean_ratio']:.3f}   "
        f"spread {balance['spread']:.3f}"
    )
    lines.append("")

    cutoff = mser_cutoff(result.max_utilization_samples)
    lines.append(
        f"warm-up diagnosis (MSER-5): discard first {cutoff} of "
        f"{len(result.max_utilization_samples)} samples"
    )
    lines.append("")

    if result.utilization_series is not None:
        values = [v for _, v in max_series(result)]
        lines.append("max utilization over time")
        lines.append(f"  {sparkline(values)}")
        episodes = overload_episodes(result, threshold=overload_threshold)
        if episodes:
            total = sum(count for _, _, count in episodes)
            lines.append(
                f"overload episodes (>= {overload_threshold:g}): "
                f"{len(episodes)} episode(s), {total} interval(s)"
            )
            for start, end, count in episodes[:8]:
                lines.append(
                    f"  t={start:8.0f}s .. {end:8.0f}s ({count} intervals)"
                )
            if len(episodes) > 8:
                lines.append(f"  ... and {len(episodes) - 8} more")
        else:
            lines.append(
                f"no overload episodes (>= {overload_threshold:g})"
            )
    return "\n".join(lines)
