"""Load-balance and fairness indices over server utilizations.

The paper argues that averaged dispersion metrics (like the standard
deviation of utilizations) hide the operationally relevant event — *one*
overloaded server — and adopts the max-utilization CDF instead. These
classic indices are provided as complementary diagnostics: they quantify
*how* unbalanced the allocation is, which the binary overloaded/not view
cannot.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence

from ..errors import SimulationError


def _validate(utilizations: Sequence[float]) -> None:
    if not utilizations:
        raise SimulationError("need at least one utilization value")
    if any(u < 0 for u in utilizations):
        raise SimulationError("utilizations must be non-negative")


def jain_fairness_index(utilizations: Sequence[float]) -> float:
    """Jain's fairness index: ``(sum u)^2 / (n * sum u^2)``.

    1.0 = perfectly balanced; ``1/n`` = all load on one server. For an
    all-idle vector the allocation is trivially fair, so 1.0 is returned.
    """
    _validate(utilizations)
    peak = max(utilizations)
    if peak == 0:  # all idle: trivially fair
        return 1.0
    # Scale by the peak first: squaring tiny (denormal) utilizations
    # underflows and silently skews the index, while the index itself is
    # scale-invariant, so normalizing to [0, 1] costs nothing.
    scaled = [u / peak for u in utilizations]
    total = sum(scaled)
    squares = sum(u * u for u in scaled)
    return min(1.0, (total * total) / (len(scaled) * squares))


def coefficient_of_variation(utilizations: Sequence[float]) -> float:
    """Standard deviation over mean (population form); 0 = balanced."""
    _validate(utilizations)
    n = len(utilizations)
    mean = sum(utilizations) / n
    if mean == 0:
        return 0.0
    variance = sum((u - mean) ** 2 for u in utilizations) / n
    return math.sqrt(variance) / mean


def max_mean_ratio(utilizations: Sequence[float]) -> float:
    """Peak-to-average ratio; 1 = balanced, large = one hot server."""
    _validate(utilizations)
    mean = sum(utilizations) / len(utilizations)
    if mean == 0:
        return 1.0
    return max(utilizations) / mean


def imbalance_spread(utilizations: Sequence[float]) -> float:
    """``max - min`` of the utilization vector."""
    _validate(utilizations)
    return max(utilizations) - min(utilizations)


def load_balance_report(utilizations: Sequence[float]) -> Dict[str, float]:
    """All indices for one utilization vector, as a flat dict."""
    return {
        "jain_index": jain_fairness_index(utilizations),
        "coefficient_of_variation": coefficient_of_variation(utilizations),
        "max_mean_ratio": max_mean_ratio(utilizations),
        "spread": imbalance_spread(utilizations),
        "max": max(utilizations),
        "mean": sum(utilizations) / len(utilizations),
    }
