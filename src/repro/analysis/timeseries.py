"""Time-series views over recorded per-interval utilization vectors.

Requires a result produced with ``keep_utilization_series=True`` in the
:class:`~repro.experiments.config.SimulationConfig`.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..errors import SimulationError
from ..experiments.metrics import SimulationResult
from .fairness import load_balance_report

Series = List[Tuple[float, float]]


def _require_series(result: SimulationResult):
    if result.utilization_series is None:
        raise SimulationError(
            "result has no utilization series; run with "
            "keep_utilization_series=True"
        )
    return result.utilization_series


def server_series(result: SimulationResult, server_id: int) -> Series:
    """``(time, utilization)`` points for one server."""
    series = _require_series(result)
    if not series:
        return []
    if not 0 <= server_id < len(series[0][1]):
        raise SimulationError(f"no server {server_id!r} in the series")
    return [(now, vector[server_id]) for now, vector in series]


def max_series(result: SimulationResult) -> Series:
    """``(time, max utilization)`` points — the metric's raw timeline."""
    return [(now, max(vector)) for now, vector in _require_series(result)]


def overload_episodes(
    result: SimulationResult, threshold: float = 0.98
) -> List[Tuple[float, float, int]]:
    """Contiguous stretches with some server above ``threshold``.

    Returns ``(start, end, intervals)`` triples, ``end`` being the time
    of the last overloaded sample in the episode.
    """
    episodes: List[Tuple[float, float, int]] = []
    start = None
    last = None
    count = 0
    for now, vector in _require_series(result):
        if max(vector) >= threshold:
            if start is None:
                start = now
                count = 0
            last = now
            count += 1
        elif start is not None:
            episodes.append((start, last, count))
            start = None
    if start is not None:
        episodes.append((start, last, count))
    return episodes


def fairness_over_time(result: SimulationResult) -> List[Tuple[float, Dict[str, float]]]:
    """A :func:`load_balance_report` per recorded interval."""
    return [
        (now, load_balance_report(vector))
        for now, vector in _require_series(result)
    ]


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Render a series as a unicode sparkline (downsampled to ``width``)."""
    if not values:
        return ""
    blocks = "▁▂▃▄▅▆▇█"
    if len(values) > width:
        step = len(values) / width
        values = [
            max(values[int(i * step):max(int(i * step) + 1, int((i + 1) * step))])
            for i in range(width)
        ]
    low = min(values)
    high = max(values)
    span = (high - low) or 1.0
    return "".join(
        blocks[min(len(blocks) - 1, int((v - low) / span * len(blocks)))]
        for v in values
    )
