"""Warm-up (initial-transient) detection for steady-state series.

The paper runs five simulated hours and reports tight confidence
intervals, implicitly treating the initialization bias as negligible.
For shorter exploratory runs that bias matters; :func:`mser_cutoff`
implements the standard MSER heuristic (White, 1997): choose the
truncation point that minimizes the half-width proxy

``MSER(d) = var(X_{d+1..n}) / (n - d)^2``

over candidate cutoffs ``d``, i.e. keep deleting transient observations
while doing so reduces the standard error more than it costs in sample
size.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..errors import SimulationError


def _batch(series: Sequence[float], batch_size: int) -> List[float]:
    return [
        sum(series[i : i + batch_size]) / batch_size
        for i in range(0, len(series) - batch_size + 1, batch_size)
    ]


def mser_statistic(series: Sequence[float], cutoff: int) -> float:
    """The MSER objective for truncating the first ``cutoff`` samples."""
    tail = series[cutoff:]
    n = len(tail)
    if n < 2:
        raise SimulationError("cutoff leaves fewer than two observations")
    mean = sum(tail) / n
    variance = sum((x - mean) ** 2 for x in tail) / n
    return variance / (n * n)


def mser_cutoff(
    series: Sequence[float],
    batch_size: int = 5,
    max_fraction: float = 0.5,
) -> int:
    """MSER-``batch_size`` truncation point, in *original* samples.

    Parameters
    ----------
    series:
        The raw output series (e.g. per-interval max utilizations).
    batch_size:
        Batch the series first (MSER-5 is the common variant); 1 applies
        MSER to the raw series.
    max_fraction:
        Never truncate more than this fraction of the series (guards
        against the known MSER failure mode of deleting almost
        everything when the series ends on a quiet stretch).

    Returns
    -------
    Number of leading raw samples to discard.
    """
    if batch_size < 1:
        raise SimulationError(f"batch_size must be >= 1, got {batch_size!r}")
    if not 0.0 < max_fraction <= 1.0:
        raise SimulationError(
            f"max_fraction must be in (0, 1], got {max_fraction!r}"
        )
    if len(series) < 2 * batch_size:
        return 0
    batches = _batch(series, batch_size)
    limit = max(1, int(len(batches) * max_fraction))
    best_cutoff = 0
    best_value = mser_statistic(batches, 0)
    for cutoff in range(1, limit):
        if len(batches) - cutoff < 2:
            break
        value = mser_statistic(batches, cutoff)
        if value < best_value:
            best_value = value
            best_cutoff = cutoff
    return best_cutoff * batch_size


def truncate_warmup(
    series: Sequence[float], batch_size: int = 5
) -> Tuple[int, List[float]]:
    """Convenience: ``(cutoff, truncated_series)`` via :func:`mser_cutoff`."""
    cutoff = mser_cutoff(series, batch_size=batch_size)
    return cutoff, list(series[cutoff:])
