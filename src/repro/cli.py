"""Command-line interface: ``python -m repro`` or the ``repro`` script.

Subcommands
-----------
``run``
    Run one simulation and print its summary (``--sparkline`` adds a
    max-utilization timeline and overload episodes; ``--trace CATS``
    records the selected trace categories and prints the per-category
    record counts plus the metrics-registry block). With
    ``--checkpoint-dir DIR --checkpoint-every T`` the run snapshots its
    full model state into DIR every T simulated seconds and writes its
    artifact bundle there; ``--halt-at SIMTIME`` simulates a crash at a
    checkpoint boundary (exit code 3).
``resume``
    Resume an interrupted checkpointed run: replay deterministically to
    the last snapshot, verify its state digest bit-for-bit, continue to
    completion. The finished bundle is bit-identical to what the
    uninterrupted run would have written (see ``docs/CHECKPOINTING.md``).
``trace``
    Run one traced simulation and write its full observability bundle —
    result JSON, JSONL trace, provenance manifest — into a directory;
    or summarize an existing trace file with ``--inspect``.
``compare``
    Run several policies on the same scenario and print them side by
    side; ``--paired N`` adds a common-random-numbers paired comparison
    of the first two policies over N replications.
``sweep``
    Vary one configuration parameter for one policy and print
    ``Prob(MaxUtilization < 0.98)`` per value.
``grid``
    Full-factorial run over two parameters, rendered as a pivot table.
``validate``
    Run the model's internal consistency checks (see
    :mod:`repro.experiments.validation`).
``figure``
    Regenerate one of the paper's figures (fig1..fig7) as a text table or
    CSV.
``table``
    Print Table 1 (model parameters) or Table 2 (heterogeneity levels).
``report``
    Render a saved run bundle (``repro trace``/``save_run_artifacts``
    output) as a self-contained markdown or HTML report, or — with
    ``--compare A B`` — diff two bundles on the headline metrics and
    (with ``--fail-on-regression``) exit non-zero when the candidate
    regressed beyond ``--threshold`` percent.
``policies``
    List every policy name the registry knows.

``worker``
    ``repro worker serve --connect HOST:PORT`` turns this process into
    a dispatch worker agent: it pulls simulation cells leased by a
    coordinator running with ``--backend remote`` and streams progress
    back. Start any number of them, on any mix of hosts.

Multi-cell commands (``compare``, ``sweep``, ``grid``, ``figure``)
accept ``--workers N`` to fan their independent simulations out over N
worker processes; outputs are bit-identical for any value (each cell's
seed is fixed before submission) and a timing block is printed whenever
N > 1. See ``docs/PERFORMANCE.md``.

Every simulating command also accepts ``--backend remote --listen
HOST:PORT``: instead of a local process pool, the command becomes a
coordinator that leases its cells to ``repro worker serve`` agents over
TCP — multi-host fan-out with lease-based crash tolerance, results
bit-identical to ``--workers 1`` regardless of worker count or crashes.
See ``docs/DISTRIBUTED.md``.

Every simulating command also accepts ``--engine-mode fastforward``:
the hybrid fluid/event engine (:mod:`repro.sim.fastforward`) that
batch-advances quiescent client wakes natively. Results, trajectories
and checkpoint digests are bit-identical to the reference ``event``
mode — the mode only changes wall-clock time — and ineligible
configurations fall back to reference event-stepping automatically
(the fallback reasons land in the provenance manifest). See
``docs/PERFORMANCE.md``.

Every simulating command also accepts ``--progress`` (a live terminal
progress line: completed/total cells, throughput, ETA, busy workers)
and ``--progress-log PATH`` (a machine-readable JSONL heartbeat log);
both observe the run without perturbing it — results are identical
with or without them. See ``docs/OBSERVABILITY.md``.

They also accept ``--checkpoint-dir DIR --checkpoint-every T``: each
cell checkpoints into its own ``cell-NNNN/`` subdirectory, and rerunning
the same command over the same DIR reloads finished cells and resumes
interrupted ones from their last digest-verified snapshot — so a killed
grid restarts from where it was instead of from zero, with bit-identical
outputs. See ``docs/CHECKPOINTING.md``.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional, Tuple

from .core.registry import available_policies
from .experiments.config import SimulationConfig
from .experiments.executor import ExecutionStats, ParallelExecutor
from .experiments.figures import FIGURES, table1, table2
from .experiments.reporting import (
    figure_to_csv,
    format_table,
    render_comparison,
    render_execution,
    render_figure,
    render_metrics,
    render_result,
    render_trace_counts,
)
from .experiments.runner import compare_policies
from .experiments.simulation import run_simulation
from .sim.tracing import TRACE_CATEGORIES


def _print_execution(
    stats: Optional[ExecutionStats], labels: Optional[List[str]] = None
) -> None:
    """Print the timing block for an explicitly parallel invocation."""
    if stats is not None and stats.workers > 1:
        print()
        print(render_execution(stats, labels=labels))


def _add_scenario_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--heterogeneity", type=int, default=20,
        help="heterogeneity level %% (Table 2: 0, 20, 35, 50, 65)",
    )
    parser.add_argument(
        "--duration", type=float, default=3600.0,
        help="simulated seconds (paper: 18000)",
    )
    parser.add_argument("--seed", type=int, default=1, help="master random seed")
    parser.add_argument(
        "--domains", type=int, default=20, help="connected client domains K"
    )
    parser.add_argument(
        "--clients", type=int, default=500, help="total number of clients"
    )
    parser.add_argument(
        "--min-ttl", type=float, default=0.0,
        help="non-cooperative NS minimum accepted TTL (seconds)",
    )
    parser.add_argument(
        "--error", type=float, default=0.0,
        help="hidden-load estimation error as a fraction (e.g. 0.3)",
    )
    parser.add_argument(
        "--estimator", choices=("oracle", "measured", "window"),
        default="oracle", help="hidden-load estimator",
    )
    parser.add_argument(
        "--geography", choices=("none", "random", "clustered"),
        default="none",
        help="attach a geographic layout (enables PROXIMITY/GEO-HYBRID "
        "and network-RTT metrics)",
    )
    parser.add_argument(
        "--population", choices=("auto", "eager", "lazy"), default="auto",
        help="client-population implementation: 'eager' (one generator "
        "process per client), 'lazy' (sharded flat-slot population; "
        "bounded memory at large scale), or 'auto' (lazy at >= 100k "
        "clients); all choices are bit-identical",
    )
    parser.add_argument(
        "--workload-source", choices=("synthetic", "trace"),
        default="synthetic",
        help="'synthetic' (closed client population, the paper's model) "
        "or 'trace' (open arrival process replaying a rate schedule)",
    )
    parser.add_argument(
        "--trace-profile", choices=("constant", "ramp", "diurnal", "replay"),
        default="constant",
        help="arrival-rate profile of the trace workload source",
    )
    parser.add_argument(
        "--trace-rate", type=float, default=0.0,
        help="mean session arrival rate in sessions/s (0 = derive the "
        "rate matching --clients synthetic clients)",
    )
    parser.add_argument(
        "--trace-amplitude", type=float, default=0.5,
        help="relative rate swing of the ramp/diurnal profiles, in [0, 1]",
    )
    parser.add_argument(
        "--trace-period", type=float, default=3600.0,
        help="period of the diurnal profile in seconds",
    )
    parser.add_argument(
        "--trace-path", metavar="PATH", default=None,
        help="JSONL rate-trace file for --trace-profile replay "
        "(lines: {\"t\": seconds, \"rate\": sessions/s})",
    )
    parser.add_argument(
        "--save", metavar="PATH", default=None,
        help="also write the result as JSON to PATH",
    )
    _add_workers_argument(parser)


def _add_workers_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker processes for multi-cell commands (default 1 = "
        "serial; results are identical for any value)",
    )
    parser.add_argument(
        "--engine-mode", choices=("event", "fastforward"), default="event",
        help="dispatch engine: 'event' (reference) or 'fastforward' "
        "(hybrid fluid/event batch-advance; bit-identical results, "
        "faster on eligible configs, automatic per-config fallback "
        "otherwise)",
    )
    parser.add_argument(
        "--progress", action=argparse.BooleanOptionalAction, default=False,
        help="show a live progress line (cells done, cells/s, ETA, busy "
        "workers) on stderr; results are identical either way",
    )
    parser.add_argument(
        "--progress-log", metavar="PATH", default=None,
        help="append per-cell started/finished heartbeats to PATH as "
        "JSONL (tail-able while the batch runs)",
    )
    parser.add_argument(
        "--checkpoint-dir", metavar="DIR", default=None,
        help="write periodic checkpoints into DIR (one cell-NNNN/ "
        "subdirectory per cell for multi-cell commands); rerunning the "
        "same command over the same DIR reloads finished cells and "
        "resumes interrupted ones from their last verified snapshot, "
        "with results bit-identical to an uninterrupted run",
    )
    parser.add_argument(
        "--checkpoint-every", type=float, default=0.0, metavar="T",
        help="checkpoint cadence in simulated seconds (required with "
        "--checkpoint-dir)",
    )
    parser.add_argument(
        "--backend", choices=("local", "remote"), default="local",
        help="where cells execute: 'local' (this machine's process "
        "pool, the default) or 'remote' (lease cells to 'repro worker "
        "serve' agents over TCP; results are bit-identical either way)",
    )
    parser.add_argument(
        "--listen", metavar="HOST:PORT", default="127.0.0.1:7571",
        help="with --backend remote: the address the coordinator "
        "listens on for workers (port 0 picks an ephemeral port; "
        "default: 127.0.0.1:7571)",
    )
    parser.add_argument(
        "--lease-timeout", type=float, default=30.0, metavar="SECONDS",
        help="with --backend remote: seconds a leased cell may go "
        "without a worker heartbeat before it is re-leased "
        "(default: 30)",
    )
    parser.add_argument(
        "--span-log", metavar="PATH", default=None,
        help="with --backend remote: append coordinator cell-lifecycle "
        "span events (submit/lease/heartbeat/complete/expire) to PATH "
        "as JSONL; feed it — merged with worker span logs — to 'repro "
        "fabric timeline'. Off by default; results are bit-identical "
        "either way",
    )
    parser.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="with --backend remote: serve the coordinator's /metrics "
        "(Prometheus text) and /healthz endpoints on PORT (0 picks an "
        "ephemeral port); off by default",
    )


def _checkpoint_options(
    args: argparse.Namespace,
) -> Tuple[Optional[str], float]:
    """Validated ``(--checkpoint-dir, --checkpoint-every)`` pair."""
    directory = getattr(args, "checkpoint_dir", None)
    every = getattr(args, "checkpoint_every", 0.0)
    if directory is not None and every <= 0:
        raise SystemExit(
            "error: --checkpoint-dir requires --checkpoint-every T (> 0 "
            "simulated seconds)"
        )
    if directory is None and every > 0:
        raise SystemExit(
            "error: --checkpoint-every requires --checkpoint-dir DIR"
        )
    if directory is None and getattr(args, "halt_at", None) is not None:
        raise SystemExit("error: --halt-at requires --checkpoint-dir DIR")
    return directory, every


def _listen_hint(address) -> None:
    """Tell the operator where workers should connect (stderr)."""
    host, port = address
    print(
        f"[dispatch] coordinator listening on {host}:{port} — start "
        f"workers with: repro worker serve --connect {host}:{port}",
        file=sys.stderr,
    )


def _executor(args: argparse.Namespace, progress, workers=None):
    """The executor a simulating command asked for, flags applied."""
    directory, every = _checkpoint_options(args)
    backend = getattr(args, "backend", "local")
    return ParallelExecutor(
        workers=getattr(args, "workers", 1) if workers is None else workers,
        progress=progress,
        checkpoint_dir=directory,
        checkpoint_every=every,
        engine_mode=getattr(args, "engine_mode", "event"),
        backend=backend,
        listen=getattr(args, "listen", None),
        lease_timeout=getattr(args, "lease_timeout", 30.0),
        on_listen=_listen_hint if backend == "remote" else None,
        span_log=getattr(args, "span_log", None),
        metrics_port=getattr(args, "metrics_port", None),
    )


def _progress_sink(args: argparse.Namespace):
    """The progress sink the flags ask for, or ``None`` for silence."""
    sinks = []
    if getattr(args, "progress", False):
        from .obs.progress import TerminalProgressRenderer

        sinks.append(TerminalProgressRenderer())
    if getattr(args, "progress_log", None):
        from .obs.progress import JsonlProgressSink

        sinks.append(JsonlProgressSink(args.progress_log))
    if not sinks:
        return None
    if len(sinks) == 1:
        return sinks[0]
    from .obs.progress import TeeProgressSink

    return TeeProgressSink(sinks)


def _parse_trace_categories(text: str) -> Optional[Tuple[str, ...]]:
    """``"dns,alarm"`` -> ``("dns", "alarm")``; ``"all"`` -> ``None``."""
    if text.strip().lower() == "all":
        return None
    return tuple(c.strip() for c in text.split(",") if c.strip())


def _print_observability(result) -> None:
    """Print the trace-count and metrics blocks of a traced run."""
    if result.trace is not None:
        print()
        print(
            render_trace_counts(
                result.trace_category_counts(), len(result.trace)
            )
        )
    if result.metrics:
        print()
        print(render_metrics(result.metrics))


def _scenario_config(
    args: argparse.Namespace, policy: str, **extra
) -> SimulationConfig:
    return SimulationConfig(
        policy=policy,
        heterogeneity=args.heterogeneity,
        duration=args.duration,
        seed=args.seed,
        domain_count=args.domains,
        total_clients=args.clients,
        min_accepted_ttl=args.min_ttl,
        workload_error=args.error,
        estimator=args.estimator,
        geography=args.geography,
        population=getattr(args, "population", "auto"),
        workload_source=getattr(args, "workload_source", "synthetic"),
        trace_profile=getattr(args, "trace_profile", "constant"),
        trace_rate=getattr(args, "trace_rate", 0.0),
        trace_amplitude=getattr(args, "trace_amplitude", 0.5),
        trace_period=getattr(args, "trace_period", 3600.0),
        trace_path=getattr(args, "trace_path", None),
        **extra,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Adaptive-TTL DNS load balancing for heterogeneous web servers "
            "(reproduction of Colajanni, Cardellini & Yu, ICDCS 1998)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="run one simulation")
    run_parser.add_argument("policy", help="policy name, e.g. DRR2-TTL/S_K")
    run_parser.add_argument(
        "--sparkline", action="store_true",
        help="print a max-utilization timeline and overload episodes",
    )
    run_parser.add_argument(
        "--report", action="store_true",
        help="print the full analysis dossier instead of the summary",
    )
    run_parser.add_argument(
        "--trace", metavar="CATEGORIES", default=None,
        help="record a trace: comma-separated categories "
        f"({', '.join(TRACE_CATEGORIES)}) or 'all'; prints the "
        "per-category counts and the metrics block, and --save then also "
        "writes a .trace.jsonl and .manifest.json next to the result",
    )
    run_parser.add_argument(
        "--halt-at", type=float, default=None, metavar="SIMTIME",
        help="simulate a crash: stop (exit code 3) at the first "
        "checkpoint boundary at or past SIMTIME simulated seconds, "
        "leaving the checkpoints for 'repro resume' (requires "
        "--checkpoint-dir)",
    )
    _add_scenario_arguments(run_parser)

    resume_parser = sub.add_parser(
        "resume",
        help="resume an interrupted checkpointed run (replays to the "
        "last snapshot, verifies its digest bit-for-bit, continues)",
    )
    resume_parser.add_argument(
        "bundle",
        help="checkpoint directory of the interrupted run (the "
        "--checkpoint-dir of 'repro run')",
    )
    resume_parser.add_argument(
        "--halt-at", type=float, default=None, metavar="SIMTIME",
        help="simulate another crash at the first checkpoint boundary "
        "at or past SIMTIME (exit code 3)",
    )
    resume_parser.add_argument(
        "--engine-mode", choices=("event", "fastforward"), default=None,
        help="dispatch engine for the resumed run (default: the mode "
        "the checkpoint records; requesting a different mode is "
        "refused by name)",
    )

    trace_parser = sub.add_parser(
        "trace",
        help="run one traced simulation and write its observability "
        "bundle (result + JSONL trace + provenance manifest)",
    )
    trace_parser.add_argument(
        "policy", nargs="?", default=None,
        help="policy name (required unless --inspect is used)",
    )
    trace_parser.add_argument(
        "--categories", metavar="CATEGORIES", default="all",
        help="comma-separated trace categories "
        f"({', '.join(TRACE_CATEGORIES)}) or 'all' (default)",
    )
    trace_parser.add_argument(
        "--out", metavar="DIR", default="repro-trace",
        help="output directory for the bundle (default: ./repro-trace)",
    )
    trace_parser.add_argument(
        "--inspect", metavar="FILE", default=None,
        help="summarize an existing .trace.jsonl instead of running",
    )
    _add_scenario_arguments(trace_parser)

    compare_parser = sub.add_parser("compare", help="compare several policies")
    compare_parser.add_argument(
        "policy", nargs="+", help="policy names to compare"
    )
    compare_parser.add_argument(
        "--paired", type=int, default=0, metavar="N",
        help="also run a paired comparison of the first two policies "
        "over N common-random-numbers replications",
    )
    _add_scenario_arguments(compare_parser)

    sweep_parser = sub.add_parser(
        "sweep", help="vary one parameter for one policy"
    )
    sweep_parser.add_argument("policy", help="policy name")
    sweep_parser.add_argument(
        "--param", required=True,
        help="SimulationConfig field to vary (e.g. heterogeneity, "
        "min_accepted_ttl, workload_error, total_clients)",
    )
    sweep_parser.add_argument(
        "--values", required=True,
        help="comma-separated values (numbers parsed automatically)",
    )
    _add_scenario_arguments(sweep_parser)

    figure_parser = sub.add_parser("figure", help="regenerate a paper figure")
    figure_parser.add_argument("figure_id", choices=sorted(FIGURES))
    figure_parser.add_argument(
        "--duration", type=float, default=None,
        help="simulated seconds per point (default: 3600, or 18000 with "
        "REPRO_PAPER_FIDELITY=1)",
    )
    figure_parser.add_argument("--seed", type=int, default=1)
    figure_parser.add_argument(
        "--csv", action="store_true", help="emit CSV instead of a text table"
    )
    figure_parser.add_argument(
        "--save", metavar="PATH", default=None,
        help="also write the figure as JSON to PATH",
    )
    _add_workers_argument(figure_parser)

    table_parser = sub.add_parser("table", help="print a paper table")
    table_parser.add_argument("table_id", choices=("table1", "table2"))
    _add_workers_argument(table_parser)  # tables are static data; a no-op

    report_parser = sub.add_parser(
        "report",
        help="render a saved run bundle as a report, or diff two "
        "bundles with a regression gate",
    )
    report_parser.add_argument(
        "bundle", nargs="+",
        help="bundle directory written by 'repro trace' or "
        "save_run_artifacts (two directories with --compare: "
        "baseline then candidate)",
    )
    report_parser.add_argument(
        "--compare", action="store_true",
        help="diff two bundles (baseline candidate) instead of "
        "rendering one",
    )
    report_parser.add_argument(
        "--format", choices=("markdown", "html"), default="markdown",
        help="output format (default: markdown)",
    )
    report_parser.add_argument(
        "--out", metavar="PATH", default=None,
        help="write the report to PATH instead of stdout",
    )
    report_parser.add_argument(
        "--stem", default=None,
        help="bundle file stem (default: auto-detected, 'run' for "
        "'repro trace' bundles)",
    )
    report_parser.add_argument(
        "--threshold", type=float, default=5.0, metavar="PCT",
        help="regression threshold in percent for --compare "
        "(default: 5.0)",
    )
    report_parser.add_argument(
        "--fail-on-regression", action="store_true",
        help="with --compare: exit non-zero when any gated metric "
        "regressed beyond the threshold",
    )
    report_parser.add_argument(
        "--gate-wall-time", action="store_true",
        help="with --compare: include wall time in the regression gate "
        "(off by default; it is hardware-dependent)",
    )

    grid_parser = sub.add_parser(
        "grid", help="full-factorial run over two parameters"
    )
    grid_parser.add_argument(
        "--rows", required=True, metavar="FIELD=V1,V2,...",
        help="row axis, e.g. policy=RR,PRR2-TTL/K,DRR2-TTL/S_K",
    )
    grid_parser.add_argument(
        "--cols", required=True, metavar="FIELD=V1,V2,...",
        help="column axis, e.g. heterogeneity=20,35,50,65",
    )
    _add_scenario_arguments(grid_parser)

    worker_parser = sub.add_parser(
        "worker",
        help="dispatch worker agent for '--backend remote' commands",
    )
    worker_sub = worker_parser.add_subparsers(
        dest="worker_command", required=True
    )
    serve_parser = worker_sub.add_parser(
        "serve",
        help="pull and execute cells leased by a remote-backend "
        "coordinator, reconnecting between batches",
    )
    serve_parser.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="coordinator address (the --listen of the coordinating "
        "command)",
    )
    serve_parser.add_argument(
        "--connect-timeout", type=float, default=10.0, metavar="SECONDS",
        help="exit after this long without a coordinator answering "
        "(default: 10; exit status 0 if any cells were served, 1 if "
        "no coordinator was ever reached)",
    )
    serve_parser.add_argument(
        "--id", dest="worker_id", default=None, metavar="NAME",
        help="worker name recorded in rosters and provenance manifests "
        "(default: host:pid)",
    )
    serve_parser.add_argument(
        "--crash-after", type=int, default=None, metavar="N",
        help="chaos hook for crash-tolerance tests: after completing N "
        "cells, take one more lease and die mid-cell without "
        "cleanup (exit status 17)",
    )
    serve_parser.add_argument(
        "--span-log", metavar="PATH", default=None,
        help="append this worker's span events (execute/finish/"
        "result-sent, with lease attempt numbers) to PATH as JSONL "
        "for 'repro fabric timeline'",
    )
    serve_parser.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="serve this worker's /metrics (leases held, cells/s, "
        "heartbeat RTT, RSS) and /healthz endpoints on PORT (0 picks "
        "an ephemeral port; the bound address is logged)",
    )
    serve_parser.add_argument(
        "--crash-dir", metavar="DIR", default=None,
        help="crash forensics: keep a ring buffer of the last span "
        "events and flush it to DIR/crash-<worker>.jsonl on abnormal "
        "exit (SIGTERM, unhandled exception, or the --crash-after "
        "chaos hook)",
    )
    serve_parser.add_argument(
        "--span-ring", type=int, default=None, metavar="N",
        help="ring buffer size for --crash-dir (default: 512)",
    )

    fabric_parser = sub.add_parser(
        "fabric",
        help="observe a remote-backend run: live status and post-hoc "
        "timelines",
    )
    fabric_sub = fabric_parser.add_subparsers(
        dest="fabric_command", required=True
    )
    status_parser = fabric_sub.add_parser(
        "status",
        help="scrape a live /metrics endpoint (coordinator or worker) "
        "and print its health and metric samples",
    )
    status_parser.add_argument(
        "endpoint", metavar="HOST:PORT",
        help="a --metrics-port endpoint to scrape",
    )
    status_parser.add_argument(
        "--raw", action="store_true",
        help="print the raw Prometheus exposition text instead of the "
        "parsed summary",
    )
    timeline_parser = fabric_sub.add_parser(
        "timeline",
        help="reconstruct per-cell timelines from span logs (merge the "
        "coordinator's --span-log with any worker --span-log files), "
        "reconcile the lease ledger, and print per-worker lanes with "
        "re-lease annotations and a straggler summary",
    )
    timeline_parser.add_argument(
        "span_logs", nargs="+", metavar="SPANS.jsonl",
        help="span log files to merge (coordinator and/or workers; "
        "crash-*.jsonl ring flushes work too)",
    )
    timeline_parser.add_argument(
        "--run", default=None, metavar="ID",
        help="batch run id to reconstruct (default: the latest run "
        "in the logs; use 'repro fabric timeline --list-runs' to see "
        "all)",
    )
    timeline_parser.add_argument(
        "--list-runs", action="store_true",
        help="list the run ids present in the span logs and exit",
    )
    timeline_parser.add_argument(
        "--stragglers", type=int, default=5, metavar="N",
        help="slowest-cells rows in the straggler table (default: 5)",
    )

    validate_parser = sub.add_parser(
        "validate", help="run the model's internal consistency checks"
    )
    validate_parser.add_argument(
        "--duration", type=float, default=3600.0,
        help="simulated seconds for the validation run",
    )
    validate_parser.add_argument("--seed", type=int, default=1)

    sub.add_parser("policies", help="list known policy names")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    progress = _progress_sink(args)
    try:
        return _run_command(args, progress)
    finally:
        if progress is not None:
            progress.close()


def _fabric_command(args: argparse.Namespace) -> int:
    """``repro fabric status|timeline`` — observe a dispatched run."""
    if args.fabric_command == "status":
        import json as json_module
        from urllib.error import URLError

        from .obs.export import parse_prom_text
        from .obs.http import scrape_endpoint

        try:
            health_text = scrape_endpoint(args.endpoint, path="/healthz")
            metrics_text = scrape_endpoint(args.endpoint, path="/metrics")
        except (OSError, URLError) as exc:
            print(
                f"error: cannot scrape {args.endpoint}: {exc}",
                file=sys.stderr,
            )
            return 1
        if args.raw:
            print(metrics_text, end="")
            return 0
        health = json_module.loads(health_text)
        role = health.pop("role", "unknown")
        status = health.pop("status", "?")
        print(f"{role} at {args.endpoint}: {status}")
        for key in sorted(health):
            print(f"  {key}: {health[key]}")
        exposition = parse_prom_text(metrics_text)
        print()
        for name in sorted(exposition.samples):
            kind = exposition.types.get(name.split("{")[0], "")
            suffix = f"  ({kind})" if kind else ""
            print(f"  {name} = {exposition.samples[name]:g}{suffix}")
        return 0

    # timeline
    from .obs.spans import (
        FabricTimeline,
        load_span_logs,
        render_fabric_timeline,
    )

    events, torn = load_span_logs(args.span_logs)
    if torn:
        print(
            f"[salvage: skipped {torn} torn span line(s)]", file=sys.stderr
        )
    if args.list_runs:
        for run in FabricTimeline.runs(events):
            print(run)
        return 0
    timeline = FabricTimeline.from_events(events, run=args.run)
    if timeline.run is None:
        print("error: no run ids in the given span logs", file=sys.stderr)
        return 1
    reconciliation = timeline.reconcile()
    print(
        render_fabric_timeline(
            timeline, reconciliation, stragglers=args.stragglers
        )
    )
    return 0 if reconciliation.ok else 2


def _run_command(args: argparse.Namespace, progress) -> int:
    if args.command == "worker":
        from .experiments.dispatch import parse_address, serve
        from .obs.spans import DEFAULT_RING_SIZE

        return serve(
            parse_address(args.connect),
            connect_timeout=args.connect_timeout,
            worker_id=args.worker_id,
            crash_after=args.crash_after,
            log=lambda message: print(message, file=sys.stderr),
            span_log=args.span_log,
            metrics_port=args.metrics_port,
            span_ring=(
                args.span_ring
                if args.span_ring is not None
                else DEFAULT_RING_SIZE
            ),
            crash_dir=args.crash_dir,
        )

    if args.command == "fabric":
        return _fabric_command(args)

    if args.command == "run":
        traced = args.trace is not None
        config = _scenario_config(
            args,
            args.policy,
            keep_utilization_series=args.sparkline or args.report,
            trace=traced,
            trace_categories=(
                _parse_trace_categories(args.trace) if traced else None
            ),
        )
        checkpoint_dir, checkpoint_every = _checkpoint_options(args)
        if getattr(args, "backend", "local") == "remote":
            if args.halt_at is not None:
                raise SystemExit(
                    "error: --halt-at simulates a local crash; it does "
                    "not combine with --backend remote (kill a worker "
                    "instead — the lease protocol recovers)"
                )
            executor = _executor(args, progress, workers=1)
            result = executor.run_simulations(
                [config], labels=[args.policy]
            )[0]
            if checkpoint_dir is not None:
                print(
                    f"[checkpointed bundle written to "
                    f"{checkpoint_dir}/cell-0000]"
                )
        elif checkpoint_dir is not None:
            from .experiments.checkpointing import run_with_checkpoints

            result = run_with_checkpoints(
                config,
                every=checkpoint_every,
                directory=checkpoint_dir,
                halt_at=args.halt_at,
                engine_mode=args.engine_mode,
            )
            if result is None:
                print(
                    f"[halted at the first checkpoint past simulated "
                    f"t={args.halt_at:g}s; continue with: "
                    f"repro resume {checkpoint_dir}]"
                )
                return 3
            print(f"[checkpointed bundle written to {checkpoint_dir}]")
        elif progress is not None:
            executor = ParallelExecutor(
                workers=1, progress=progress, engine_mode=args.engine_mode
            )
            result = executor.run_simulations(
                [config], labels=[args.policy]
            )[0]
        else:
            result = run_simulation(config, engine_mode=args.engine_mode)
        if args.report:
            from .analysis import full_report

            print(full_report(result))
        else:
            print(render_result(result))
        if traced:
            _print_observability(result)
        if args.save:
            from .experiments.persistence import save_json

            path = save_json(result, args.save)
            print(f"[result saved to {path}]")
            if traced:
                from .obs import write_manifest, write_trace_jsonl

                base = (
                    path.with_suffix("") if path.suffix == ".json" else path
                )
                trace_path = write_trace_jsonl(
                    result.trace, pathlib.Path(f"{base}.trace.jsonl")
                )
                manifest_path = write_manifest(
                    config,
                    pathlib.Path(f"{base}.manifest.json"),
                    engine_mode=args.engine_mode,
                )
                print(f"[trace saved to {trace_path}]")
                print(f"[manifest saved to {manifest_path}]")
        if args.sparkline:
            from .analysis import max_series, overload_episodes, sparkline

            values = [value for _, value in max_series(result)]
            print()
            print(f"max utilization over time: {sparkline(values)}")
            episodes = overload_episodes(result, threshold=0.98)
            if episodes:
                print(f"overload episodes (>= 0.98): {len(episodes)}")
                for start, end, intervals in episodes[:10]:
                    print(
                        f"  t={start:8.0f}s .. {end:8.0f}s "
                        f"({intervals} intervals)"
                    )
                if len(episodes) > 10:
                    print(f"  ... and {len(episodes) - 10} more")
            else:
                print("no overload episodes (>= 0.98)")
        return 0

    if args.command == "resume":
        from .errors import CheckpointError
        from .experiments.checkpointing import resume_run

        try:
            result = resume_run(
                args.bundle,
                halt_at=args.halt_at,
                engine_mode=args.engine_mode,
            )
        except CheckpointError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        if result is None:
            print(
                f"[halted again at the first checkpoint past simulated "
                f"t={args.halt_at:g}s; continue with: "
                f"repro resume {args.bundle}]"
            )
            return 3
        print(render_result(result))
        _print_observability(result)
        print(f"[completed bundle written to {args.bundle}]")
        return 0

    if args.command == "trace":
        from .obs import category_counts, read_trace_jsonl

        if args.inspect:
            records = read_trace_jsonl(args.inspect)
            print(render_trace_counts(category_counts(records), len(records)))
            return 0
        if not args.policy:
            print("error: a policy name is required (or use --inspect)",
                  file=sys.stderr)
            return 2
        config = _scenario_config(
            args,
            args.policy,
            trace=True,
            trace_categories=_parse_trace_categories(args.categories),
        )
        executor = _executor(args, progress, workers=1)
        result = executor.run_simulations([config], labels=[args.policy])[0]
        from .experiments.persistence import save_run_artifacts

        paths = save_run_artifacts(
            result,
            args.out,
            extra={
                "command": "trace",
                "categories": args.categories,
                "wall_time": executor.last_stats.wall_time,
            },
            workers=1,
            engine_mode=args.engine_mode,
            dispatch=executor.dispatch_info(),
        )
        print(render_result(result))
        _print_observability(result)
        print()
        for artifact, path in sorted(paths.items()):
            print(f"[{artifact} saved to {path}]")
        return 0

    if args.command == "compare":
        base = _scenario_config(args, args.policy[0])
        executor = _executor(args, progress)
        results = compare_policies(base, args.policy, executor=executor)
        print(render_comparison(results))
        _print_execution(executor.last_stats, labels=list(args.policy))
        if args.paired and len(args.policy) >= 2:
            from .analysis import paired_comparison

            comparison = paired_comparison(
                base, args.policy[0], args.policy[1],
                replications=args.paired,
            )
            print()
            print(f"paired comparison ({args.paired} replications):")
            print(f"  {comparison}")
        return 0

    if args.command == "sweep":
        def parse_value(text: str):
            for cast in (int, float):
                try:
                    return cast(text)
                except ValueError:
                    continue
            return text

        values = [parse_value(v) for v in args.values.split(",") if v]
        base = _scenario_config(args, args.policy)
        from .experiments.runner import sweep as run_sweep

        executor = _executor(args, progress)
        rows = [
            (value, f"{metric:.3f}", f"{result.mean_max_utilization:.3f}")
            for value, metric, result in run_sweep(
                base, args.param, values, executor=executor
            )
        ]
        print(
            format_table(
                [args.param, "P(max<0.98)", "mean max util"], rows
            )
        )
        _print_execution(
            executor.last_stats,
            labels=[f"{args.param}={value}" for value in values],
        )
        return 0

    if args.command == "figure":
        figure = FIGURES[args.figure_id](
            duration=args.duration,
            seed=args.seed,
            workers=args.workers,
            executor=_executor(args, progress),
        )
        print(figure_to_csv(figure) if args.csv else render_figure(figure))
        if args.save:
            from .experiments.persistence import save_json

            path = save_json(figure, args.save)
            print(f"[figure saved to {path}]")
        return 0

    if args.command == "table":
        if args.table_id == "table1":
            print(format_table(["Parameter", "Setting"], table1()))
        else:
            rows = [
                (f"{level}%", ", ".join(f"{a:g}" for a in alphas))
                for level, alphas in sorted(table2().items())
            ]
            print(format_table(["Heterogeneity", "Relative capacities"], rows))
        return 0

    if args.command == "grid":
        def parse_axis(text: str):
            field, _, raw_values = text.partition("=")
            if not raw_values:
                raise SystemExit(f"bad axis {text!r}: expected FIELD=V1,V2")

            def parse_value(token: str):
                for cast in (int, float):
                    try:
                        return cast(token)
                    except ValueError:
                        continue
                return token

            return field, [parse_value(v) for v in raw_values.split(",") if v]

        row_field, row_values = parse_axis(args.rows)
        col_field, col_values = parse_axis(args.cols)
        from .experiments.grid import run_grid

        base = _scenario_config(args, "RR")
        grid = run_grid(
            base,
            {row_field: row_values, col_field: col_values},
            executor=_executor(args, progress),
        )
        print(grid.pivot_table(row_field, col_field))
        _print_execution(
            grid.execution,
            labels=[
                ",".join(f"{k}={v}" for k, v in params.items())
                for params, _ in grid.cells
            ],
        )
        return 0

    if args.command == "report":
        from .obs.report import compare_bundles, load_bundle, render_report

        def emit(text: str) -> None:
            if args.out:
                path = pathlib.Path(args.out)
                if path.parent != pathlib.Path(""):
                    path.parent.mkdir(parents=True, exist_ok=True)
                path.write_text(text)
                print(f"[report written to {path}]")
            else:
                print(text)

        if args.compare:
            if len(args.bundle) != 2:
                print(
                    "error: --compare takes exactly two bundles "
                    "(baseline candidate)",
                    file=sys.stderr,
                )
                return 2
            comparison = compare_bundles(
                load_bundle(args.bundle[0], stem=args.stem),
                load_bundle(args.bundle[1], stem=args.stem),
                threshold_pct=args.threshold,
                gate_wall_time=args.gate_wall_time,
            )
            emit(comparison.render(args.format))
            if not comparison.passed:
                names = ", ".join(
                    delta.name for delta in comparison.regressions()
                )
                print(
                    f"regression beyond {args.threshold:g}%: {names}",
                    file=sys.stderr,
                )
                if args.fail_on_regression:
                    return 1
            return 0
        if len(args.bundle) != 1:
            print(
                "error: expected one bundle directory (use --compare "
                "for two)",
                file=sys.stderr,
            )
            return 2
        bundle = load_bundle(args.bundle[0], stem=args.stem)
        emit(render_report(bundle, args.format))
        return 0

    if args.command == "validate":
        from .experiments.validation import validate_run

        report = validate_run(
            SimulationConfig(duration=args.duration, seed=args.seed)
        )
        print(report)
        return 0 if report.passed else 1

    if args.command == "policies":
        for name in available_policies():
            print(name)
        return 0

    return 1  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":
    sys.exit(main())
