"""The paper's contribution: DNS scheduling disciplines and adaptive TTL.

Public surface:

* :class:`Scheduler` and its implementations (RR, RR2, PRR, PRR2, DAL,
  MRL, Random, WeightedRandom);
* :class:`~repro.core.ttl.TtlPolicy` and its implementations (constant
  and the adaptive TTL/i and TTL/S_i families);
* :class:`SchedulerState` — shared alarm/capacity/estimate state;
* the hidden-load estimators and domain classifiers;
* the policy registry (:func:`parse_policy_name`, :func:`build_policy`,
  :data:`PAPER_POLICIES`).
"""

from .base import Scheduler
from .classes import (
    DomainClassifier,
    LoadQuantileClassifier,
    PerDomainClassifier,
    SingleClassClassifier,
    TwoClassClassifier,
)
from .dal import DynamicallyAccumulatedLoadScheduler
from .estimator import (
    HiddenLoadEstimator,
    MeasuredEstimator,
    OracleEstimator,
    SlidingWindowEstimator,
)
from .genie import LeastBackloggedScheduler
from .mrl import MinimumResidualLoadScheduler
from .probabilistic import (
    ProbabilisticRoundRobinScheduler,
    ProbabilisticTwoTierScheduler,
)
from .random_policy import RandomScheduler, WeightedRandomScheduler
from .registry import (
    EXTRA_POLICIES,
    PAPER_POLICIES,
    PolicySpec,
    available_policies,
    build_policy,
    parse_policy_name,
)
from .round_robin import RoundRobinScheduler, TwoTierRoundRobinScheduler
from .state import SchedulerState
from .wrr import SmoothWeightedRoundRobinScheduler
from .ttl import (
    AdaptiveTtlPolicy,
    ConstantTtlPolicy,
    DEFAULT_CONSTANT_TTL,
    TtlPolicy,
)

__all__ = [
    "AdaptiveTtlPolicy",
    "ConstantTtlPolicy",
    "DEFAULT_CONSTANT_TTL",
    "DomainClassifier",
    "DynamicallyAccumulatedLoadScheduler",
    "EXTRA_POLICIES",
    "HiddenLoadEstimator",
    "LeastBackloggedScheduler",
    "LoadQuantileClassifier",
    "MeasuredEstimator",
    "MinimumResidualLoadScheduler",
    "OracleEstimator",
    "PAPER_POLICIES",
    "PerDomainClassifier",
    "PolicySpec",
    "ProbabilisticRoundRobinScheduler",
    "ProbabilisticTwoTierScheduler",
    "RandomScheduler",
    "RoundRobinScheduler",
    "Scheduler",
    "SchedulerState",
    "SingleClassClassifier",
    "SlidingWindowEstimator",
    "SmoothWeightedRoundRobinScheduler",
    "TtlPolicy",
    "TwoClassClassifier",
    "TwoTierRoundRobinScheduler",
    "WeightedRandomScheduler",
    "available_policies",
    "build_policy",
    "parse_policy_name",
]
