"""Scheduler interface.

A scheduler answers one question: *which web server should this address
request be mapped to?* It sees only the source domain of the request and
the shared :class:`~repro.core.state.SchedulerState` (capacities, alarm
flags, load estimates) — precisely the information available to the
paper's DNS scheduler. The TTL attached to the mapping is chosen
separately by a :mod:`repro.core.ttl` policy.
"""

from __future__ import annotations

from typing import Dict

from .state import SchedulerState


class Scheduler:
    """Base class for DNS server-selection disciplines.

    Subclasses implement :meth:`select` and should honour the alarm
    feedback via :meth:`SchedulerState.is_eligible`.
    """

    #: Human-readable policy-family name (set by subclasses).
    name: str = "abstract"

    def __init__(self, state: SchedulerState):
        self.state = state
        #: Mappings issued per server (diagnostics).
        self.assignments: Dict[int, int] = {}

    def select(self, domain_id: int, now: float) -> int:
        """Pick a server for an address request from ``domain_id``."""
        raise NotImplementedError

    def notify_assignment(
        self, domain_id: int, server_id: int, ttl: float, now: float
    ) -> None:
        """Hook called by the DNS after the TTL has been decided.

        The base implementation only keeps per-server counters;
        load-accumulating disciplines (DAL, MRL) override it.
        """
        self.assignments[server_id] = self.assignments.get(server_id, 0) + 1

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r}>"
