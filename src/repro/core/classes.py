"""Domain classification — the "i classes" of the TTL/i meta-algorithm.

The paper's policies partition the connected domains into classes by
hidden load weight:

* 1 class — degenerate (constant TTL, or server-capacity-only TTL/S_1);
* 2 classes — *hot* vs *normal* domains, split at the class threshold
  ``gamma`` (Table 1: ``gamma = 1/K``, i.e. domains holding more than an
  average share are hot); this is also how RR2 partitions domains;
* i classes — generalization used by the tier-count ablation;
* K classes — one class per domain (the TTL/K and TTL/S_K policies).

A classification is a pair ``(class_of, class_weights)`` where
``class_of[j]`` is the class index of domain ``j`` (0 = hottest class)
and ``class_weights[c]`` is the class's weight relative to the most
popular domain — the quantity TTL formulas divide by.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from .estimator import HiddenLoadEstimator

Classification = Tuple[List[int], List[float]]


def _relative_class_weights(
    shares: Sequence[float], class_of: Sequence[int], class_count: int
) -> List[float]:
    """Mean share of each class, normalized by the peak domain share."""
    peak = max(shares)
    sums = [0.0] * class_count
    counts = [0] * class_count
    for share, cls in zip(shares, class_of):
        sums[cls] += share
        counts[cls] += 1
    weights = []
    for c in range(class_count):
        if counts[c] == 0:
            # An empty class can only arise transiently with a measured
            # estimator; give it the lightest possible weight.
            weights.append(min(shares) / peak)
        else:
            weights.append((sums[c] / counts[c]) / peak)
    return weights


class DomainClassifier:
    """Base class; subclasses implement :meth:`classify_shares`."""

    def __init__(self, estimator: HiddenLoadEstimator):
        self.estimator = estimator
        self._cached_version: Optional[int] = None
        self._cached: Optional[Classification] = None

    def classify_shares(self, shares: Sequence[float]) -> Classification:
        """Classify the given (normalized) domain shares."""
        raise NotImplementedError

    def classification(self) -> Classification:
        """Current classification, cached per estimator version."""
        version = self.estimator.version
        if self._cached is None or self._cached_version != version:
            self._cached = self.classify_shares(self.estimator.shares())
            self._cached_version = version
        return self._cached

    def class_of(self, domain_id: int) -> int:
        return self.classification()[0][domain_id]

    def class_weight(self, class_id: int) -> float:
        return self.classification()[1][class_id]

    @property
    def class_count(self) -> int:
        return len(self.classification()[1])


class SingleClassClassifier(DomainClassifier):
    """Everything in one class with weight 1 (no domain adaptation).

    Used by the degenerate TTL/1 and TTL/S_1 policies: the TTL must not
    depend on the requesting domain at all, so the class weight is pinned
    to 1 rather than to any average.
    """

    def classify_shares(self, shares: Sequence[float]) -> Classification:
        return [0] * len(shares), [1.0]


class TwoClassClassifier(DomainClassifier):
    """Hot/normal split at the class threshold ``gamma`` (paper default 1/K).

    A domain is *hot* when its share of the total request rate exceeds
    ``gamma``. Class 0 is hot, class 1 is normal.
    """

    def __init__(
        self, estimator: HiddenLoadEstimator, threshold: Optional[float] = None
    ):
        super().__init__(estimator)
        if threshold is not None and threshold <= 0:
            raise ConfigurationError(f"threshold must be > 0, got {threshold!r}")
        self.threshold = threshold

    def classify_shares(self, shares: Sequence[float]) -> Classification:
        gamma = self.threshold if self.threshold is not None else 1.0 / len(shares)
        class_of = [0 if share > gamma else 1 for share in shares]
        if all(cls == 1 for cls in class_of):
            # Degenerate uniform workload: hottest domain forms the hot class
            # so the two-tier machinery stays well-defined.
            class_of[max(range(len(shares)), key=lambda j: shares[j])] = 0
        return class_of, _relative_class_weights(shares, class_of, 2)


class LoadQuantileClassifier(DomainClassifier):
    """``tier_count`` classes of (approximately) equal aggregate load.

    Domains are sorted by descending share and greedily packed so each
    tier carries ~``1/tier_count`` of the total request rate. For
    ``tier_count = 2`` under a Zipf workload this closely matches the
    hot/normal split; for larger counts it generalizes TTL/i.
    """

    def __init__(self, estimator: HiddenLoadEstimator, tier_count: int):
        super().__init__(estimator)
        if tier_count < 1:
            raise ConfigurationError(f"tier_count must be >= 1, got {tier_count!r}")
        self.tier_count = tier_count

    def classify_shares(self, shares: Sequence[float]) -> Classification:
        count = len(shares)
        tiers = min(self.tier_count, count)
        order = sorted(range(count), key=lambda j: shares[j], reverse=True)
        class_of = [0] * count
        target = 1.0 / tiers
        tier, accumulated = 0, 0.0
        remaining = count
        for position, j in enumerate(order):
            class_of[j] = tier
            accumulated += shares[j]
            remaining -= 1
            # Advance to the next tier once this one holds its share of the
            # load, but never leave fewer domains than tiers still to fill.
            if (
                tier < tiers - 1
                and accumulated >= target * (tier + 1)
                and remaining >= tiers - tier - 1
            ):
                tier += 1
        return class_of, _relative_class_weights(shares, class_of, tiers)


class PerDomainClassifier(DomainClassifier):
    """One class per domain — the TTL/K and TTL/S_K policies."""

    def classify_shares(self, shares: Sequence[float]) -> Classification:
        class_of = list(range(len(shares)))
        peak = max(shares)
        return class_of, [share / peak for share in shares]
