"""DAL — minimum Dynamically Accumulated Load (baseline from ICDCS'97).

DAL tracks, per server, the total hidden load weight of the mappings the
DNS has assigned to it, and routes each new address request to the server
with the minimum accumulated load. The paper evaluates DAL (in a version
"that takes into account the different capacity of the servers", i.e.
accumulated load normalized by relative capacity) to demonstrate that
policies designed for homogeneous sites do *not* transfer to
heterogeneous ones (Fig. 3) — accumulated counters never forget, so a
burst of hot-domain assignments poisons the ranking long after the
corresponding TTLs expired.
"""

from __future__ import annotations

from typing import List

from .base import Scheduler
from .state import SchedulerState


class DynamicallyAccumulatedLoadScheduler(Scheduler):
    """Capacity-normalized minimum accumulated hidden load."""

    name = "DAL"

    def __init__(self, state: SchedulerState):
        super().__init__(state)
        #: Sum of hidden load weights assigned to each server so far.
        self.accumulated: List[float] = [0.0] * state.server_count

    def _weight_of(self, domain_id: int) -> float:
        return self.state.estimator.share(domain_id)

    def select(self, domain_id: int, now: float) -> int:
        weight = self._weight_of(domain_id)
        alphas = self.state.relative_capacities
        best: int = -1
        best_cost = float("inf")
        for server_id in range(self.state.server_count):
            if not self.state.is_eligible(server_id):
                continue
            cost = (self.accumulated[server_id] + weight) / alphas[server_id]
            if cost < best_cost:
                best, best_cost = server_id, cost
        self.accumulated[best] += weight
        return best
