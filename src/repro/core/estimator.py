"""Hidden-load-weight estimation.

The *hidden load weight* of a domain is the average number of data
requests that follow one address mapping handed to that domain — hidden
because those requests never pass through the DNS. Schedulers and TTL
policies only need the weights in *relative* form, which equals the
domain's share of the total client request rate.

Two estimators are provided:

:class:`OracleEstimator`
    Returns exact, static shares. This matches the paper's main
    experiments (which assume weights can be estimated) and is what the
    estimation-error experiments hold fixed while the *actual* workload is
    perturbed.
:class:`MeasuredEstimator`
    Implements the mechanism the paper describes: servers count incoming
    hits per source domain, the DNS periodically collects the counters and
    smooths them (EWMA). Provided as the realistic alternative and ablated
    against the oracle in the benchmarks.
:class:`SlidingWindowEstimator`
    A windowed variant in the spirit of the paper's reference [3]
    (Cardellini/Colajanni/Yu, *Efficient state estimator for load control
    in scalable Web server clusters*): shares are computed over the last
    ``window_intervals`` collection intervals, forgetting older traffic
    sharply instead of geometrically — better for non-stationary
    workloads, at the cost of more variance.
"""

from __future__ import annotations

from array import array
from collections import deque
from typing import Deque, Iterable, List, Optional, Sequence

from ..errors import ConfigurationError, EstimationError
from ..web.server import WebServer


class HiddenLoadEstimator:
    """Interface: current estimate of per-domain load shares.

    Attributes
    ----------
    version:
        Monotonic counter bumped on every estimate change; consumers
        (domain classifiers, TTL calibration) cache per version.
    """

    version: int = 0

    def shares(self) -> List[float]:
        """Estimated fraction of total request rate per domain (sums to 1)."""
        raise NotImplementedError

    def share(self, domain_id: int) -> float:
        """One domain's estimated share.

        Bit-equal to ``shares()[domain_id]`` by contract. The base
        implementation materializes the full list; subclasses override
        with O(1) lookups — per-decision call sites (schedulers, TTL
        policies, trace payloads) must use this instead of indexing
        ``shares()``, which copies K floats per call and dominates the
        decision path at large domain counts.
        """
        return self.shares()[domain_id]

    def relative_weights(self) -> List[float]:
        """Shares normalized so the most popular domain has weight 1."""
        shares = self.shares()
        peak = max(shares)
        if peak <= 0:
            raise EstimationError("estimated shares are all zero")
        return [share / peak for share in shares]

    @property
    def domain_count(self) -> int:
        return len(self.shares())

    def snapshot_state(self) -> dict:
        """Estimate state for checkpoints; subclasses extend this.

        The base snapshot (current shares + version) already pins every
        scheduling decision an estimator can influence; stateful
        subclasses add their internal accumulators so a resume digest
        also covers *future* estimates.
        """
        return {
            "kind": type(self).__name__,
            "version": self.version,
            "shares": self.shares(),
        }


class OracleEstimator(HiddenLoadEstimator):
    """Exact, static domain shares (the paper's baseline assumption).

    Accepts any iterable of shares (a streaming
    :meth:`DomainSet.iter_shares
    <repro.workload.domains.DomainSet.iter_shares>` included) and packs
    them into a flat ``array('d')`` — at 10^6 domains that is one 8 MB
    buffer instead of a 10^6-element list of boxed floats.
    """

    def __init__(self, shares: Iterable[float]):
        values = array("d", (float(s) for s in shares))
        if not values:
            raise ConfigurationError("need at least one domain share")
        if any(s <= 0 for s in values):
            raise ConfigurationError("domain shares must be positive")
        total = sum(values)
        if abs(total - 1.0) > 1e-9:
            raise ConfigurationError(f"shares must sum to 1, got {total!r}")
        self._shares = values
        self.version = 0

    def shares(self) -> List[float]:
        return list(self._shares)

    def share(self, domain_id: int) -> float:
        return self._shares[domain_id]

    def __repr__(self) -> str:
        return f"<OracleEstimator K={len(self._shares)}>"


class MeasuredEstimator(HiddenLoadEstimator):
    """Periodic collection of per-domain hit counters from the servers.

    Every ``interval`` seconds the estimator drains each server's
    per-domain counters and folds the observed shares into an
    exponentially weighted moving average:

    ``estimate <- (1 - smoothing) * estimate + smoothing * observed``

    Parameters
    ----------
    env:
        Simulation environment (a collection process is spawned).
    servers:
        Servers whose counters are collected.
    domain_count:
        Number of client domains.
    interval:
        Collection period in seconds.
    smoothing:
        EWMA weight of each new observation, in (0, 1].
    prior:
        Initial share estimate; uniform when omitted.
    """

    def __init__(
        self,
        env,
        servers: Sequence[WebServer],
        domain_count: int,
        interval: float = 32.0,
        smoothing: float = 0.5,
        prior: Optional[Sequence[float]] = None,
    ):
        if domain_count < 1:
            raise ConfigurationError(
                f"domain_count must be >= 1, got {domain_count!r}"
            )
        if interval <= 0:
            raise ConfigurationError(f"interval must be > 0, got {interval!r}")
        if not 0.0 < smoothing <= 1.0:
            raise ConfigurationError(
                f"smoothing must be in (0, 1], got {smoothing!r}"
            )
        self.env = env
        self.servers = list(servers)
        self.interval = float(interval)
        self.smoothing = float(smoothing)
        if prior is None:
            self._estimate = [1.0 / domain_count] * domain_count
        else:
            if len(prior) != domain_count:
                raise ConfigurationError(
                    f"prior has {len(prior)} entries for {domain_count} domains"
                )
            total = float(sum(prior))
            if total <= 0:
                raise ConfigurationError("prior shares must have positive sum")
            self._estimate = [float(p) / total for p in prior]
        self.version = 0
        self.collections = 0
        self.process = env.process(self._run())

    def shares(self) -> List[float]:
        return list(self._estimate)

    def share(self, domain_id: int) -> float:
        return self._estimate[domain_id]

    def _collect_once(self) -> None:
        """Drain all server counters and fold into the EWMA estimate."""
        observed = [0] * len(self._estimate)
        for server in self.servers:
            for domain_id, hits in server.drain_domain_hits().items():
                observed[domain_id] += hits
        total = sum(observed)
        self.collections += 1
        if total == 0:
            return  # quiet interval: keep the previous estimate
        alpha = self.smoothing
        floor = 1e-9  # keep every share positive so weights stay defined
        self._estimate = [
            max(floor, (1.0 - alpha) * old + alpha * (obs / total))
            for old, obs in zip(self._estimate, observed)
        ]
        norm = sum(self._estimate)
        self._estimate = [share / norm for share in self._estimate]
        self.version += 1

    def _run(self):
        while True:
            yield self.env.timeout(self.interval)
            self._collect_once()

    def snapshot_state(self) -> dict:
        state = super().snapshot_state()
        state["collections"] = self.collections
        state["estimate"] = list(self._estimate)
        return state

    def __repr__(self) -> str:
        return (
            f"<MeasuredEstimator K={len(self._estimate)} "
            f"interval={self.interval} collections={self.collections}>"
        )


class SlidingWindowEstimator(HiddenLoadEstimator):
    """Shares over a sliding window of collection intervals.

    Every ``interval`` seconds the per-domain hit counters are drained
    from the servers into a ring of the last ``window_intervals``
    observations; the estimate is the share of each domain within the
    window's total. Compared to the EWMA of
    :class:`MeasuredEstimator`, old traffic is forgotten sharply, which
    tracks non-stationary workloads faster (see the workload-dynamics
    benchmark) at the cost of noisier estimates.

    Parameters
    ----------
    env, servers, domain_count, interval:
        As for :class:`MeasuredEstimator`.
    window_intervals:
        Number of recent collection intervals the estimate covers.
    prior:
        Initial share estimate used until the first non-empty window;
        uniform when omitted.
    """

    def __init__(
        self,
        env,
        servers: Sequence[WebServer],
        domain_count: int,
        interval: float = 32.0,
        window_intervals: int = 8,
        prior: Optional[Sequence[float]] = None,
    ):
        if domain_count < 1:
            raise ConfigurationError(
                f"domain_count must be >= 1, got {domain_count!r}"
            )
        if interval <= 0:
            raise ConfigurationError(f"interval must be > 0, got {interval!r}")
        if window_intervals < 1:
            raise ConfigurationError(
                f"window_intervals must be >= 1, got {window_intervals!r}"
            )
        self.env = env
        self.servers = list(servers)
        self.interval = float(interval)
        self.window_intervals = int(window_intervals)
        self._window: Deque[List[int]] = deque(maxlen=self.window_intervals)
        self._totals = [0] * domain_count  # running sum over the window
        if prior is None:
            self._prior = [1.0 / domain_count] * domain_count
        else:
            if len(prior) != domain_count:
                raise ConfigurationError(
                    f"prior has {len(prior)} entries for {domain_count} domains"
                )
            total = float(sum(prior))
            if total <= 0:
                raise ConfigurationError("prior shares must have positive sum")
            self._prior = [float(p) / total for p in prior]
        self.version = 0
        self.collections = 0
        self._norm_cache = None
        self.process = env.process(self._run())

    def shares(self) -> List[float]:
        window_total = sum(self._totals)
        if window_total == 0:
            return list(self._prior)
        floor = 1e-9
        raw = [max(floor, count / window_total) for count in self._totals]
        norm = sum(raw)
        return [value / norm for value in raw]

    def share(self, domain_id: int) -> float:
        window_total, norm = self._normalizers()
        if window_total == 0:
            return self._prior[domain_id]
        floor = 1e-9
        return max(floor, self._totals[domain_id] / window_total) / norm

    def _normalizers(self) -> tuple:
        """Cached ``(window_total, norm)`` of the current version.

        Recomputed once per estimate version — exactly the arithmetic of
        :meth:`shares` — so :meth:`share` stays O(1) per decision while
        returning bit-equal values.
        """
        cached = self._norm_cache
        if cached is not None and cached[0] == self.version:
            return cached[1], cached[2]
        window_total = sum(self._totals)
        if window_total == 0:
            norm = 1.0
        else:
            floor = 1e-9
            norm = sum(
                max(floor, count / window_total) for count in self._totals
            )
        self._norm_cache = (self.version, window_total, norm)
        return window_total, norm

    def _collect_once(self) -> None:
        observed = [0] * len(self._totals)
        for server in self.servers:
            for domain_id, hits in server.drain_domain_hits().items():
                observed[domain_id] += hits
        self.collections += 1
        if len(self._window) == self._window.maxlen:
            oldest = self._window[0]
            for domain_id, hits in enumerate(oldest):
                self._totals[domain_id] -= hits
        self._window.append(observed)
        for domain_id, hits in enumerate(observed):
            self._totals[domain_id] += hits
        self.version += 1

    def _run(self):
        while True:
            yield self.env.timeout(self.interval)
            self._collect_once()

    def snapshot_state(self) -> dict:
        state = super().snapshot_state()
        state["collections"] = self.collections
        state["window"] = [list(observed) for observed in self._window]
        state["totals"] = list(self._totals)
        return state

    def __repr__(self) -> str:
        return (
            f"<SlidingWindowEstimator K={len(self._totals)} "
            f"window={self.window_intervals}x{self.interval}s "
            f"collections={self.collections}>"
        )
