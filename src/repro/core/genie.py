"""Instantaneous-state baseline: route to the least-backlogged server.

A real DNS cannot observe server queues; this baseline grants that
ability anyway: every address request is answered with the server whose
capacity-normalized outstanding work is currently smallest.

One might expect an omniscient "join the shortest queue" to be an upper
bound — it is not, and that is the point. A DNS mapping is not a job: it
pins an entire domain to the server for the whole TTL, and the *hidden
load* it unleashes arrives over minutes, long after the queue snapshot
that justified the choice. Measured against the adaptive-TTL policies
(see ``benchmarks/bench_ablation_genie.py``), least-backlogged routing
barely beats plain RR — a quantitative demonstration of the paper's core
thesis that DNS scheduling must reason about *future hidden load per
unit of capacity* (domain rates, TTL durations), not instantaneous
server state.
"""

from __future__ import annotations

from .base import Scheduler
from .state import SchedulerState


class LeastBackloggedScheduler(Scheduler):
    """Pick the eligible server with the least seconds of queued work."""

    name = "LEAST-LOADED"

    def __init__(self, state: SchedulerState):
        super().__init__(state)
        if getattr(state, "cluster", None) is None:
            raise ValueError(
                "LEAST-LOADED needs SchedulerState.cluster "
                "(instantaneous-state baseline)"
            )

    def select(self, domain_id: int, now: float) -> int:
        servers = self.state.cluster.servers
        best = -1
        best_backlog = float("inf")
        for server_id in range(self.state.server_count):
            if not self.state.is_eligible(server_id):
                continue
            # Normalize by relative capacity so a half-speed server with
            # the same queued seconds is considered more loaded.
            backlog = (
                servers[server_id].backlog_seconds
                / self.state.relative_capacities[server_id]
            )
            if backlog < best_backlog:
                best = server_id
                best_backlog = backlog
        return best
