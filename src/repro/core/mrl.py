"""MRL — Minimum Residual Load (baseline from ICDCS'97).

MRL refines DAL by letting assigned load *expire*: a mapping handed to a
domain only generates hidden load while its TTL is alive, so the residual
load of a server is the sum of the weights of its still-valid mappings,
each discounted by the fraction of its TTL that remains. The scheduler
needs to know the TTL granted with each mapping, which it learns through
the :meth:`notify_assignment` hook invoked by the authoritative DNS after
the TTL policy has run.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Tuple

from .base import Scheduler
from .state import SchedulerState

#: One live mapping: (issued_at, expires_at, weight).
_Lease = Tuple[float, float, float]


class MinimumResidualLoadScheduler(Scheduler):
    """Pick the eligible server with the least capacity-normalized
    residual (TTL-discounted) assigned load."""

    name = "MRL"

    def __init__(self, state: SchedulerState):
        super().__init__(state)
        self._leases: List[Deque[_Lease]] = [
            deque() for _ in range(state.server_count)
        ]

    def residual_load(self, server_id: int, now: float) -> float:
        """Sum of live mapping weights, discounted by remaining lifetime."""
        leases = self._leases[server_id]
        # Leases are appended in issue order, which with adaptive TTLs is
        # not expiry order: drop the expired head, but also guard each
        # remaining term against having expired behind a longer lease.
        while leases and leases[0][1] <= now:
            leases.popleft()
        residual = 0.0
        for issued_at, expires_at, weight in leases:
            ttl = expires_at - issued_at
            if ttl <= 0 or expires_at <= now:
                continue
            residual += weight * (expires_at - now) / ttl
        return residual

    def select(self, domain_id: int, now: float) -> int:
        alphas = self.state.relative_capacities
        best: int = -1
        best_cost = float("inf")
        for server_id in range(self.state.server_count):
            if not self.state.is_eligible(server_id):
                continue
            cost = self.residual_load(server_id, now) / alphas[server_id]
            if cost < best_cost:
                best, best_cost = server_id, cost
        return best

    def notify_assignment(
        self, domain_id: int, server_id: int, ttl: float, now: float
    ) -> None:
        super().notify_assignment(domain_id, server_id, ttl, now)
        weight = self.state.estimator.share(domain_id)
        self._leases[server_id].append((now, now + ttl, weight))
