"""Probabilistic round-robin selection: PRR and PRR2 (paper Sec. 3.1).

The probabilistic variants extend RR/RR2 to heterogeneous servers by
making the round-robin advance *capacity-biased*: starting from the
server after the last chosen one, draw ``beta ~ U(0, 1)`` and accept
server ``S_i`` iff ``beta <= alpha_i`` (its relative capacity), otherwise
skip to ``S_{i+1}`` and repeat with a fresh draw. Full-capacity servers
are never skipped, so the scan always terminates; in the long run server
``i`` receives a share of mappings proportional to ``alpha_i`` within
each round-robin sweep.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from ..errors import PolicyError
from .base import Scheduler
from .classes import TwoClassClassifier
from .state import SchedulerState


def _capacity_biased_next(
    state: SchedulerState, last: int, rng: random.Random
) -> int:
    """One PRR scan: next eligible server, accepted with prob alpha_i."""
    n = state.server_count
    alphas = state.relative_capacities
    index = last
    # Eligible relative capacities are positive, so the scan terminates
    # with probability 1; the bound below only guards against a degenerate
    # RNG, after which the next eligible server is accepted outright.
    for _ in range(64 * n):
        index = (index + 1) % n
        if not state.is_eligible(index):
            continue
        if rng.random() <= alphas[index]:
            return index
    for _ in range(n):
        index = (index + 1) % n
        if state.is_eligible(index):
            return index
    raise PolicyError("no eligible server found")  # pragma: no cover


class ProbabilisticRoundRobinScheduler(Scheduler):
    """PRR — capacity-biased round-robin over eligible servers."""

    name = "PRR"

    def __init__(self, state: SchedulerState, rng: random.Random):
        super().__init__(state)
        self._rng = rng
        self._last = state.server_count - 1

    def select(self, domain_id: int, now: float) -> int:
        self._last = _capacity_biased_next(self.state, self._last, self._rng)
        return self._last


class ProbabilisticTwoTierScheduler(Scheduler):
    """PRR2 — capacity-biased round-robin with per-tier pointers."""

    name = "PRR2"

    def __init__(
        self,
        state: SchedulerState,
        rng: random.Random,
        classifier=None,
    ):
        super().__init__(state)
        self._rng = rng
        self.classifier = (
            classifier
            if classifier is not None
            else TwoClassClassifier(state.estimator)
        )
        self._last: Dict[int, int] = {}

    def select(self, domain_id: int, now: float) -> int:
        tier = self.classifier.class_of(domain_id)
        last = self._last.get(tier, self.state.server_count - 1)
        chosen = _capacity_biased_next(self.state, last, self._rng)
        self._last[tier] = chosen
        return chosen
