"""Stateless randomized selection baselines.

Not part of the paper's comparison but standard reference points for any
load-balancing study: uniform random selection and capacity-weighted
random selection. Both honour the alarm feedback.
"""

from __future__ import annotations

import random

from .base import Scheduler
from .state import SchedulerState


class RandomScheduler(Scheduler):
    """Uniform random pick among eligible servers."""

    name = "RANDOM"

    def __init__(self, state: SchedulerState, rng: random.Random):
        super().__init__(state)
        self._rng = rng

    def select(self, domain_id: int, now: float) -> int:
        eligible = self.state.eligible_servers()
        return eligible[self._rng.randrange(len(eligible))]


class WeightedRandomScheduler(Scheduler):
    """Random pick among eligible servers with probability ∝ capacity."""

    name = "WRANDOM"

    def __init__(self, state: SchedulerState, rng: random.Random):
        super().__init__(state)
        self._rng = rng

    def select(self, domain_id: int, now: float) -> int:
        eligible = self.state.eligible_servers()
        alphas = self.state.relative_capacities
        total = sum(alphas[i] for i in eligible)
        pick = self._rng.random() * total
        accumulated = 0.0
        for server_id in eligible:
            accumulated += alphas[server_id]
            if pick <= accumulated:
                return server_id
        return eligible[-1]  # float drift fallback
