"""Policy registry: names -> (scheduler, TTL policy) factories.

The paper refers to policies by compound names such as ``DRR2-TTL/S_K``:
a *selection* part (RR, RR2, PRR, PRR2, DRR, DRR2, DAL, MRL, ...) and a
*TTL* part (constant, TTL/2, TTL/K, TTL/S_1, TTL/S_2, TTL/S_K). This
module parses those names, exposes the catalogue of policies the paper
evaluates, and builds ready-to-use (scheduler, TTL policy) pairs wired to
a shared :class:`~repro.core.state.SchedulerState`.

Name grammar (case-insensitive; ``_`` optional; ``-`` or `` `` between
parts)::

    RR | RR2 | DAL | MRL | RANDOM | WRANDOM | IDEAL
    (P|D) RR [2] - TTL/ [S_] (1 | 2 | <int> | K)

``IDEAL`` is PRR with a constant TTL evaluated under a *uniform* client
distribution — the paper's envelope curve; its
:attr:`PolicySpec.uniform_workload` flag tells the simulation assembly to
swap the workload.
"""

from __future__ import annotations

import dataclasses
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from ..errors import ConfigurationError, UnknownPolicyError
from ..sim.rng import RandomStreams
from .base import Scheduler
from .classes import (
    DomainClassifier,
    LoadQuantileClassifier,
    PerDomainClassifier,
    SingleClassClassifier,
    TwoClassClassifier,
)
from .dal import DynamicallyAccumulatedLoadScheduler
from .genie import LeastBackloggedScheduler
from .mrl import MinimumResidualLoadScheduler
from .probabilistic import (
    ProbabilisticRoundRobinScheduler,
    ProbabilisticTwoTierScheduler,
)
from .random_policy import RandomScheduler, WeightedRandomScheduler
from .round_robin import RoundRobinScheduler, TwoTierRoundRobinScheduler
from .state import SchedulerState
from .wrr import SmoothWeightedRoundRobinScheduler
from .ttl import (
    AdaptiveTtlPolicy,
    ConstantTtlPolicy,
    TtlPolicy,
    capacity_selection_probabilities,
    uniform_selection_probabilities,
)

#: Tier specification: 1, 2, any int >= 1, or "K" (one class per domain).
Tiers = Union[int, str]


@dataclass(frozen=True)
class PolicySpec:
    """A parsed scheduling policy.

    Attributes
    ----------
    name:
        Canonical display name (e.g. ``"DRR2-TTL/S_K"``).
    selector:
        Selection discipline: ``RR``, ``RR2``, ``PRR``, ``PRR2``, ``DAL``,
        ``MRL``, ``RANDOM`` or ``WRANDOM``.
    adaptive_ttl:
        Whether the TTL part is adaptive (``False`` = constant TTL).
    tiers:
        Domain-class count of the TTL policy (1, 2, int, or ``"K"``);
        meaningless when ``adaptive_ttl`` is ``False``.
    server_scaled:
        Whether the TTL is proportional to server capacity (the
        deterministic ``TTL/S_i`` family).
    uniform_workload:
        ``True`` only for ``IDEAL`` (evaluate under uniform domains).
    alarm_scaled_ttl:
        Wrap the TTL policy in
        :class:`~repro.core.ttl.feedback.AlarmResponsiveTtlPolicy`
        (the ``-FB`` name suffix; extension, not in the paper).
    """

    name: str
    selector: str
    adaptive_ttl: bool = False
    tiers: Tiers = 1
    server_scaled: bool = False
    uniform_workload: bool = False
    alarm_scaled_ttl: bool = False

    def __post_init__(self):
        if self.selector not in _SELECTORS:
            raise ConfigurationError(f"unknown selector {self.selector!r}")
        if isinstance(self.tiers, int) and self.tiers < 1:
            raise ConfigurationError(f"tiers must be >= 1, got {self.tiers!r}")
        if isinstance(self.tiers, str) and self.tiers != "K":
            raise ConfigurationError(f"tiers must be an int or 'K', got {self.tiers!r}")

    @property
    def probabilistic(self) -> bool:
        """Whether selection is capacity-biased (PRR family)."""
        return self.selector in ("PRR", "PRR2")


_SELECTORS = (
    "RR",
    "RR2",
    "PRR",
    "PRR2",
    "DAL",
    "MRL",
    "RANDOM",
    "WRANDOM",
    "WRR",
    "LEAST-LOADED",
    "PROXIMITY",
    "GEO-HYBRID",
)

#: The policies the paper evaluates, by canonical name.
PAPER_POLICIES: Dict[str, PolicySpec] = {
    spec.name: spec
    for spec in [
        PolicySpec("RR", "RR"),
        PolicySpec("RR2", "RR2"),
        PolicySpec("DAL", "DAL"),
        PolicySpec("MRL", "MRL"),
        PolicySpec("IDEAL", "PRR", uniform_workload=True),
        PolicySpec("PRR-TTL/1", "PRR"),
        PolicySpec("PRR2-TTL/1", "PRR2"),
        PolicySpec("PRR-TTL/2", "PRR", adaptive_ttl=True, tiers=2),
        PolicySpec("PRR2-TTL/2", "PRR2", adaptive_ttl=True, tiers=2),
        PolicySpec("PRR-TTL/K", "PRR", adaptive_ttl=True, tiers="K"),
        PolicySpec("PRR2-TTL/K", "PRR2", adaptive_ttl=True, tiers="K"),
        PolicySpec(
            "DRR-TTL/S_1", "RR", adaptive_ttl=True, tiers=1, server_scaled=True
        ),
        PolicySpec(
            "DRR2-TTL/S_1", "RR2", adaptive_ttl=True, tiers=1, server_scaled=True
        ),
        PolicySpec(
            "DRR-TTL/S_2", "RR", adaptive_ttl=True, tiers=2, server_scaled=True
        ),
        PolicySpec(
            "DRR2-TTL/S_2", "RR2", adaptive_ttl=True, tiers=2, server_scaled=True
        ),
        PolicySpec(
            "DRR-TTL/S_K", "RR", adaptive_ttl=True, tiers="K", server_scaled=True
        ),
        PolicySpec(
            "DRR2-TTL/S_K", "RR2", adaptive_ttl=True, tiers="K", server_scaled=True
        ),
    ]
}

#: Extra baselines available by name but not part of the paper's figures.
EXTRA_POLICIES: Dict[str, PolicySpec] = {
    "RANDOM": PolicySpec("RANDOM", "RANDOM"),
    "WRANDOM": PolicySpec("WRANDOM", "WRANDOM"),
    "WRR": PolicySpec("WRR", "WRR"),
    "LEAST-LOADED": PolicySpec("LEAST-LOADED", "LEAST-LOADED"),
    # Geographic policies; require a layout (SimulationConfig geography).
    "PROXIMITY": PolicySpec("PROXIMITY", "PROXIMITY"),
    "GEO-HYBRID": PolicySpec("GEO-HYBRID", "GEO-HYBRID"),
}

_COMPOUND = re.compile(
    r"^(?P<kind>[PD])RR(?P<two>2)?-TTL/(?P<scaled>S_?)?(?P<tiers>\d+|K)$"
)


def _canonical_tiers(raw: str) -> Tiers:
    return "K" if raw == "K" else int(raw)


def parse_policy_name(name: str) -> PolicySpec:
    """Parse a policy name into a :class:`PolicySpec`.

    Accepts the catalogue names plus any well-formed compound name
    (e.g. the ablation policy ``"PRR2-TTL/4"``), case-insensitively and
    with ``_``/space variations.
    """
    cleaned = re.sub(r"\s+", "", name).upper().replace("--", "-")
    alarm_scaled = cleaned.endswith("-FB")
    if alarm_scaled:
        cleaned = cleaned[: -len("-FB")]
    aliases = {
        "DRR": "RR",  # deterministic selection *is* plain RR
        "DRR2": "RR2",
        "PRR": "PRR-TTL/1",
        "PRR2": "PRR2-TTL/1",
    }
    cleaned = aliases.get(cleaned, cleaned)
    simple = cleaned.replace("_", "")
    spec: Optional[PolicySpec] = None
    for catalogue in (PAPER_POLICIES, EXTRA_POLICIES):
        for canonical, candidate in catalogue.items():
            if simple == canonical.replace("_", ""):
                spec = candidate
                break
        if spec is not None:
            break
    if spec is None:
        match = _COMPOUND.match(cleaned)
        if match is None:
            known = sorted(PAPER_POLICIES) + sorted(EXTRA_POLICIES)
            raise UnknownPolicyError(name, known)
        kind = match.group("kind")
        two = bool(match.group("two"))
        scaled = bool(match.group("scaled"))
        tiers = _canonical_tiers(match.group("tiers"))
        if kind == "P":
            selector = "PRR2" if two else "PRR"
        else:
            selector = "RR2" if two else "RR"
        adaptive = scaled or tiers != 1
        label_sel = ("D" if kind == "D" else "P") + "RR" + ("2" if two else "")
        label_ttl = f"TTL/{'S_' if scaled else ''}{tiers}"
        spec = PolicySpec(
            name=f"{label_sel}-{label_ttl}",
            selector=selector,
            adaptive_ttl=adaptive,
            tiers=tiers,
            server_scaled=scaled,
        )
    if alarm_scaled:
        spec = dataclasses.replace(
            spec, name=f"{spec.name}-FB", alarm_scaled_ttl=True
        )
    return spec


def available_policies() -> List[str]:
    """Canonical names of every catalogued policy."""
    return sorted(PAPER_POLICIES) + sorted(EXTRA_POLICIES)


def _make_classifier(state: SchedulerState, tiers: Tiers) -> DomainClassifier:
    if tiers == "K":
        return PerDomainClassifier(state.estimator)
    if tiers == 1:
        return SingleClassClassifier(state.estimator)
    if tiers == 2:
        return TwoClassClassifier(state.estimator)
    return LoadQuantileClassifier(state.estimator, tiers)


def build_policy(
    spec: Union[PolicySpec, str],
    state: SchedulerState,
    streams: RandomStreams,
    constant_ttl: float = 240.0,
) -> Tuple[Scheduler, TtlPolicy]:
    """Instantiate the (scheduler, TTL policy) pair for ``spec``.

    Parameters
    ----------
    spec:
        A :class:`PolicySpec` or a policy name accepted by
        :func:`parse_policy_name`.
    state:
        Shared scheduler state (one per simulation).
    streams:
        Random streams; probabilistic schedulers draw from
        ``streams.stream("scheduler")``.
    constant_ttl:
        The reference TTL (Table 1: 240 s) used directly by constant
        policies and as the calibration target by adaptive ones.
    """
    if isinstance(spec, str):
        spec = parse_policy_name(spec)
    rng = streams.stream("scheduler")
    if spec.selector == "RR":
        scheduler: Scheduler = RoundRobinScheduler(state)
    elif spec.selector == "RR2":
        scheduler = TwoTierRoundRobinScheduler(state)
    elif spec.selector == "PRR":
        scheduler = ProbabilisticRoundRobinScheduler(state, rng)
    elif spec.selector == "PRR2":
        scheduler = ProbabilisticTwoTierScheduler(state, rng)
    elif spec.selector == "DAL":
        scheduler = DynamicallyAccumulatedLoadScheduler(state)
    elif spec.selector == "MRL":
        scheduler = MinimumResidualLoadScheduler(state)
    elif spec.selector == "RANDOM":
        scheduler = RandomScheduler(state, rng)
    elif spec.selector == "WRANDOM":
        scheduler = WeightedRandomScheduler(state, rng)
    elif spec.selector == "WRR":
        scheduler = SmoothWeightedRoundRobinScheduler(state)
    elif spec.selector == "LEAST-LOADED":
        scheduler = LeastBackloggedScheduler(state)
    elif spec.selector in ("PROXIMITY", "GEO-HYBRID"):
        from ..geo.scheduler import ProximityScheduler

        if getattr(state, "layout", None) is None:
            raise ConfigurationError(
                f"policy {spec.name!r} needs a geographic layout; set "
                f"SimulationConfig(geography='random' or 'clustered')"
            )
        slack = 1.0 if spec.selector == "PROXIMITY" else 2.0
        scheduler = ProximityScheduler(state, state.layout, slack=slack)
    else:  # pragma: no cover - PolicySpec validates selectors
        raise ConfigurationError(f"unknown selector {spec.selector!r}")
    scheduler.name = spec.name

    if not spec.adaptive_ttl:
        ttl_policy: TtlPolicy = ConstantTtlPolicy(constant_ttl)
    else:
        if spec.probabilistic:
            probabilities = capacity_selection_probabilities(
                state.relative_capacities
            )
        else:
            probabilities = uniform_selection_probabilities(state.server_count)
        ttl_policy = AdaptiveTtlPolicy(
            state=state,
            classifier=_make_classifier(state, spec.tiers),
            scale_by_capacity=spec.server_scaled,
            selection_probabilities=probabilities,
            constant_ttl=constant_ttl,
        )
        ttl_policy.name = spec.name.split("-", 1)[-1]
    if spec.alarm_scaled_ttl:
        from .ttl.feedback import AlarmResponsiveTtlPolicy

        ttl_policy = AlarmResponsiveTtlPolicy(ttl_policy, state)
    return scheduler, ttl_policy
