"""Round-robin server selection: RR and the two-tier RR2.

RR is the scheme used by the NCSA multi-server site and is the paper's
lower bound. RR2 (from Colajanni/Yu/Dias, ICDCS'97) keeps *separate*
round-robin pointers for requests from hot and normal domains, so that
consecutive hot-domain mappings — each dragging a large hidden load —
are spread over different servers instead of whichever server the global
pointer happens to reach.

These same classes implement the selection step of the deterministic
adaptive-TTL policies (DRR-TTL/S_i and DRR2-TTL/S_i): "the server
selection is done through the traditional RR or RR2 policy" — server
heterogeneity is absorbed entirely by the TTL.
"""

from __future__ import annotations

from typing import Dict

from .base import Scheduler
from .classes import TwoClassClassifier
from .state import SchedulerState


class RoundRobinScheduler(Scheduler):
    """Plain round-robin over the eligible (non-alarmed) servers."""

    name = "RR"

    def __init__(self, state: SchedulerState):
        super().__init__(state)
        self._last = state.server_count - 1  # so the first pick is server 0

    def _next_eligible(self, last: int) -> int:
        n = self.state.server_count
        for step in range(1, n + 1):
            candidate = (last + step) % n
            if self.state.is_eligible(candidate):
                return candidate
        return (last + 1) % n  # unreachable: is_eligible never rejects all

    def select(self, domain_id: int, now: float) -> int:
        self._last = self._next_eligible(self._last)
        return self._last


class TwoTierRoundRobinScheduler(Scheduler):
    """RR2 — per-class round-robin pointers (hot vs normal domains).

    Parameters
    ----------
    state:
        Shared scheduler state.
    classifier:
        Domain classifier defining the tiers; defaults to the paper's
        hot/normal split at ``gamma = 1/K``. Any
        :class:`~repro.core.classes.DomainClassifier` works, so the
        two-tier idea generalizes to i tiers for free.
    """

    name = "RR2"

    def __init__(self, state: SchedulerState, classifier=None):
        super().__init__(state)
        self.classifier = (
            classifier
            if classifier is not None
            else TwoClassClassifier(state.estimator)
        )
        self._last: Dict[int, int] = {}

    def _next_eligible(self, last: int) -> int:
        n = self.state.server_count
        for step in range(1, n + 1):
            candidate = (last + step) % n
            if self.state.is_eligible(candidate):
                return candidate
        return (last + 1) % n  # unreachable: is_eligible never rejects all

    def select(self, domain_id: int, now: float) -> int:
        tier = self.classifier.class_of(domain_id)
        last = self._last.get(tier, self.state.server_count - 1)
        chosen = self._next_eligible(last)
        self._last[tier] = chosen
        return chosen
