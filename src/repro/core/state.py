"""Shared scheduler-side state: cluster shape, alarms, load estimates.

The DNS scheduler, the TTL policy, the alarm feedback protocol, and the
hidden-load estimator all observe the same slice of system state. This
module centralizes it so the pieces compose without knowing about each
other: the monitor pushes alarm transitions in, schedulers read the
eligible-server set out, TTL policies read capacities and estimates.
"""

from __future__ import annotations

from typing import List

from ..errors import ConfigurationError
from ..web.cluster import ServerCluster
from .estimator import HiddenLoadEstimator


class SchedulerState:
    """State shared by the scheduler and TTL policy of one DNS.

    Parameters
    ----------
    cluster:
        The web-server cluster being scheduled (capacities are read once;
        the paper treats capacities as static).
    estimator:
        Source of hidden-load-weight estimates.
    """

    def __init__(self, cluster: ServerCluster, estimator: HiddenLoadEstimator):
        if len(cluster) < 1:
            raise ConfigurationError("cluster must contain at least one server")
        self.relative_capacities: List[float] = list(cluster.relative_capacities)
        self.capacities: List[float] = list(cluster.capacities)
        self.server_count: int = len(cluster)
        self.power_ratio: float = cluster.power_ratio
        self.estimator = estimator
        #: The cluster itself. Realistic DNS schedulers must not touch
        #: this (a real DNS cannot see server queues); it exists for the
        #: omniscient upper-bound baselines (e.g. LEAST-LOADED).
        self.cluster = cluster
        #: Optional :class:`~repro.geo.placement.GeographicLayout`,
        #: attached by the simulation assembly when geography is enabled;
        #: required by the proximity schedulers.
        self.layout = None
        self._alarmed: List[bool] = [False] * self.server_count
        self._alarmed_count = 0

    # -- alarm feedback (paper Sec. 2) -------------------------------------

    def set_alarm(self, now: float, server_id: int, alarmed: bool) -> None:
        """Alarm listener callback (wired to the utilization monitor)."""
        if self._alarmed[server_id] != alarmed:
            self._alarmed[server_id] = alarmed
            self._alarmed_count += 1 if alarmed else -1

    def is_alarmed(self, server_id: int) -> bool:
        return self._alarmed[server_id]

    @property
    def alarmed_count(self) -> int:
        """How many servers are currently alarmed."""
        return self._alarmed_count

    @property
    def all_alarmed(self) -> bool:
        """Whether every server has declared itself critically loaded.

        Schedulers fall back to considering all servers in this case —
        requests must go somewhere.
        """
        return self._alarmed_count == self.server_count

    def is_eligible(self, server_id: int) -> bool:
        """A server is eligible unless alarmed (or everything is alarmed)."""
        return self.all_alarmed or not self._alarmed[server_id]

    def eligible_servers(self) -> List[int]:
        """Indices of servers a scheduler may currently pick."""
        if self.all_alarmed:
            return list(range(self.server_count))
        return [i for i, alarmed in enumerate(self._alarmed) if not alarmed]

    def snapshot_state(self) -> dict:
        """Alarm exclusion set as seen by the schedulers (checkpoints)."""
        return {
            "alarmed": list(self._alarmed),
            "alarmed_count": self._alarmed_count,
        }

    def __repr__(self) -> str:
        return (
            f"<SchedulerState servers={self.server_count} "
            f"alarmed={self._alarmed_count}>"
        )
