"""TTL-assignment policies (constant and the adaptive TTL family)."""

from .adaptive import AdaptiveTtlPolicy
from .base import TtlPolicy
from .calibration import (
    calibrated_scale,
    capacity_selection_probabilities,
    expected_request_rate,
    reference_request_rate,
    uniform_selection_probabilities,
)
from .constant import DEFAULT_CONSTANT_TTL, ConstantTtlPolicy
from .feedback import AlarmResponsiveTtlPolicy

__all__ = [
    "AdaptiveTtlPolicy",
    "AlarmResponsiveTtlPolicy",
    "ConstantTtlPolicy",
    "DEFAULT_CONSTANT_TTL",
    "TtlPolicy",
    "calibrated_scale",
    "capacity_selection_probabilities",
    "expected_request_rate",
    "reference_request_rate",
    "uniform_selection_probabilities",
]
