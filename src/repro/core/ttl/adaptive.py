"""The adaptive TTL policies — the paper's contribution (Section 3).

One configurable class covers the whole family:

* ``TTL/i`` (probabilistic schemes, Sec. 3.1): the TTL depends only on
  the requesting domain's class —
  ``TTL_j = scale / W_{class(j)}`` (for i = K this is the paper's
  ``TTL_j = (lambda_max / lambda_j) * TTL_min``).
* ``TTL/S_i`` (deterministic schemes, Sec. 3.2): additionally
  proportional to the chosen server's relative capacity —
  ``TTL_{i,j} = scale * alpha_i / W_{class(j)}`` (the paper's power-ratio
  factor ``rho`` is absorbed into the calibrated ``scale``).

The intent: make the hidden load unleashed by one mapping consume the
same *fraction of server capacity* regardless of which domain asked and
which server was chosen. A hot domain gets a short TTL (its requests are
re-spread quickly); a slow server gets a short TTL (it holds the hidden
load for less time).

``scale`` is recomputed (lazily, per estimator version) by the
calibration rule of :mod:`repro.core.ttl.calibration`, so every policy
produces the same average address-request rate as the 240 s constant
TTL — the paper's fairness condition.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ...errors import ConfigurationError
from ..classes import DomainClassifier
from ..state import SchedulerState
from .base import TtlPolicy
from .calibration import calibrated_scale, reference_request_rate


class AdaptiveTtlPolicy(TtlPolicy):
    """Domain- and (optionally) server-adaptive TTL assignment.

    Parameters
    ----------
    state:
        Shared scheduler state (capacities, estimator).
    classifier:
        Domain classifier defining the TTL tiers (1, 2, ..., K classes).
    scale_by_capacity:
        ``True`` for the deterministic TTL/S_i family, ``False`` for the
        probabilistic TTL/i family.
    selection_probabilities:
        The scheduler's stationary per-server selection probabilities,
        used only for calibration (uniform for DRR*, capacity-biased for
        PRR*).
    constant_ttl:
        The reference constant TTL whose address-request rate is matched
        (Table 1: 240 s).
    ttl_floor:
        Optional hard lower bound applied after the adaptive computation
        (0 = none). This models a DNS operator refusing to emit tiny
        TTLs; NS-side clamping is modelled separately.
    """

    def __init__(
        self,
        state: SchedulerState,
        classifier: DomainClassifier,
        scale_by_capacity: bool,
        selection_probabilities: Sequence[float],
        constant_ttl: float = 240.0,
        ttl_floor: float = 0.0,
    ):
        if len(selection_probabilities) != state.server_count:
            raise ConfigurationError(
                "selection_probabilities must have one entry per server"
            )
        if ttl_floor < 0:
            raise ConfigurationError(f"ttl_floor must be >= 0, got {ttl_floor!r}")
        self.state = state
        self.classifier = classifier
        self.scale_by_capacity = bool(scale_by_capacity)
        self.selection_probabilities = [float(p) for p in selection_probabilities]
        self.constant_ttl = float(constant_ttl)
        self.ttl_floor = float(ttl_floor)
        self._server_factors: List[float] = (
            list(state.relative_capacities)
            if self.scale_by_capacity
            else [1.0] * state.server_count
        )
        self._cached_version: Optional[int] = None
        self._cached: Optional[Tuple[List[int], List[float], float]] = None
        tiers = "S_" if self.scale_by_capacity else ""
        self.name = f"TTL/{tiers}i"

    # -- calibration -------------------------------------------------------

    def _current(self) -> Tuple[List[int], List[float], float]:
        """(class_of, class_weights, scale) for the current estimates."""
        version = self.state.estimator.version
        if self._cached is None or self._cached_version != version:
            class_of, class_weights = self.classifier.classification()
            domain_weights = [class_weights[c] for c in class_of]
            reference = reference_request_rate(len(class_of), self.constant_ttl)
            scale = calibrated_scale(
                domain_weights,
                self._server_factors,
                self.selection_probabilities,
                reference,
            )
            self._cached = (class_of, class_weights, scale)
            self._cached_version = version
        return self._cached

    @property
    def scale(self) -> float:
        """The calibrated base TTL scale (seconds)."""
        return self._current()[2]

    def ttl_table(self) -> List[List[float]]:
        """Full ``[server][domain]`` TTL matrix (diagnostics/tests)."""
        class_of, class_weights, scale = self._current()
        return [
            [
                max(self.ttl_floor, scale * factor / class_weights[class_of[j]])
                for j in range(len(class_of))
            ]
            for factor in self._server_factors
        ]

    # -- TtlPolicy ----------------------------------------------------------

    def ttl_for(self, domain_id: int, server_id: int, now: float) -> float:
        class_of, class_weights, scale = self._current()
        ttl = (
            scale
            * self._server_factors[server_id]
            / class_weights[class_of[domain_id]]
        )
        return ttl if ttl >= self.ttl_floor else self.ttl_floor

    def __repr__(self) -> str:
        kind = "TTL/S" if self.scale_by_capacity else "TTL"
        return (
            f"<AdaptiveTtlPolicy {kind} classes={self.classifier.class_count} "
            f"scale={self.scale:.2f}s>"
        )
