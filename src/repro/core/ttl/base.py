"""TTL policy interface.

A TTL policy answers the second half of every DNS resolution: *for how
long may this mapping be reused?* The adaptive-TTL idea — the paper's
contribution — lives entirely behind this interface; schedulers and the
DNS are oblivious to how the value is computed.
"""

from __future__ import annotations


class TtlPolicy:
    """Base class for TTL-assignment disciplines."""

    #: Human-readable policy-family name (set by subclasses).
    name: str = "abstract"

    def ttl_for(self, domain_id: int, server_id: int, now: float) -> float:
        """TTL (seconds) for a mapping of ``domain_id`` to ``server_id``."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r}>"
