"""TTL-scale calibration for fair policy comparison.

Paper, Section 4.1: "Since an arbitrary choice of TTL would lead to
unfair performance comparisons, for each adaptive TTL policy we have
chosen the TTL values in such a way that their average address request
rates remain the same" (as the 240 s constant-TTL policies).

A continuously active domain re-resolves once per TTL period, so its
address-request rate is ``1 / E[TTL]`` where the expectation runs over
the servers the scheduler may map it to. For a separable adaptive policy

``TTL(i, j) = scale * a_i / W_j``

(``a_i`` = per-server factor, ``W_j`` = class weight of domain ``j``'s
class) the system-wide rate is

``R(scale) = sum_j W_j / (scale * a_bar)``,  ``a_bar = sum_i p_i a_i``,

with ``p_i`` the scheduler's stationary selection probabilities. Equating
``R(scale)`` with the reference rate ``K / TTL_const`` yields the closed
form implemented by :func:`calibrated_scale`.
"""

from __future__ import annotations

from typing import List, Sequence

from ...errors import ConfigurationError


def uniform_selection_probabilities(server_count: int) -> List[float]:
    """Stationary selection of RR-style deterministic schedulers."""
    if server_count < 1:
        raise ConfigurationError(f"server_count must be >= 1, got {server_count!r}")
    return [1.0 / server_count] * server_count


def capacity_selection_probabilities(
    relative_capacities: Sequence[float],
) -> List[float]:
    """Stationary selection of PRR-style capacity-biased schedulers.

    Within one sweep, server ``i`` is chosen proportionally to the
    probability ``alpha_i`` that its acceptance test passes.
    """
    alphas = [float(a) for a in relative_capacities]
    if not alphas or any(a <= 0 for a in alphas):
        raise ConfigurationError("relative capacities must be positive")
    total = sum(alphas)
    return [a / total for a in alphas]


def reference_request_rate(domain_count: int, constant_ttl: float) -> float:
    """Address-request rate of the constant-TTL policy: ``K / TTL``."""
    if domain_count < 1:
        raise ConfigurationError(f"domain_count must be >= 1, got {domain_count!r}")
    if constant_ttl <= 0:
        raise ConfigurationError(f"constant_ttl must be > 0, got {constant_ttl!r}")
    return domain_count / constant_ttl


def calibrated_scale(
    domain_class_weights: Sequence[float],
    server_factors: Sequence[float],
    selection_probabilities: Sequence[float],
    reference_rate: float,
) -> float:
    """The ``scale`` equating the policy's request rate to ``reference_rate``.

    Parameters
    ----------
    domain_class_weights:
        ``W_{class(j)}`` for every domain ``j`` (one entry per *domain*).
    server_factors:
        ``a_i`` per server (all 1 for policies that ignore capacity).
    selection_probabilities:
        Stationary probability that the scheduler picks each server.
    reference_rate:
        Target address-request rate (see :func:`reference_request_rate`).
    """
    if reference_rate <= 0:
        raise ConfigurationError(
            f"reference_rate must be > 0, got {reference_rate!r}"
        )
    if len(server_factors) != len(selection_probabilities):
        raise ConfigurationError(
            "server_factors and selection_probabilities lengths differ"
        )
    if any(w <= 0 for w in domain_class_weights):
        raise ConfigurationError("domain class weights must be positive")
    mean_server_factor = sum(
        factor * prob
        for factor, prob in zip(server_factors, selection_probabilities)
    )
    if mean_server_factor <= 0:
        raise ConfigurationError("mean server factor must be positive")
    return sum(domain_class_weights) / (mean_server_factor * reference_rate)


def expected_request_rate(
    scale: float,
    domain_class_weights: Sequence[float],
    server_factors: Sequence[float],
    selection_probabilities: Sequence[float],
) -> float:
    """Analytic address-request rate of a calibrated policy (for tests)."""
    mean_server_factor = sum(
        factor * prob
        for factor, prob in zip(server_factors, selection_probabilities)
    )
    return sum(domain_class_weights) / (scale * mean_server_factor)
