"""Constant TTL — the non-adaptive degenerate policy (TTL/1).

Used by conventional DNS round-robin deployments and, in the paper, by
RR, RR2, PRR-TTL/1, PRR2-TTL/1, DAL and MRL. Table 1 fixes the value at
240 seconds.
"""

from __future__ import annotations

from ...errors import ConfigurationError
from .base import TtlPolicy

#: Table 1 — the constant TTL used by non-adaptive policies.
DEFAULT_CONSTANT_TTL = 240.0


class ConstantTtlPolicy(TtlPolicy):
    """The same TTL for every domain and server."""

    name = "TTL/1"

    def __init__(self, ttl: float = DEFAULT_CONSTANT_TTL):
        if ttl <= 0:
            raise ConfigurationError(f"constant TTL must be > 0, got {ttl!r}")
        self.ttl = float(ttl)

    def ttl_for(self, domain_id: int, server_id: int, now: float) -> float:
        return self.ttl

    def __repr__(self) -> str:
        return f"<ConstantTtlPolicy ttl={self.ttl!r}>"
