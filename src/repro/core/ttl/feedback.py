"""Alarm-responsive TTL scaling (a future-work extension).

The paper's alarm protocol only gates *server selection*: an alarmed
server stops receiving new mappings, but mappings already cached keep
feeding it, and the TTLs being handed out elsewhere are unchanged. A
natural next step — in the spirit of the paper's "dynamic variations"
outlook — is to let alarms also shrink the TTLs the DNS hands out:
while part of the site is critically loaded, every new mapping should be
easier to revoke.

:class:`AlarmResponsiveTtlPolicy` wraps any base TTL policy and applies

``ttl = base_ttl * reduction ** alarmed_count``

bounded below by ``min_ttl``. With no alarms it is exactly the wrapped
policy, so calibration and all steady-state results are unchanged; the
difference shows only around overload episodes.
"""

from __future__ import annotations

from ...errors import ConfigurationError
from ..state import SchedulerState
from .base import TtlPolicy


class AlarmResponsiveTtlPolicy(TtlPolicy):
    """Scale a wrapped policy's TTLs down while servers are alarmed.

    Parameters
    ----------
    inner:
        The TTL policy being wrapped (constant or adaptive).
    state:
        Shared scheduler state (source of the alarm count).
    reduction:
        Multiplicative factor applied once per currently-alarmed server,
        in (0, 1].
    min_ttl:
        Lower bound on the scaled TTL (avoid zero-TTL floods).
    """

    name = "ALARM-SCALED"

    def __init__(
        self,
        inner: TtlPolicy,
        state: SchedulerState,
        reduction: float = 0.5,
        min_ttl: float = 10.0,
    ):
        if not 0.0 < reduction <= 1.0:
            raise ConfigurationError(
                f"reduction must be in (0, 1], got {reduction!r}"
            )
        if min_ttl <= 0:
            raise ConfigurationError(f"min_ttl must be > 0, got {min_ttl!r}")
        self.inner = inner
        self.state = state
        self.reduction = float(reduction)
        self.min_ttl = float(min_ttl)
        #: TTL grants that were scaled down (diagnostics).
        self.scaled_grants = 0

    def ttl_for(self, domain_id: int, server_id: int, now: float) -> float:
        ttl = self.inner.ttl_for(domain_id, server_id, now)
        alarmed = self.state.alarmed_count
        if alarmed == 0:
            return ttl
        self.scaled_grants += 1
        scaled = ttl * (self.reduction**alarmed)
        return scaled if scaled >= self.min_ttl else self.min_ttl

    def __repr__(self) -> str:
        return (
            f"<AlarmResponsiveTtlPolicy inner={type(self.inner).__name__} "
            f"reduction={self.reduction:g}>"
        )
