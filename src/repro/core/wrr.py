"""Smooth weighted round-robin — a deterministic capacity-aware baseline.

Not part of the paper, but the natural deterministic alternative to PRR:
instead of skipping servers probabilistically, interleave them so that
over any window each server receives a share of mappings proportional to
its relative capacity, with the smoothest possible spacing (the algorithm
popularized by nginx's ``smooth weighted round-robin``):

1. add each eligible server's weight to its current credit;
2. pick the server with the highest credit;
3. subtract the total eligible weight from the winner's credit.

Included so experiments can separate *how capacity awareness is injected*
(routing vs TTL) from *whether the rotation is randomized*.
"""

from __future__ import annotations

from typing import List

from .base import Scheduler
from .state import SchedulerState


class SmoothWeightedRoundRobinScheduler(Scheduler):
    """Deterministic capacity-proportional interleaving (see module doc)."""

    name = "WRR"

    def __init__(self, state: SchedulerState):
        super().__init__(state)
        self._credit: List[float] = [0.0] * state.server_count

    def select(self, domain_id: int, now: float) -> int:
        alphas = self.state.relative_capacities
        eligible = self.state.eligible_servers()
        total = 0.0
        best = eligible[0]
        best_credit = -float("inf")
        for server_id in eligible:
            self._credit[server_id] += alphas[server_id]
            total += alphas[server_id]
            if self._credit[server_id] > best_credit:
                best = server_id
                best_credit = self._credit[server_id]
        self._credit[best] -= total
        return best
