"""DNS infrastructure substrate.

Models the name-resolution path of the paper's system: an authoritative
DNS (scheduler + TTL policy), per-domain local name servers with TTL
caches and optional non-cooperative minimum-TTL behaviour, and the
resolution chain tying them together.
"""

from .authoritative import AuthoritativeDns, DnsStats
from .cache import CacheStats, TtlCache
from .nameserver import DEFAULT_NS_TTL, SITE_KEY, LocalNameServer
from .records import AddressRecord
from .resolver import ResolutionChain

__all__ = [
    "AddressRecord",
    "AuthoritativeDns",
    "CacheStats",
    "DEFAULT_NS_TTL",
    "DnsStats",
    "LocalNameServer",
    "ResolutionChain",
    "SITE_KEY",
    "TtlCache",
]
