"""The authoritative DNS of the distributed web site.

This is the paper's "atypical centralized scheduler": the only component
with global (if partial and stale) knowledge, but one that observes and
controls only the small fraction of requests that miss every downstream
cache. It composes two pluggable strategies:

* a *scheduler* choosing which web server to return
  (:mod:`repro.core` — RR, RR2, PRR, PRR2, DRR, DRR2, DAL, ...), and
* a *TTL policy* choosing how long the mapping stays valid
  (:mod:`repro.core.ttl` — constant, TTL/2, TTL/K, TTL/S_*).

Observability: each resolution can emit one ``"dns"`` trace record —
the decision the paper's analysis revolves around (which server, for how
long, for a domain of which hidden-load weight) — and the standing
counters are registered into the run's metrics registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from ..sim.stats import RunningStats
from ..sim.tracing import NullTracer
from .records import AddressRecord


@dataclass
class DnsStats:
    """Counters kept by the authoritative DNS."""

    resolutions: int = 0
    per_domain: Dict[int, int] = field(default_factory=dict)
    per_server: Dict[int, int] = field(default_factory=dict)
    ttl: RunningStats = field(default_factory=RunningStats)

    def record(self, domain_id: int, server_id: int, ttl: float) -> None:
        self.resolutions += 1
        self.per_domain[domain_id] = self.per_domain.get(domain_id, 0) + 1
        self.per_server[server_id] = self.per_server.get(server_id, 0) + 1
        self.ttl.add(ttl)

    def snapshot_state(self) -> dict:
        """All counters as JSON-safe data (for checkpoints)."""
        return {
            "resolutions": self.resolutions,
            "per_domain": {
                str(domain): count
                for domain, count in sorted(self.per_domain.items())
            },
            "per_server": {
                str(server): count
                for server, count in sorted(self.per_server.items())
            },
            "ttl": self.ttl.snapshot_state(),
        }


class AuthoritativeDns:
    """Authoritative DNS combining a scheduler and a TTL policy.

    Parameters
    ----------
    scheduler:
        Object with ``select(domain_id, now) -> server_id``.
    ttl_policy:
        Object with ``ttl_for(domain_id, server_id, now) -> float``.
    tracer:
        Optional tracer; emits one ``"dns"`` record per resolution.
    metrics:
        Optional :class:`~repro.obs.MetricsRegistry`; the DNS registers
        pull callbacks for its resolution count and mean granted TTL.
    domain_weight:
        Optional ``domain_id -> float`` callback returning the domain's
        estimated hidden-load weight, included in ``"dns"`` records.
    policy_label:
        Canonical policy name for trace payloads (defaults to the
        scheduler's class name).
    """

    def __init__(
        self,
        scheduler,
        ttl_policy,
        tracer=None,
        metrics=None,
        domain_weight: Optional[Callable[[int], float]] = None,
        policy_label: Optional[str] = None,
    ):
        self.scheduler = scheduler
        self.ttl_policy = ttl_policy
        self.stats = DnsStats()
        self.tracer = tracer if tracer is not None else NullTracer()
        self.domain_weight = domain_weight
        self.policy_label = policy_label or type(scheduler).__name__
        self._ttl_series = None
        if metrics is not None:
            metrics.register("dns.resolutions", lambda: self.stats.resolutions)
            metrics.register(
                "dns.mean_granted_ttl",
                lambda: self.stats.ttl.mean if self.stats.ttl.count else 0.0,
            )
            # Timeline of the TTLs actually assigned — the adaptive
            # policies' control signal over time, one point per
            # resolution (bounded by the series budget).
            self._ttl_series = metrics.timeseries("dns.assigned_ttl")

    def resolve(self, domain_id: int, now: float) -> AddressRecord:
        """Handle one address-mapping request from ``domain_id``."""
        server_id = self.scheduler.select(domain_id, now)
        ttl = self.ttl_policy.ttl_for(domain_id, server_id, now)
        notify = getattr(self.scheduler, "notify_assignment", None)
        if notify is not None:
            # Load-accumulating disciplines (DAL, MRL) learn the granted
            # TTL through this hook.
            notify(domain_id, server_id, ttl, now)
        self.stats.record(domain_id, server_id, ttl)
        if self._ttl_series is not None:
            self._ttl_series.record(now, ttl)
        if self.tracer.enabled:
            self.tracer.record(
                now,
                "dns",
                {
                    "policy": self.policy_label,
                    "domain": domain_id,
                    "server": server_id,
                    "ttl": ttl,
                    "weight": (
                        self.domain_weight(domain_id)
                        if self.domain_weight is not None
                        else None
                    ),
                },
            )
        return AddressRecord(server_id=server_id, ttl=ttl, issued_at=now)

    def address_request_rate(self, elapsed: float) -> float:
        """Observed address-mapping requests per second over ``elapsed``."""
        if elapsed <= 0:
            return 0.0
        return self.stats.resolutions / elapsed

    def __repr__(self) -> str:
        return (
            f"<AuthoritativeDns scheduler={type(self.scheduler).__name__} "
            f"ttl_policy={type(self.ttl_policy).__name__} "
            f"resolutions={self.stats.resolutions}>"
        )
