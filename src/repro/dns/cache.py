"""A generic TTL cache, as used by name servers and clients.

Entries expire by wall-clock (simulation) time rather than by explicit
invalidation — exactly the DNS caching semantics that make the scheduling
problem hard: once an entry is cached, every lookup it serves is invisible
to the authoritative DNS until the TTL runs out.

Time contract
-------------
Every mutating or time-parameterized call (``get``, ``put``,
``contains``, ``live_count``, ``expires_at``, ``purge_expired``) observes
its ``now`` argument and advances an internal high-water clock; the
zero-argument views (``__contains__``, ``__len__``) evaluate expiry
against that clock. All views therefore agree with ``get``: an entry
whose expiry time has been reached (``now >= expires_at``) is absent —
not a member, not counted, and without an expiry time — whether or not it
has been physically removed yet. Removal itself stays lazy (on ``get`` or
``purge_expired``), so ``stats.expirations`` counts each expired entry
exactly once.

``now`` and ``ttl`` must be finite: a NaN or infinite TTL would create an
entry that no comparison against the clock can ever expire, silently
wedging the cache (see ``tests/unit/test_dns_cache.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Hashable, Optional, Tuple

from ..errors import ConfigurationError


@dataclass
class CacheStats:
    """Hit/miss counters for a :class:`TtlCache`."""

    hits: int = 0
    misses: int = 0
    expirations: int = 0
    insertions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Fraction of lookups served from cache (0 when never queried)."""
        return self.hits / self.lookups if self.lookups else 0.0


class TtlCache:
    """Maps keys to values with per-entry absolute expiry times."""

    def __init__(self):
        self._entries: Dict[Hashable, Tuple[Any, float]] = {}
        self.stats = CacheStats()
        #: High-water mark of every ``now`` observed so far; the clock
        #: the zero-argument views (``in``, ``len``) evaluate against.
        self._clock = 0.0

    @property
    def clock(self) -> float:
        """The latest time this cache has observed."""
        return self._clock

    def _observe(self, now: float) -> float:
        if not math.isfinite(now):
            raise ConfigurationError(f"now must be finite, got {now!r}")
        if now > self._clock:
            self._clock = now
        return now

    def get(self, key: Hashable, now: float) -> Optional[Any]:
        """The cached value for ``key``, or ``None`` if absent/expired."""
        self._observe(now)
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        value, expires_at = entry
        if now >= expires_at:
            del self._entries[key]
            self.stats.expirations += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return value

    def put(self, key: Hashable, value: Any, ttl: float, now: float) -> None:
        """Cache ``value`` under ``key`` for ``ttl`` seconds from ``now``.

        A zero TTL is accepted but the entry is immediately stale — this
        mirrors real resolvers, which may hand the answer to the one
        in-flight query but never serve it again. Non-finite TTLs (NaN,
        inf) are rejected: ``now >= now + nan`` is always false, so such
        an entry could never expire.
        """
        if not math.isfinite(ttl) or ttl < 0:
            raise ConfigurationError(f"TTL must be finite and >= 0, got {ttl!r}")
        self._observe(now)
        self._entries[key] = (value, now + ttl)
        self.stats.insertions += 1

    def invalidate(self, key: Hashable) -> bool:
        """Drop ``key`` from the cache; returns whether it was present."""
        return self._entries.pop(key, None) is not None

    def contains(self, key: Hashable, now: Optional[float] = None) -> bool:
        """Whether ``get(key, now)`` would hit (without touching stats).

        ``now`` defaults to the internal clock. Unlike ``get`` this never
        removes the entry, so interleaved membership probes do not
        perturb ``stats``.
        """
        now = self._clock if now is None else self._observe(now)
        entry = self._entries.get(key)
        return entry is not None and now < entry[1]

    def live_count(self, now: Optional[float] = None) -> int:
        """Number of entries that are not expired as of ``now``.

        ``now`` defaults to the internal clock.
        """
        now = self._clock if now is None else self._observe(now)
        return sum(1 for _, expires_at in self._entries.values() if now < expires_at)

    def expires_at(self, key: Hashable, now: Optional[float] = None) -> Optional[float]:
        """Expiry time of the *live* entry for ``key``, else ``None``.

        Agrees with ``get``/``contains``: an entry that has already
        expired as of ``now`` (default: the internal clock) has no expiry
        time to report — callers must not treat a stale timestamp as a
        promise of future validity.
        """
        now = self._clock if now is None else self._observe(now)
        entry = self._entries.get(key)
        if entry is None or now >= entry[1]:
            return None
        return entry[1]

    def purge_expired(self, now: float) -> int:
        """Remove all expired entries; returns how many were removed."""
        self._observe(now)
        stale = [k for k, (_, exp) in self._entries.items() if now >= exp]
        for key in stale:
            del self._entries[key]
        self.stats.expirations += len(stale)
        return len(stale)

    def snapshot_state(self) -> dict:
        """Cache contents, clock high-water mark and counters (JSON-safe).

        Entries are emitted as ``[repr(key), repr(value), expires_at]``
        sorted by key repr: values are typically
        :class:`~repro.dns.records.AddressRecord` dataclasses whose repr
        is deterministic, and physical (not just live) entries are
        included — lazy removal is part of the state a resumed run must
        reproduce exactly (it decides future ``stats.expirations``).
        """
        return {
            "clock": self._clock,
            "entries": sorted(
                [repr(key), repr(value), expires_at]
                for key, (value, expires_at) in self._entries.items()
            ),
            "stats": {
                "hits": self.stats.hits,
                "misses": self.stats.misses,
                "expirations": self.stats.expirations,
                "insertions": self.stats.insertions,
            },
        }

    def __len__(self) -> int:
        return self.live_count()

    def __contains__(self, key: Hashable) -> bool:
        return self.contains(key)
