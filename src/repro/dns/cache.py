"""A generic TTL cache, as used by name servers and clients.

Entries expire by wall-clock (simulation) time rather than by explicit
invalidation — exactly the DNS caching semantics that make the scheduling
problem hard: once an entry is cached, every lookup it serves is invisible
to the authoritative DNS until the TTL runs out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Optional, Tuple

from ..errors import ConfigurationError


@dataclass
class CacheStats:
    """Hit/miss counters for a :class:`TtlCache`."""

    hits: int = 0
    misses: int = 0
    expirations: int = 0
    insertions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Fraction of lookups served from cache (0 when never queried)."""
        return self.hits / self.lookups if self.lookups else 0.0


class TtlCache:
    """Maps keys to values with per-entry absolute expiry times."""

    def __init__(self):
        self._entries: Dict[Hashable, Tuple[Any, float]] = {}
        self.stats = CacheStats()

    def get(self, key: Hashable, now: float) -> Optional[Any]:
        """The cached value for ``key``, or ``None`` if absent/expired."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        value, expires_at = entry
        if now >= expires_at:
            del self._entries[key]
            self.stats.expirations += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return value

    def put(self, key: Hashable, value: Any, ttl: float, now: float) -> None:
        """Cache ``value`` under ``key`` for ``ttl`` seconds from ``now``.

        A zero TTL is accepted but the entry is immediately stale — this
        mirrors real resolvers, which may hand the answer to the one
        in-flight query but never serve it again.
        """
        if ttl < 0:
            raise ConfigurationError(f"TTL must be >= 0, got {ttl!r}")
        self._entries[key] = (value, now + ttl)
        self.stats.insertions += 1

    def invalidate(self, key: Hashable) -> bool:
        """Drop ``key`` from the cache; returns whether it was present."""
        return self._entries.pop(key, None) is not None

    def expires_at(self, key: Hashable) -> Optional[float]:
        """Expiry time of the entry for ``key``, if present."""
        entry = self._entries.get(key)
        return entry[1] if entry is not None else None

    def purge_expired(self, now: float) -> int:
        """Remove all expired entries; returns how many were removed."""
        stale = [k for k, (_, exp) in self._entries.items() if now >= exp]
        for key in stale:
            del self._entries[key]
        self.stats.expirations += len(stale)
        return len(stale)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries
