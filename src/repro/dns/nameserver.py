"""Per-domain local name servers.

Every client domain owns a local name server (NS). When a client starts a
session it asks its NS for the web site's address; the NS answers from its
TTL cache when possible and otherwise queries the authoritative DNS. The
NS is where *non-cooperative* behaviour lives: real resolvers distrust very
small TTLs. Two override modes are supported for a recommendation below
``min_accepted_ttl``:

``"clamp"`` (default)
    Cache for ``min_accepted_ttl`` itself — the NS "imposes its own
    minimum TTL threshold", the worst-case scenario swept in the paper's
    Figs. 4-5.
``"default"``
    Cache for a fixed ``default_ttl`` (240 s), modelling resolvers that
    fall back to a house default instead of clamping.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from ..errors import ConfigurationError
from ..sim.tracing import NullTracer
from .cache import TtlCache
from .records import AddressRecord

#: A callable that performs an authoritative resolution for a domain:
#: ``(domain_id, now) -> AddressRecord``.
UpstreamResolver = Callable[[int, float], AddressRecord]

#: Default TTL a non-cooperative NS substitutes for "too small" values.
DEFAULT_NS_TTL = 240.0

#: Cache key for the (single) replicated web site name.
SITE_KEY = "www"


class LocalNameServer:
    """The local name server of one client domain.

    Parameters
    ----------
    domain_id:
        Index of the domain this NS serves.
    upstream:
        Resolution callback into the authoritative DNS.
    min_accepted_ttl:
        TTLs below this threshold are considered "too small" and
        overridden when caching (0 = fully cooperative NS).
    default_ttl:
        The substitute TTL used in ``"default"`` override mode.
    override_mode:
        ``"clamp"`` or ``"default"`` (see module docstring).
    tracer:
        Optional tracer; emits one ``"ns"`` record per resolution
        (cache hit or authoritative fetch, with override details).
    """

    OVERRIDE_MODES = ("clamp", "default")

    def __init__(
        self,
        domain_id: int,
        upstream: UpstreamResolver,
        min_accepted_ttl: float = 0.0,
        default_ttl: float = DEFAULT_NS_TTL,
        override_mode: str = "clamp",
        tracer=None,
    ):
        if min_accepted_ttl < 0:
            raise ConfigurationError(
                f"min_accepted_ttl must be >= 0, got {min_accepted_ttl!r}"
            )
        if default_ttl <= 0:
            raise ConfigurationError(f"default_ttl must be > 0, got {default_ttl!r}")
        if override_mode not in self.OVERRIDE_MODES:
            raise ConfigurationError(
                f"override_mode must be one of {self.OVERRIDE_MODES}, "
                f"got {override_mode!r}"
            )
        self.domain_id = domain_id
        self.upstream = upstream
        self.min_accepted_ttl = float(min_accepted_ttl)
        self.default_ttl = float(default_ttl)
        self.override_mode = override_mode
        self.cache = TtlCache()
        self.tracer = tracer if tracer is not None else NullTracer()
        #: Number of recommended TTLs this NS overrode.
        self.overridden_ttls = 0

    def effective_ttl(self, recommended: float) -> float:
        """The TTL this NS will actually cache for a recommendation."""
        if recommended >= self.min_accepted_ttl:
            return recommended
        if self.override_mode == "clamp":
            return self.min_accepted_ttl
        return self.default_ttl

    def resolve(self, now: float) -> Tuple[AddressRecord, bool]:
        """Resolve the site name at time ``now``.

        Returns
        -------
        (record, from_cache):
            The mapping used and whether it was served from the NS cache
            (``True``) or freshly obtained from the authoritative DNS
            (``False``).
        """
        cached: Optional[AddressRecord] = self.cache.get(SITE_KEY, now)
        if cached is not None:
            if self.tracer.enabled:
                self.tracer.record(
                    now,
                    "ns",
                    {
                        "domain": self.domain_id,
                        "hit": True,
                        "server": cached.server_id,
                        "expires_at": self.cache.expires_at(SITE_KEY),
                    },
                )
            return cached, True
        record = self.upstream(self.domain_id, now)
        recommended = record.ttl
        ttl = self.effective_ttl(recommended)
        overridden = ttl != recommended
        if overridden:
            self.overridden_ttls += 1
            record = record.with_ttl(ttl)
        self.cache.put(SITE_KEY, record, ttl, now)
        if self.tracer.enabled:
            self.tracer.record(
                now,
                "ns",
                {
                    "domain": self.domain_id,
                    "hit": False,
                    "server": record.server_id,
                    "recommended_ttl": recommended,
                    "effective_ttl": ttl,
                    "overridden": overridden,
                },
            )
        return record, False

    def __repr__(self) -> str:
        return (
            f"<LocalNameServer domain={self.domain_id} "
            f"min_ttl={self.min_accepted_ttl} overrides={self.overridden_ttls}>"
        )
