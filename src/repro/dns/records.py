"""Address-mapping records returned by the authoritative DNS."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError


@dataclass(frozen=True)
class AddressRecord:
    """A name-to-address mapping with its validity period.

    Attributes
    ----------
    server_id:
        Index of the web server the site name was mapped to.
    ttl:
        Time-to-live in seconds granted by the DNS scheduler. This is the
        *recommended* TTL; a non-cooperative name server may substitute
        its own value when caching (see
        :class:`~repro.dns.nameserver.LocalNameServer`).
    issued_at:
        Simulation time at which the mapping was issued.
    """

    server_id: int
    ttl: float
    issued_at: float

    def __post_init__(self):
        if self.ttl < 0:
            raise ConfigurationError(f"TTL must be >= 0, got {self.ttl!r}")

    @property
    def expires_at(self) -> float:
        """Absolute simulation time at which the mapping expires."""
        return self.issued_at + self.ttl

    def is_valid(self, now: float) -> bool:
        """Whether the mapping may still be used at time ``now``."""
        return now < self.expires_at

    def with_ttl(self, ttl: float) -> "AddressRecord":
        """A copy of this record carrying a different TTL."""
        return AddressRecord(self.server_id, ttl, self.issued_at)
