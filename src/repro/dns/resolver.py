"""The end-to-end resolution chain: client -> local NS -> authoritative DNS.

:class:`ResolutionChain` owns the :class:`LocalNameServer` instances of
every client domain and routes each client resolution through the right
NS. It also aggregates the statistic the paper highlights — the fraction
of requests the DNS directly controls — by distinguishing fresh
authoritative answers from NS cache hits.

The paper's model says each domain has "a (set of) local name
server(s)"; ``nameservers_per_domain`` sizes that set. With more than
one NS per domain, a domain's clients are statically partitioned across
its name servers (as stub-resolver configurations are in practice), the
per-domain cache state fragments, and the authoritative DNS sees
proportionally more address requests — i.e. it regains some control at
the price of resolution traffic.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..errors import ConfigurationError
from .authoritative import AuthoritativeDns
from .nameserver import DEFAULT_NS_TTL, LocalNameServer
from .records import AddressRecord

#: Domain count at or above which name servers are created on first
#: resolution instead of eagerly at construction. Below the threshold
#: the chain is byte-identical to the historical eager implementation
#: (tests pin ``len(chain.nameservers) == domain_count`` there); above
#: it, eagerly building 10^6 ``LocalNameServer`` + cache objects would
#: dominate run memory even though a run only ever touches the domains
#: its clients actually resolve. Keyed on ``domain_count`` alone — not
#: on which population implementation drives the run — so checkpoint
#: digests of a given config agree across populations and engine modes.
LAZY_NS_THRESHOLD = 100_000


class ResolutionChain:
    """Routes client resolutions through per-domain name servers.

    Parameters
    ----------
    dns:
        The authoritative :class:`AuthoritativeDns`.
    domain_count:
        Number of client domains (one NS each).
    min_accepted_ttl:
        Non-cooperative threshold applied by every NS (paper Figs. 4-5
        model the worst case where *all* NSs share the threshold).
    default_ttl:
        TTL substituted by an NS in ``"default"`` override mode.
    override_mode:
        ``"clamp"`` (paper) or ``"default"`` — see
        :class:`~repro.dns.nameserver.LocalNameServer`.
    nameservers_per_domain:
        Size of each domain's NS set (paper base model: 1).
    tracer:
        Optional tracer, handed to every NS (``"ns"`` records).
    metrics:
        Optional :class:`~repro.obs.MetricsRegistry`; the chain
        registers its cache/authoritative answer counters and the
        aggregate TTL-override count.
    """

    def __init__(
        self,
        dns: AuthoritativeDns,
        domain_count: int,
        min_accepted_ttl: float = 0.0,
        default_ttl: float = DEFAULT_NS_TTL,
        override_mode: str = "clamp",
        nameservers_per_domain: int = 1,
        tracer=None,
        metrics=None,
    ):
        if domain_count < 1:
            raise ConfigurationError(f"domain_count must be >= 1, got {domain_count!r}")
        if nameservers_per_domain < 1:
            raise ConfigurationError(
                f"nameservers_per_domain must be >= 1, "
                f"got {nameservers_per_domain!r}"
            )
        self.dns = dns
        self.domain_count = domain_count
        self.nameservers_per_domain = nameservers_per_domain
        self._min_accepted_ttl = min_accepted_ttl
        self._default_ttl = default_ttl
        self._override_mode = override_mode
        self._tracer = tracer
        #: Lazily created domains hold their NS group in a dict keyed by
        #: domain id; eager mode (small K) pre-builds every group.
        self.lazy_nameservers = domain_count >= LAZY_NS_THRESHOLD
        if self.lazy_nameservers:
            self._by_domain: Dict[int, List[LocalNameServer]] = {}
        else:
            self._by_domain = {
                d: self._build_group(d) for d in range(domain_count)
            }
        #: Resolutions answered from an NS cache.
        self.cache_answers = 0
        #: Resolutions answered by the authoritative DNS.
        self.authoritative_answers = 0
        if metrics is not None:
            metrics.register("ns.cache_answers", lambda: self.cache_answers)
            metrics.register(
                "ns.authoritative_answers", lambda: self.authoritative_answers
            )
            metrics.register(
                "ns.ttl_overrides",
                lambda: sum(self.ttl_override_counts().values()),
            )

    def _build_group(self, domain_id: int) -> List[LocalNameServer]:
        """Construct one domain's NS set."""
        return [
            LocalNameServer(
                domain_id=domain_id,
                upstream=self.dns.resolve,
                min_accepted_ttl=self._min_accepted_ttl,
                default_ttl=self._default_ttl,
                override_mode=self._override_mode,
                tracer=self._tracer,
            )
            for _ in range(self.nameservers_per_domain)
        ]

    @property
    def nameservers(self) -> List[LocalNameServer]:
        """Flat view over every *materialized* NS, ordered by domain.

        Eager mode (small K): every domain's set, exactly as the
        historical attribute. Lazy mode: only domains that have resolved
        at least once — untouched domains have empty caches and zero
        override counts, so aggregate statistics are unaffected.
        """
        by_domain = self._by_domain
        if self.lazy_nameservers:
            return [
                ns for d in sorted(by_domain) for ns in by_domain[d]
            ]
        return [ns for group in by_domain.values() for ns in group]

    def nameserver_for(self, domain_id: int, client_id: int = 0) -> LocalNameServer:
        """The NS a given client of ``domain_id`` is configured to use.

        In lazy mode the domain's NS set is created on first use.
        """
        group = self._by_domain.get(domain_id)
        if group is None:
            if not 0 <= domain_id < self.domain_count:
                raise IndexError(
                    f"domain_id {domain_id!r} out of range "
                    f"[0, {self.domain_count})"
                )
            group = self._by_domain[domain_id] = self._build_group(domain_id)
        return group[client_id % len(group)]

    def resolve(
        self, domain_id: int, now: float, client_id: int = 0
    ) -> AddressRecord:
        """Resolve the site name on behalf of a client in ``domain_id``."""
        record, from_cache = self.nameserver_for(domain_id, client_id).resolve(
            now
        )
        if from_cache:
            self.cache_answers += 1
        else:
            self.authoritative_answers += 1
        return record

    @property
    def dns_control_fraction(self) -> float:
        """Fraction of resolutions the authoritative DNS answered.

        The paper notes this is often below 4% of the *data* requests;
        measured over resolutions it is higher, but both views are
        derivable (data-request control is tracked by the simulation).
        """
        total = self.cache_answers + self.authoritative_answers
        return self.authoritative_answers / total if total else 0.0

    def ttl_override_counts(self) -> Dict[int, int]:
        """Per-domain counts of NS-overridden TTL recommendations."""
        counts: Dict[int, int] = {}
        for ns in self.nameservers:
            counts[ns.domain_id] = counts.get(ns.domain_id, 0) + ns.overridden_ttls
        return counts

    def snapshot_state(self) -> dict:
        """Answer counters plus every NS cache's state (for checkpoints).

        NS caches hold the entire "invisible to the DNS" side of the
        model — entry contents, expiry times and the lazy-removal clock
        all decide which future resolutions reach the authoritative
        server, so a resume digest must cover each one exactly.
        """
        return {
            "cache_answers": self.cache_answers,
            "authoritative_answers": self.authoritative_answers,
            "nameservers": [
                {
                    "domain": ns.domain_id,
                    "overridden_ttls": ns.overridden_ttls,
                    "cache": ns.cache.snapshot_state(),
                }
                for ns in self.nameservers
            ],
        }

    def __repr__(self) -> str:
        return (
            f"<ResolutionChain domains={self.domain_count} "
            f"ns_per_domain={self.nameservers_per_domain} "
            f"cache={self.cache_answers} authoritative={self.authoritative_answers}>"
        )
