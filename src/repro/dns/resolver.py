"""The end-to-end resolution chain: client -> local NS -> authoritative DNS.

:class:`ResolutionChain` owns the :class:`LocalNameServer` instances of
every client domain and routes each client resolution through the right
NS. It also aggregates the statistic the paper highlights — the fraction
of requests the DNS directly controls — by distinguishing fresh
authoritative answers from NS cache hits.

The paper's model says each domain has "a (set of) local name
server(s)"; ``nameservers_per_domain`` sizes that set. With more than
one NS per domain, a domain's clients are statically partitioned across
its name servers (as stub-resolver configurations are in practice), the
per-domain cache state fragments, and the authoritative DNS sees
proportionally more address requests — i.e. it regains some control at
the price of resolution traffic.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..errors import ConfigurationError
from .authoritative import AuthoritativeDns
from .nameserver import DEFAULT_NS_TTL, LocalNameServer
from .records import AddressRecord


class ResolutionChain:
    """Routes client resolutions through per-domain name servers.

    Parameters
    ----------
    dns:
        The authoritative :class:`AuthoritativeDns`.
    domain_count:
        Number of client domains (one NS each).
    min_accepted_ttl:
        Non-cooperative threshold applied by every NS (paper Figs. 4-5
        model the worst case where *all* NSs share the threshold).
    default_ttl:
        TTL substituted by an NS in ``"default"`` override mode.
    override_mode:
        ``"clamp"`` (paper) or ``"default"`` — see
        :class:`~repro.dns.nameserver.LocalNameServer`.
    nameservers_per_domain:
        Size of each domain's NS set (paper base model: 1).
    tracer:
        Optional tracer, handed to every NS (``"ns"`` records).
    metrics:
        Optional :class:`~repro.obs.MetricsRegistry`; the chain
        registers its cache/authoritative answer counters and the
        aggregate TTL-override count.
    """

    def __init__(
        self,
        dns: AuthoritativeDns,
        domain_count: int,
        min_accepted_ttl: float = 0.0,
        default_ttl: float = DEFAULT_NS_TTL,
        override_mode: str = "clamp",
        nameservers_per_domain: int = 1,
        tracer=None,
        metrics=None,
    ):
        if domain_count < 1:
            raise ConfigurationError(f"domain_count must be >= 1, got {domain_count!r}")
        if nameservers_per_domain < 1:
            raise ConfigurationError(
                f"nameservers_per_domain must be >= 1, "
                f"got {nameservers_per_domain!r}"
            )
        self.dns = dns
        self.nameservers_per_domain = nameservers_per_domain
        self._by_domain: List[List[LocalNameServer]] = [
            [
                LocalNameServer(
                    domain_id=d,
                    upstream=dns.resolve,
                    min_accepted_ttl=min_accepted_ttl,
                    default_ttl=default_ttl,
                    override_mode=override_mode,
                    tracer=tracer,
                )
                for _ in range(nameservers_per_domain)
            ]
            for d in range(domain_count)
        ]
        #: Flat view over every NS (first entry per domain when the set
        #: size is 1 — the paper's base model and the common test case).
        self.nameservers: List[LocalNameServer] = [
            ns for group in self._by_domain for ns in group
        ]
        #: Resolutions answered from an NS cache.
        self.cache_answers = 0
        #: Resolutions answered by the authoritative DNS.
        self.authoritative_answers = 0
        if metrics is not None:
            metrics.register("ns.cache_answers", lambda: self.cache_answers)
            metrics.register(
                "ns.authoritative_answers", lambda: self.authoritative_answers
            )
            metrics.register(
                "ns.ttl_overrides",
                lambda: sum(self.ttl_override_counts().values()),
            )

    def nameserver_for(self, domain_id: int, client_id: int = 0) -> LocalNameServer:
        """The NS a given client of ``domain_id`` is configured to use."""
        group = self._by_domain[domain_id]
        return group[client_id % len(group)]

    def resolve(
        self, domain_id: int, now: float, client_id: int = 0
    ) -> AddressRecord:
        """Resolve the site name on behalf of a client in ``domain_id``."""
        record, from_cache = self.nameserver_for(domain_id, client_id).resolve(
            now
        )
        if from_cache:
            self.cache_answers += 1
        else:
            self.authoritative_answers += 1
        return record

    @property
    def dns_control_fraction(self) -> float:
        """Fraction of resolutions the authoritative DNS answered.

        The paper notes this is often below 4% of the *data* requests;
        measured over resolutions it is higher, but both views are
        derivable (data-request control is tracked by the simulation).
        """
        total = self.cache_answers + self.authoritative_answers
        return self.authoritative_answers / total if total else 0.0

    def ttl_override_counts(self) -> Dict[int, int]:
        """Per-domain counts of NS-overridden TTL recommendations."""
        counts: Dict[int, int] = {}
        for ns in self.nameservers:
            counts[ns.domain_id] = counts.get(ns.domain_id, 0) + ns.overridden_ttls
        return counts

    def snapshot_state(self) -> dict:
        """Answer counters plus every NS cache's state (for checkpoints).

        NS caches hold the entire "invisible to the DNS" side of the
        model — entry contents, expiry times and the lazy-removal clock
        all decide which future resolutions reach the authoritative
        server, so a resume digest must cover each one exactly.
        """
        return {
            "cache_answers": self.cache_answers,
            "authoritative_answers": self.authoritative_answers,
            "nameservers": [
                {
                    "domain": ns.domain_id,
                    "overridden_ttls": ns.overridden_ttls,
                    "cache": ns.cache.snapshot_state(),
                }
                for ns in self.nameservers
            ],
        }

    def __repr__(self) -> str:
        return (
            f"<ResolutionChain domains={len(self._by_domain)} "
            f"ns_per_domain={self.nameservers_per_domain} "
            f"cache={self.cache_answers} authoritative={self.authoritative_answers}>"
        )
