"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
letting programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class SimulationError(ReproError):
    """An error raised by the discrete-event simulation engine."""


class StopProcess(SimulationError):
    """Raised inside a process to terminate it early with a return value.

    Prefer a plain ``return`` statement inside process generators; this
    exception exists for code that must abort from a helper function deep
    inside a process body.
    """

    def __init__(self, value=None):
        super().__init__(value)
        self.value = value


class ConfigurationError(ReproError):
    """An invalid simulation or experiment configuration was supplied."""


class PolicyError(ReproError):
    """A scheduling policy was misconfigured or misused."""


class UnknownPolicyError(PolicyError):
    """A policy name could not be resolved by the policy registry."""

    def __init__(self, name: str, known: list):
        self.name = name
        self.known = list(known)
        super().__init__(
            f"unknown policy {name!r}; known policies: {', '.join(self.known)}"
        )

    def __reduce__(self):
        # Default exception pickling replays ``cls(*args)`` where args is
        # the formatted message — the wrong signature. Spelling out the
        # constructor call keeps the error transportable across the
        # process boundary of the parallel experiment executor.
        return (UnknownPolicyError, (self.name, self.known))


class EstimationError(ReproError):
    """The hidden-load estimator was queried in an invalid state."""


class CheckpointError(ReproError):
    """A checkpoint could not be written, read or applied."""


class DispatchError(ReproError):
    """The multi-host dispatch layer failed to execute a batch.

    Raised by the remote execution backend when a grid cannot complete:
    a cell raised on every worker that leased it, the coordinator's
    overall deadline expired, or the wire protocol was violated. Worker
    *crashes* do not raise this — a died or stalled worker's cells are
    re-leased to surviving workers and the batch carries on.
    """


class CheckpointMismatchError(CheckpointError):
    """A resumed run diverged from the state a checkpoint recorded.

    Raised when replaying a run to a checkpoint's cut point does not
    reproduce the checkpointed state bit-for-bit — the engine, the model
    code or the configuration changed since the checkpoint was written,
    so continuing would silently produce a trajectory that is *not* the
    interrupted run's.
    """

    def __init__(self, field: str, expected, actual):
        self.field = field
        self.expected = expected
        self.actual = actual
        super().__init__(
            f"checkpoint mismatch in {field!r}: checkpoint recorded "
            f"{expected!r} but the replayed run produced {actual!r}"
        )

    def __reduce__(self):
        # Same pickling pitfall as UnknownPolicyError: the default
        # exception reduce replays ``cls(*args)`` with the formatted
        # message, which is the wrong constructor signature here.
        return (CheckpointMismatchError, (self.field, self.expected, self.actual))
