"""Experiment harness: configuration, simulation assembly, figures."""

from .checkpointing import (
    resume_run,
    run_checkpointed_cell,
    run_with_checkpoints,
    take_checkpoint,
    verify_checkpoint,
)
from .config import PAPER_DEFAULTS, PAPER_DURATION, SimulationConfig
from .dispatch import (
    BACKENDS,
    Backend,
    LocalBackend,
    RemoteBackend,
    resolve_backend,
)
from .executor import ExecutionStats, ParallelExecutor, resolve_workers
from .figures import (
    FIGURES,
    FigureResult,
    Series,
    default_duration,
    fig1,
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    table1,
    table2,
)
from .metrics import (
    OVERLOAD_THRESHOLD,
    MaxUtilizationCollector,
    SimulationResult,
)
from .grid import GridResult, run_grid
from .paper import CHECKS
from .persistence import (
    config_from_dict,
    config_to_dict,
    figure_from_dict,
    figure_to_dict,
    load_json,
    result_from_dict,
    result_to_dict,
    save_json,
)
from .reporting import (
    figure_to_csv,
    format_table,
    render_comparison,
    render_execution,
    render_figure,
    render_result,
)
from .runner import ReplicationSet, compare_policies, run_replications, sweep
from .simulation import Simulation, run_simulation
from .validation import ValidationCheck, ValidationReport, validate_run

__all__ = [
    "BACKENDS",
    "Backend",
    "CHECKS",
    "ExecutionStats",
    "LocalBackend",
    "RemoteBackend",
    "resolve_backend",
    "FIGURES",
    "FigureResult",
    "GridResult",
    "MaxUtilizationCollector",
    "OVERLOAD_THRESHOLD",
    "PAPER_DEFAULTS",
    "PAPER_DURATION",
    "ParallelExecutor",
    "ReplicationSet",
    "Series",
    "Simulation",
    "SimulationConfig",
    "SimulationResult",
    "ValidationCheck",
    "ValidationReport",
    "compare_policies",
    "config_from_dict",
    "config_to_dict",
    "default_duration",
    "figure_from_dict",
    "figure_to_dict",
    "load_json",
    "result_from_dict",
    "result_to_dict",
    "save_json",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "figure_to_csv",
    "format_table",
    "render_comparison",
    "render_execution",
    "render_figure",
    "render_result",
    "resolve_workers",
    "resume_run",
    "run_checkpointed_cell",
    "run_grid",
    "run_replications",
    "run_simulation",
    "run_with_checkpoints",
    "sweep",
    "take_checkpoint",
    "verify_checkpoint",
    "validate_run",
    "table1",
    "table2",
]
