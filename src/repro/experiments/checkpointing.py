"""Checkpointed execution: segmented runs, simulated crashes, verified resume.

This is the model-aware half of checkpointing (the generic snapshot
format and file IO live in :mod:`repro.sim.checkpoint`). A run started
through :func:`run_with_checkpoints` advances the clock in
``checkpoint_every``-second segments and writes one
:class:`~repro.sim.checkpoint.Checkpoint` at each boundary; a later
:func:`resume_run` rebuilds the simulation from the recorded config,
replays deterministically to the last checkpoint, *verifies* that the
replayed model state reproduces the checkpoint digest bit-for-bit
(:class:`~repro.errors.CheckpointMismatchError` otherwise) and then
continues to completion — still checkpointing on the original cadence,
so a resumed run can itself be interrupted and resumed again.

Why replay instead of restore: simulation processes are live generator
frames, which CPython cannot serialize. A run, however, is a pure
function of its config (the property the parallel executor is built on),
so replaying to the cut reconstructs the heap's continuations *exactly*
— and the digest check turns "exactly" from a claim into a verified
invariant. The resume-equivalence test suite pins the stronger end-to-end
property: trajectory, metrics snapshot and trace stream of an
interrupted-and-resumed run are bit-identical to an uninterrupted one.

Simulated crashes: ``halt_at`` stops a run (returning ``None``) at the
first checkpoint boundary at or past the given simulated time. Unlike
killing a process, the halt point is deterministic, which is what the
CI resume-parity job and the integration tests need.
"""

from __future__ import annotations

import pathlib
from typing import Any, Dict, Optional, Tuple, Union

from ..errors import CheckpointError, CheckpointMismatchError
from ..sim.checkpoint import (
    Checkpoint,
    canonical_state,
    config_digest,
    latest_checkpoint,
    list_checkpoints,
    state_digest,
    write_checkpoint,
)
from ..obs.export import read_trace_jsonl
from .config import SimulationConfig
from .metrics import SimulationResult
from .persistence import (
    config_from_dict,
    config_to_dict,
    load_json,
    save_run_artifacts,
)
from .simulation import Simulation

PathLike = Union[str, pathlib.Path]

#: Artifact stem used for checkpointed bundles (matches ``repro run``).
DEFAULT_STEM = "run"


def _engine_version() -> str:
    """``repro.__version__`` (imported lazily: this module is pulled in
    by the package ``__init__`` before the version constant exists)."""
    from .. import __version__

    return __version__


def take_checkpoint(
    sim: Simulation, sequence: int, every: float
) -> Checkpoint:
    """Snapshot ``sim`` at its current clock as checkpoint ``sequence``."""
    # Canonicalized so the in-memory checkpoint equals its file round
    # trip exactly (config fields may hold tuples; JSON reads lists).
    config_dict = canonical_state(config_to_dict(sim.config))
    state = canonical_state(sim.snapshot_state())
    return Checkpoint(
        sequence=sequence,
        time=sim.env.now,
        dispatched=sim.env.dispatched,
        config=config_dict,
        config_hash=config_digest(config_dict),
        seed=sim.config.seed,
        every=float(every),
        state=state,
        digest=state_digest(state),
        engine_version=_engine_version(),
        engine_mode=sim.engine_mode,
    )


def verify_checkpoint(sim: Simulation, checkpoint: Checkpoint) -> None:
    """Prove that ``sim``'s replayed state matches ``checkpoint``.

    Raises :class:`~repro.errors.CheckpointMismatchError` naming the
    first diverging piece of state: the dispatched-event count, or the
    first state section (``state.rng``, ``state.servers``, ...) whose
    sub-digest differs. Passing silently is the proof obligation of a
    resume — the replayed simulation *is* the interrupted one.
    """
    if sim.env.dispatched != checkpoint.dispatched:
        raise CheckpointMismatchError(
            "dispatched", checkpoint.dispatched, sim.env.dispatched
        )
    state = canonical_state(sim.snapshot_state())
    digest = state_digest(state)
    if digest == checkpoint.digest:
        return
    # Name the first diverging section so the error is actionable.
    for section in sorted(set(state) | set(checkpoint.state)):
        expected = state_digest(checkpoint.state.get(section))
        actual = state_digest(state.get(section))
        if expected != actual:
            raise CheckpointMismatchError(
                f"state.{section}", expected, actual
            )
    raise CheckpointMismatchError("digest", checkpoint.digest, digest)


def _drive(
    sim: Simulation,
    directory: pathlib.Path,
    every: float,
    halt_at: Optional[float],
    start_sequence: int,
) -> bool:
    """Advance ``sim`` to completion, checkpointing every ``every`` seconds.

    Checkpoint ``k`` is taken at simulated time ``k * every`` (recomputed
    as a product each time, never accumulated, so a resumed run hits the
    same float boundaries as the original). Returns ``True`` on
    completion, ``False`` when ``halt_at`` triggered a simulated crash.
    """
    duration = sim.config.duration
    sequence = start_sequence
    while True:
        boundary = sequence * every
        if boundary >= duration:
            break
        sim.advance(boundary)
        write_checkpoint(take_checkpoint(sim, sequence, every), directory)
        if halt_at is not None and boundary >= halt_at:
            return False
        sequence += 1
    sim.advance(duration)
    return True


def _finalize(
    sim: Simulation,
    directory: pathlib.Path,
    stem: str,
    every: float,
    resumed: bool,
) -> SimulationResult:
    """Collect the completed run and write its artifact bundle."""
    result = sim.collect()
    extra = {
        "checkpoint_every": float(every),
        "checkpoints_written": len(list_checkpoints(directory)),
        "resumed": resumed,
    }
    engine_info = sim.engine_info
    if engine_info["fallbacks"]:
        extra["engine_fallbacks"] = engine_info["fallbacks"]
    extra["workload"] = sim.workload_info
    # When this cell runs inside a dispatch worker, stamp the worker's
    # identity into the manifest — provenance only, never the result.
    from .dispatch.context import dispatch_context

    save_run_artifacts(
        result,
        directory,
        stem=stem,
        extra=extra,
        engine_mode=engine_info["effective_mode"],
        dispatch=dispatch_context(),
    )
    return result


def run_with_checkpoints(
    config: SimulationConfig,
    *,
    every: float,
    directory: PathLike,
    halt_at: Optional[float] = None,
    stem: str = DEFAULT_STEM,
    engine_mode: str = "event",
) -> Optional[SimulationResult]:
    """Run ``config`` with periodic checkpoints into ``directory``.

    Writes one checkpoint every ``every`` simulated seconds. On
    completion the full run-artifact bundle (result JSON, manifest,
    trace JSONL, Prometheus metrics — see
    :func:`~repro.experiments.persistence.save_run_artifacts`) is
    written next to the checkpoints and the
    :class:`~repro.experiments.metrics.SimulationResult` is returned.

    ``halt_at`` simulates a crash: the run stops and returns ``None``
    at the first checkpoint boundary at or past that simulated time,
    leaving only the checkpoints behind for :func:`resume_run`.

    ``engine_mode`` selects the dispatch engine. Checkpoint cuts and
    digests are identical in either mode (that is the fast-forward
    equivalence guarantee); the mode is recorded in each checkpoint so
    a resume defaults to it.
    """
    if every <= 0:
        raise CheckpointError(
            f"checkpoint cadence must be > 0 seconds, got {every!r}"
        )
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    sim = Simulation(config, engine_mode=engine_mode)
    completed = _drive(
        sim, directory, float(every), halt_at, start_sequence=1
    )
    if not completed:
        return None
    return _finalize(sim, directory, stem, float(every), resumed=False)


def resume_run(
    directory: PathLike,
    *,
    halt_at: Optional[float] = None,
    stem: str = DEFAULT_STEM,
    engine_mode: Optional[str] = None,
) -> Optional[SimulationResult]:
    """Resume the interrupted run checkpointed under ``directory``.

    Loads the latest checkpoint, rebuilds the simulation from its
    recorded config, replays to the recorded cut, verifies the state
    digest bit-for-bit (:class:`~repro.errors.CheckpointMismatchError`
    on any divergence — a changed engine, edited config or
    nondeterminism), then continues to completion on the original
    checkpoint cadence. Returns the completed run's result — bit-equal
    to what the uninterrupted run would have returned — or ``None`` if
    ``halt_at`` interrupted the resumed run again.

    ``engine_mode=None`` (default) resumes in the mode the checkpoint
    was written under. Requesting a *different* mode explicitly is
    refused up front with a :class:`~repro.errors.CheckpointMismatchError`
    naming ``engine_mode`` — not because the trajectories would differ
    (they are bit-identical), but because a cross-mode resume is almost
    always an operator mistake, and refusing by name beats letting any
    real divergence surface later as a digest mystery.

    Refuses checkpoints written by a different package version: replay
    equivalence is only guaranteed within one engine build, and a silent
    cross-version resume could verify vacuously or fail confusingly.
    """
    directory = pathlib.Path(directory)
    checkpoint = latest_checkpoint(directory)
    if checkpoint is None:
        raise CheckpointError(f"no checkpoints found under {directory}")
    version = _engine_version()
    if checkpoint.engine_version != version:
        raise CheckpointError(
            f"checkpoint was written by repro {checkpoint.engine_version}, "
            f"this is repro {version}; re-run instead of resuming"
        )
    if engine_mode is None:
        engine_mode = checkpoint.engine_mode
    elif engine_mode != checkpoint.engine_mode:
        raise CheckpointMismatchError(
            "engine_mode", checkpoint.engine_mode, engine_mode
        )
    recorded_hash = config_digest(checkpoint.config)
    if recorded_hash != checkpoint.config_hash:
        raise CheckpointMismatchError(
            "config_hash", checkpoint.config_hash, recorded_hash
        )
    config = config_from_dict(checkpoint.config)
    sim = Simulation(config, engine_mode=engine_mode)
    sim.advance(checkpoint.time)
    verify_checkpoint(sim, checkpoint)
    completed = _drive(
        sim,
        directory,
        checkpoint.every,
        halt_at,
        start_sequence=checkpoint.sequence + 1,
    )
    if not completed:
        return None
    return _finalize(
        sim, directory, stem, checkpoint.every, resumed=True
    )


# -- parallel-executor integration -------------------------------------------

#: One checkpointed grid cell:
#: ``(config_dict, directory, every, engine_mode)``. The config travels
#: as its serialized dict so the task tuple pickles compactly and
#: identically however the worker pool is shaped.
CellTask = Tuple[Dict[str, Any], str, float, str]


def make_cell_task(
    config: SimulationConfig,
    directory: PathLike,
    every: float,
    engine_mode: str = "event",
) -> CellTask:
    """Build the picklable task tuple for one checkpointed cell."""
    return (
        config_to_dict(config),
        str(directory),
        float(every),
        engine_mode,
    )


def run_checkpointed_cell(task: CellTask) -> SimulationResult:
    """Run, resume or reload one grid cell under checkpointing.

    Module-level so it pickles into executor worker processes. The
    cell's directory is its restart ledger:

    * a finished ``run.json`` is reloaded and returned (the cell is
      done — an interrupted *grid* must not redo completed cells);
    * checkpoints without a result mean the cell was interrupted —
      resume from the latest checkpoint (digest-verified);
    * an empty directory starts the cell fresh.

    A reloaded cell is cross-checked against the requested config: a
    stale or colliding checkpoint directory raises
    :class:`~repro.errors.CheckpointMismatchError` instead of silently
    returning the wrong cell's numbers.
    """
    if len(task) == 3:
        # Task tuples built before the engine_mode slot existed.
        config_dict, directory, every = task
        engine_mode = "event"
    else:
        config_dict, directory, every, engine_mode = task
    config = config_from_dict(config_dict)
    cell_dir = pathlib.Path(directory)
    result_path = cell_dir / f"{DEFAULT_STEM}.json"
    if result_path.exists():
        result = load_json(result_path)
        if not isinstance(result, SimulationResult):
            raise CheckpointError(
                f"{result_path} does not hold a simulation result"
            )
        if result.config is None or config_to_dict(result.config) != config_dict:
            raise CheckpointMismatchError(
                "config",
                config_digest(config_dict),
                config_digest(
                    config_to_dict(result.config)
                    if result.config is not None
                    else {}
                ),
            )
        if config.trace:
            trace_path = cell_dir / f"{DEFAULT_STEM}.trace.jsonl"
            if trace_path.exists():
                result.trace = read_trace_jsonl(trace_path)
        return result
    checkpoint = latest_checkpoint(cell_dir)
    if checkpoint is not None:
        if config_digest(checkpoint.config) != config_digest(config_dict):
            raise CheckpointMismatchError(
                "config",
                config_digest(config_dict),
                config_digest(checkpoint.config),
            )
        # The requested mode is passed explicitly: an interrupted cell
        # resumed under a different --engine-mode refuses by name
        # (CheckpointMismatchError) instead of silently switching.
        resumed = resume_run(cell_dir, engine_mode=engine_mode)
        assert resumed is not None  # no halt_at in executor cells
        return resumed
    result = run_with_checkpoints(
        config, every=every, directory=cell_dir, engine_mode=engine_mode
    )
    assert result is not None
    return result
