"""Simulation configuration — the paper's Table 1 and Table 2 as code.

:class:`SimulationConfig` is an immutable description of one simulation
run: the policy under test, the system shape (servers, heterogeneity,
capacity), the workload (domains, clients, session model), the control
parameters (alarm threshold, utilization interval, TTLs) and the
robustness knobs (non-cooperative minimum TTL, workload perturbation,
estimator choice). Defaults reproduce Table 1.

Two Table 1 values are corrupted in the available scan of the paper and
are therefore explicit, documented choices here (see DESIGN.md):
``mean_think_time = 15 s`` (the value consistent with the stated 2/3
average utilization), ``alarm_threshold = 0.9`` and
``utilization_interval = 32 s``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..sim.distributions import DiscreteUniform, Exponential, Geometric
from ..sim.tracing import TRACE_CATEGORIES
from ..web.cluster import (
    DEFAULT_TOTAL_CAPACITY,
    HETEROGENEITY_LEVELS,
    ServerCluster,
)
from ..workload.domains import DomainSet
from ..workload.sessions import SessionModel

#: Table 1 — default simulated duration: five hours of site activity.
PAPER_DURATION = 5 * 3600.0

ESTIMATOR_KINDS = ("oracle", "measured", "window")


@dataclass(frozen=True)
class SimulationConfig:
    """Full description of one simulation run (defaults = Table 1)."""

    # -- policy ---------------------------------------------------------
    #: Policy name (see :func:`repro.core.parse_policy_name`).
    policy: str = "RR"
    #: Constant/reference TTL in seconds.
    constant_ttl: float = 240.0

    # -- web site (Tables 1-2) -------------------------------------------
    #: Heterogeneity level in percent (one of Table 2's rows); ignored
    #: when ``relative_capacities`` is given.
    heterogeneity: int = 20
    #: Explicit relative capacities, overriding ``heterogeneity``.
    relative_capacities: Optional[Tuple[float, ...]] = None
    #: Total site capacity in hits per second.
    total_capacity: float = DEFAULT_TOTAL_CAPACITY

    # -- workload ---------------------------------------------------------
    #: Number of connected client domains K.
    domain_count: int = 20
    #: Zipf exponent of the client partition (1.0 = pure Zipf).
    zipf_exponent: float = 1.0
    #: Force a uniform client distribution (the IDEAL envelope); also
    #: set automatically when the policy is ``IDEAL``.
    uniform_domains: bool = False
    #: Total number of clients.
    total_clients: int = 500
    #: Mean think time between page requests (seconds).
    mean_think_time: float = 15.0
    #: Mean page requests per session.
    mean_pages_per_session: float = 20.0
    #: Hits per page: discrete uniform inclusive bounds.
    hits_per_page: Tuple[int, int] = (5, 15)
    #: Workload perturbation e (Figs. 6-7): the busiest domain's share is
    #: increased by this fraction while estimates stay unperturbed.
    workload_error: float = 0.0
    #: Non-stationary workload (extension): rotate the identities of the
    #: hottest domains every this many seconds (0 = static workload).
    hot_rotation_interval: float = 0.0
    #: How many top domains take part in the rotation.
    hot_rotation_count: int = 5
    #: Clients cache their own address mapping across sessions while the
    #: TTL is valid (extension; the paper's base model resolves once per
    #: session through the domain NS only).
    client_address_caching: bool = False

    # -- control loop -------------------------------------------------------
    #: Period of server utilization self-measurement (seconds). The scan
    #: of the paper prints "8 sec" but the digit preceding the 8 is
    #: corrupted; 32 s reproduces the paper's Fig. 1 values closely
    #: (8 s windows are too noisy: the max-of-7 statistic then rarely
    #: stays below 0.9 even under the Ideal policy).
    utilization_interval: float = 32.0
    #: Alarm threshold theta on windowed utilization.
    alarm_threshold: float = 0.9
    #: Disable the alarm feedback entirely (ablation).
    alarm_feedback: bool = True

    # -- name servers --------------------------------------------------------
    #: Non-cooperative NS threshold: recommended TTLs below this are
    #: overridden (Figs. 4-5). 0 = cooperative.
    min_accepted_ttl: float = 0.0
    #: How an NS overrides a too-small TTL: ``"clamp"`` caches for the
    #: threshold itself (the paper's "NSs imposing their own minimum TTL
    #: thresholds"); ``"default"`` caches for ``ns_default_ttl``.
    ns_override_mode: str = "clamp"
    #: TTL substituted by a non-cooperative NS in ``"default"`` mode.
    ns_default_ttl: float = 240.0
    #: Size of each domain's name-server set (the paper's "a (set of)
    #: local name server(s)"); clients are partitioned across the set.
    nameservers_per_domain: int = 1

    # -- estimation ------------------------------------------------------------
    #: ``"oracle"`` (exact static shares), ``"measured"`` (periodic
    #: collection from the servers + EWMA) or ``"window"`` (sliding
    #: window over recent collection intervals).
    estimator: str = "oracle"
    #: Collection period of the measured/window estimators (seconds).
    estimator_interval: float = 32.0
    #: EWMA smoothing of the measured estimator, in (0, 1].
    estimator_smoothing: float = 0.5
    #: Window length of the sliding-window estimator, in intervals.
    estimator_window_intervals: int = 8

    # -- geography (extension) ---------------------------------------------------
    #: ``"none"`` (the paper's model), ``"random"`` or ``"clustered"`` —
    #: attaches a geographic layout; page response metrics then include
    #: network RTT and the PROXIMITY/GEO-HYBRID policies become valid.
    geography: str = "none"
    #: RTT floor in seconds.
    geo_base_rtt: float = 0.005
    #: RTT per unit distance on the unit plane, in seconds.
    geo_rtt_per_unit: float = 0.100

    # -- run control --------------------------------------------------------------
    #: Simulated duration in seconds.
    duration: float = PAPER_DURATION
    #: Samples taken before this time are discarded.
    warmup: float = 0.0
    #: Master random seed.
    seed: int = 1
    #: Record a trace of the run (slower; for analysis). See
    #: :data:`repro.sim.tracing.TRACE_CATEGORIES` for what gets traced.
    trace: bool = False
    #: Categories to trace when ``trace`` is on (``None`` = all). Must be
    #: a subset of :data:`repro.sim.tracing.TRACE_CATEGORIES`.
    trace_categories: Optional[Tuple[str, ...]] = None
    #: Retain the full per-interval utilization vectors in the result
    #: (enables the :mod:`repro.analysis` time-series tools).
    keep_utilization_series: bool = False

    def __post_init__(self):
        if self.relative_capacities is None:
            if self.heterogeneity not in HETEROGENEITY_LEVELS:
                known = ", ".join(str(k) for k in sorted(HETEROGENEITY_LEVELS))
                raise ConfigurationError(
                    f"unknown heterogeneity level {self.heterogeneity!r}; "
                    f"known: {known} (or pass relative_capacities)"
                )
        if self.domain_count < 1:
            raise ConfigurationError("domain_count must be >= 1")
        if self.total_clients < 1:
            raise ConfigurationError("total_clients must be >= 1")
        if self.duration <= 0:
            raise ConfigurationError("duration must be > 0")
        if not 0 <= self.warmup < self.duration:
            raise ConfigurationError("warmup must be in [0, duration)")
        if self.utilization_interval <= 0:
            raise ConfigurationError("utilization_interval must be > 0")
        if not 0 < self.alarm_threshold <= 1:
            raise ConfigurationError("alarm_threshold must be in (0, 1]")
        if self.constant_ttl <= 0:
            raise ConfigurationError("constant_ttl must be > 0")
        if self.min_accepted_ttl < 0:
            raise ConfigurationError("min_accepted_ttl must be >= 0")
        if self.ns_override_mode not in ("clamp", "default"):
            raise ConfigurationError(
                f"ns_override_mode must be 'clamp' or 'default', "
                f"got {self.ns_override_mode!r}"
            )
        if self.nameservers_per_domain < 1:
            raise ConfigurationError("nameservers_per_domain must be >= 1")
        if self.geography not in ("none", "random", "clustered"):
            raise ConfigurationError(
                f"geography must be 'none', 'random' or 'clustered', "
                f"got {self.geography!r}"
            )
        if self.geo_base_rtt < 0 or self.geo_rtt_per_unit < 0:
            raise ConfigurationError("geo RTT parameters must be >= 0")
        if self.workload_error < 0:
            raise ConfigurationError("workload_error must be >= 0")
        if self.estimator not in ESTIMATOR_KINDS:
            raise ConfigurationError(
                f"estimator must be one of {ESTIMATOR_KINDS}, got {self.estimator!r}"
            )
        if self.estimator_window_intervals < 1:
            raise ConfigurationError("estimator_window_intervals must be >= 1")
        if self.hot_rotation_interval < 0:
            raise ConfigurationError("hot_rotation_interval must be >= 0")
        if self.hot_rotation_interval > 0:
            if not 2 <= self.hot_rotation_count <= self.domain_count:
                raise ConfigurationError(
                    "hot_rotation_count must be in [2, domain_count] when "
                    "rotation is enabled"
                )
        if self.hits_per_page[0] < 1 or self.hits_per_page[1] < self.hits_per_page[0]:
            raise ConfigurationError(f"bad hits_per_page {self.hits_per_page!r}")
        if self.trace_categories is not None:
            # Normalize (JSON round-trips lists) and validate.
            categories = tuple(self.trace_categories)
            object.__setattr__(self, "trace_categories", categories)
            unknown = [c for c in categories if c not in TRACE_CATEGORIES]
            if unknown:
                known = ", ".join(TRACE_CATEGORIES)
                raise ConfigurationError(
                    f"unknown trace categories {unknown!r}; known: {known}"
                )

    # -- factories ---------------------------------------------------------

    def replace(self, **changes) -> "SimulationConfig":
        """A copy of this config with ``changes`` applied."""
        return dataclasses.replace(self, **changes)

    def build_cluster(self) -> ServerCluster:
        """The web-server cluster this config describes."""
        if self.relative_capacities is not None:
            return ServerCluster(self.relative_capacities, self.total_capacity)
        return ServerCluster.from_heterogeneity(
            self.heterogeneity, self.total_capacity
        )

    def build_domains(self) -> DomainSet:
        """The *nominal* (unperturbed) domain popularity."""
        if self.uniform_domains:
            return DomainSet.uniform(self.domain_count)
        return DomainSet.pure_zipf(self.domain_count, self.zipf_exponent)

    def build_session_model(self) -> SessionModel:
        """Session/page/think-time distributions for this config."""
        return SessionModel(
            pages_per_session=Geometric(self.mean_pages_per_session),
            hits_per_page=DiscreteUniform(*self.hits_per_page),
            think_time=Exponential(self.mean_think_time),
        )

    @property
    def offered_utilization(self) -> float:
        """Expected average system utilization under this config."""
        return self.build_session_model().offered_load(
            self.total_clients, self.total_capacity
        )

    def describe(self) -> List[Tuple[str, str]]:
        """Human-readable (parameter, value) pairs, Table 1 style."""
        return [
            ("Policy", self.policy),
            ("Connected domains K", str(self.domain_count)),
            ("Client distribution",
             "uniform" if self.uniform_domains
             else f"pure Zipf (exponent {self.zipf_exponent:g})"),
            ("Total clients", str(self.total_clients)),
            ("Mean think time", f"{self.mean_think_time:g} s"),
            ("Mean pages per session", f"{self.mean_pages_per_session:g}"),
            ("Hits per page",
             f"uniform {{{self.hits_per_page[0]}..{self.hits_per_page[1]}}}"),
            ("Servers N",
             str(len(self.relative_capacities))
             if self.relative_capacities is not None else "7"),
            ("Heterogeneity", f"{self.heterogeneity}%"),
            ("Total capacity", f"{self.total_capacity:g} hits/s"),
            ("Average utilization", f"{self.offered_utilization:.3f}"),
            ("Utilization interval", f"{self.utilization_interval:g} s"),
            ("Alarm threshold theta", f"{self.alarm_threshold:g}"),
            ("Constant TTL", f"{self.constant_ttl:g} s"),
            ("Min accepted TTL", f"{self.min_accepted_ttl:g} s"),
            ("Workload perturbation", f"{self.workload_error:.0%}"),
            ("Estimator", self.estimator),
            ("Duration", f"{self.duration:g} s"),
            ("Seed", str(self.seed)),
        ]


#: The paper's default configuration (Table 1 with the documented choices
#: for the scan-corrupted entries).
PAPER_DEFAULTS = SimulationConfig()
