"""Simulation configuration — the paper's Table 1 and Table 2 as code.

:class:`SimulationConfig` is an immutable description of one simulation
run: the policy under test, the system shape (servers, heterogeneity,
capacity), the workload (domains, clients, session model), the control
parameters (alarm threshold, utilization interval, TTLs) and the
robustness knobs (non-cooperative minimum TTL, workload perturbation,
estimator choice). Defaults reproduce Table 1.

Two Table 1 values are corrupted in the available scan of the paper and
are therefore explicit, documented choices here (see DESIGN.md):
``mean_think_time = 15 s`` (the value consistent with the stated 2/3
average utilization), ``alarm_threshold = 0.9`` and
``utilization_interval = 32 s``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..sim.distributions import DiscreteUniform, Exponential, Geometric
from ..sim.tracing import TRACE_CATEGORIES
from ..web.cluster import (
    DEFAULT_TOTAL_CAPACITY,
    HETEROGENEITY_LEVELS,
    ServerCluster,
)
from ..workload.domains import LAZY_DOMAIN_THRESHOLD, DomainSet, LazyDomainSet
from ..workload.sessions import SessionModel
from ..workload.shards import DEFAULT_SHARD_SIZE
from ..workload.trace import ArrivalSchedule

#: Table 1 — default simulated duration: five hours of site activity.
PAPER_DURATION = 5 * 3600.0

ESTIMATOR_KINDS = ("oracle", "measured", "window")

#: Client-population implementations. ``"eager"`` spawns one generator
#: process per client (the historical model); ``"lazy"`` is the sharded
#: flat-slot population (:mod:`repro.workload.shards`) — bit-identical
#: trajectories, bounded memory; ``"auto"`` picks lazy at or above
#: :data:`LAZY_POPULATION_THRESHOLD` clients.
POPULATION_KINDS = ("auto", "eager", "lazy")

#: ``"auto"`` switches to the lazy population at this client count.
LAZY_POPULATION_THRESHOLD = 100_000

#: Workload sources: the closed synthetic population or the open
#: trace-driven arrival process (:mod:`repro.workload.trace`).
WORKLOAD_SOURCES = ("synthetic", "trace")

#: Arrival-rate profiles of the trace-driven source.
TRACE_PROFILES = ("constant", "ramp", "diurnal", "replay")


@dataclass(frozen=True)
class SimulationConfig:
    """Full description of one simulation run (defaults = Table 1)."""

    # -- policy ---------------------------------------------------------
    #: Policy name (see :func:`repro.core.parse_policy_name`).
    policy: str = "RR"
    #: Constant/reference TTL in seconds.
    constant_ttl: float = 240.0

    # -- web site (Tables 1-2) -------------------------------------------
    #: Heterogeneity level in percent (one of Table 2's rows); ignored
    #: when ``relative_capacities`` is given.
    heterogeneity: int = 20
    #: Explicit relative capacities, overriding ``heterogeneity``.
    relative_capacities: Optional[Tuple[float, ...]] = None
    #: Total site capacity in hits per second.
    total_capacity: float = DEFAULT_TOTAL_CAPACITY

    # -- workload ---------------------------------------------------------
    #: Number of connected client domains K.
    domain_count: int = 20
    #: Zipf exponent of the client partition (1.0 = pure Zipf).
    zipf_exponent: float = 1.0
    #: Force a uniform client distribution (the IDEAL envelope); also
    #: set automatically when the policy is ``IDEAL``.
    uniform_domains: bool = False
    #: Total number of clients.
    total_clients: int = 500
    #: Mean think time between page requests (seconds).
    mean_think_time: float = 15.0
    #: Mean page requests per session.
    mean_pages_per_session: float = 20.0
    #: Hits per page: discrete uniform inclusive bounds.
    hits_per_page: Tuple[int, int] = (5, 15)
    #: Workload perturbation e (Figs. 6-7): the busiest domain's share is
    #: increased by this fraction while estimates stay unperturbed.
    workload_error: float = 0.0
    #: Non-stationary workload (extension): rotate the identities of the
    #: hottest domains every this many seconds (0 = static workload).
    hot_rotation_interval: float = 0.0
    #: How many top domains take part in the rotation.
    hot_rotation_count: int = 5
    #: Clients cache their own address mapping across sessions while the
    #: TTL is valid (extension; the paper's base model resolves once per
    #: session through the domain NS only).
    client_address_caching: bool = False
    #: Client-population implementation: ``"auto"``, ``"eager"`` or
    #: ``"lazy"`` (see :data:`POPULATION_KINDS`). All choices produce
    #: bit-identical trajectories; this only selects the data layout.
    population: str = "auto"
    #: ``"synthetic"`` (closed population, the paper's model) or
    #: ``"trace"`` (open arrival process replaying a rate schedule).
    workload_source: str = "synthetic"
    #: Arrival-rate profile of the trace source (see
    #: :data:`TRACE_PROFILES`).
    trace_profile: str = "constant"
    #: Mean session arrival rate in sessions/second; 0 derives the rate
    #: that offers the same load as ``total_clients`` synthetic clients.
    trace_rate: float = 0.0
    #: Relative rate swing of the ramp/diurnal profiles, in [0, 1].
    trace_amplitude: float = 0.5
    #: Period of the diurnal profile in seconds.
    trace_period: float = 3600.0
    #: JSONL rate-trace path (required by the ``"replay"`` profile).
    trace_path: Optional[str] = None
    #: Clients per accounting shard of the lazy population (and target
    #: concurrent sessions per arrival shard of the trace source).
    shard_size: int = DEFAULT_SHARD_SIZE

    # -- control loop -------------------------------------------------------
    #: Period of server utilization self-measurement (seconds). The scan
    #: of the paper prints "8 sec" but the digit preceding the 8 is
    #: corrupted; 32 s reproduces the paper's Fig. 1 values closely
    #: (8 s windows are too noisy: the max-of-7 statistic then rarely
    #: stays below 0.9 even under the Ideal policy).
    utilization_interval: float = 32.0
    #: Alarm threshold theta on windowed utilization.
    alarm_threshold: float = 0.9
    #: Disable the alarm feedback entirely (ablation).
    alarm_feedback: bool = True

    # -- name servers --------------------------------------------------------
    #: Non-cooperative NS threshold: recommended TTLs below this are
    #: overridden (Figs. 4-5). 0 = cooperative.
    min_accepted_ttl: float = 0.0
    #: How an NS overrides a too-small TTL: ``"clamp"`` caches for the
    #: threshold itself (the paper's "NSs imposing their own minimum TTL
    #: thresholds"); ``"default"`` caches for ``ns_default_ttl``.
    ns_override_mode: str = "clamp"
    #: TTL substituted by a non-cooperative NS in ``"default"`` mode.
    ns_default_ttl: float = 240.0
    #: Size of each domain's name-server set (the paper's "a (set of)
    #: local name server(s)"); clients are partitioned across the set.
    nameservers_per_domain: int = 1

    # -- estimation ------------------------------------------------------------
    #: ``"oracle"`` (exact static shares), ``"measured"`` (periodic
    #: collection from the servers + EWMA) or ``"window"`` (sliding
    #: window over recent collection intervals).
    estimator: str = "oracle"
    #: Collection period of the measured/window estimators (seconds).
    estimator_interval: float = 32.0
    #: EWMA smoothing of the measured estimator, in (0, 1].
    estimator_smoothing: float = 0.5
    #: Window length of the sliding-window estimator, in intervals.
    estimator_window_intervals: int = 8

    # -- geography (extension) ---------------------------------------------------
    #: ``"none"`` (the paper's model), ``"random"`` or ``"clustered"`` —
    #: attaches a geographic layout; page response metrics then include
    #: network RTT and the PROXIMITY/GEO-HYBRID policies become valid.
    geography: str = "none"
    #: RTT floor in seconds.
    geo_base_rtt: float = 0.005
    #: RTT per unit distance on the unit plane, in seconds.
    geo_rtt_per_unit: float = 0.100

    # -- run control --------------------------------------------------------------
    #: Simulated duration in seconds.
    duration: float = PAPER_DURATION
    #: Samples taken before this time are discarded.
    warmup: float = 0.0
    #: Master random seed.
    seed: int = 1
    #: Record a trace of the run (slower; for analysis). See
    #: :data:`repro.sim.tracing.TRACE_CATEGORIES` for what gets traced.
    trace: bool = False
    #: Categories to trace when ``trace`` is on (``None`` = all). Must be
    #: a subset of :data:`repro.sim.tracing.TRACE_CATEGORIES`.
    trace_categories: Optional[Tuple[str, ...]] = None
    #: Retain the full per-interval utilization vectors in the result
    #: (enables the :mod:`repro.analysis` time-series tools).
    keep_utilization_series: bool = False

    def __post_init__(self):
        if self.relative_capacities is None:
            if self.heterogeneity not in HETEROGENEITY_LEVELS:
                known = ", ".join(str(k) for k in sorted(HETEROGENEITY_LEVELS))
                raise ConfigurationError(
                    f"unknown heterogeneity level {self.heterogeneity!r}; "
                    f"known: {known} (or pass relative_capacities)"
                )
        if self.domain_count < 1:
            raise ConfigurationError("domain_count must be >= 1")
        if self.total_clients < 1:
            raise ConfigurationError("total_clients must be >= 1")
        if self.duration <= 0:
            raise ConfigurationError("duration must be > 0")
        if not 0 <= self.warmup < self.duration:
            raise ConfigurationError("warmup must be in [0, duration)")
        if self.utilization_interval <= 0:
            raise ConfigurationError("utilization_interval must be > 0")
        if not 0 < self.alarm_threshold <= 1:
            raise ConfigurationError("alarm_threshold must be in (0, 1]")
        if self.constant_ttl <= 0:
            raise ConfigurationError("constant_ttl must be > 0")
        if self.min_accepted_ttl < 0:
            raise ConfigurationError("min_accepted_ttl must be >= 0")
        if self.ns_override_mode not in ("clamp", "default"):
            raise ConfigurationError(
                f"ns_override_mode must be 'clamp' or 'default', "
                f"got {self.ns_override_mode!r}"
            )
        if self.nameservers_per_domain < 1:
            raise ConfigurationError("nameservers_per_domain must be >= 1")
        if self.geography not in ("none", "random", "clustered"):
            raise ConfigurationError(
                f"geography must be 'none', 'random' or 'clustered', "
                f"got {self.geography!r}"
            )
        if self.geo_base_rtt < 0 or self.geo_rtt_per_unit < 0:
            raise ConfigurationError("geo RTT parameters must be >= 0")
        if self.workload_error < 0:
            raise ConfigurationError("workload_error must be >= 0")
        if self.estimator not in ESTIMATOR_KINDS:
            raise ConfigurationError(
                f"estimator must be one of {ESTIMATOR_KINDS}, got {self.estimator!r}"
            )
        if self.estimator_window_intervals < 1:
            raise ConfigurationError("estimator_window_intervals must be >= 1")
        if self.hot_rotation_interval < 0:
            raise ConfigurationError("hot_rotation_interval must be >= 0")
        if self.hot_rotation_interval > 0:
            if not 2 <= self.hot_rotation_count <= self.domain_count:
                raise ConfigurationError(
                    "hot_rotation_count must be in [2, domain_count] when "
                    "rotation is enabled"
                )
        if self.hits_per_page[0] < 1 or self.hits_per_page[1] < self.hits_per_page[0]:
            raise ConfigurationError(f"bad hits_per_page {self.hits_per_page!r}")
        if self.population not in POPULATION_KINDS:
            raise ConfigurationError(
                f"population must be one of {POPULATION_KINDS}, "
                f"got {self.population!r}"
            )
        if self.workload_source not in WORKLOAD_SOURCES:
            raise ConfigurationError(
                f"workload_source must be one of {WORKLOAD_SOURCES}, "
                f"got {self.workload_source!r}"
            )
        if self.trace_profile not in TRACE_PROFILES:
            raise ConfigurationError(
                f"trace_profile must be one of {TRACE_PROFILES}, "
                f"got {self.trace_profile!r}"
            )
        if self.trace_rate < 0:
            raise ConfigurationError("trace_rate must be >= 0")
        if not 0.0 <= self.trace_amplitude <= 1.0:
            raise ConfigurationError("trace_amplitude must be in [0, 1]")
        if self.trace_period <= 0:
            raise ConfigurationError("trace_period must be > 0")
        if self.shard_size < 1:
            raise ConfigurationError("shard_size must be >= 1")
        if self.workload_source == "trace":
            if self.trace_profile == "replay" and not self.trace_path:
                raise ConfigurationError(
                    "trace_profile='replay' requires trace_path"
                )
            if self.client_address_caching:
                raise ConfigurationError(
                    "client_address_caching requires the synthetic "
                    "workload source (trace sessions are fresh client "
                    "identities with nothing to cache)"
                )
        if self.trace_categories is not None:
            # Normalize (JSON round-trips lists) and validate.
            categories = tuple(self.trace_categories)
            object.__setattr__(self, "trace_categories", categories)
            unknown = [c for c in categories if c not in TRACE_CATEGORIES]
            if unknown:
                known = ", ".join(TRACE_CATEGORIES)
                raise ConfigurationError(
                    f"unknown trace categories {unknown!r}; known: {known}"
                )

    # -- factories ---------------------------------------------------------

    def replace(self, **changes) -> "SimulationConfig":
        """A copy of this config with ``changes`` applied."""
        return dataclasses.replace(self, **changes)

    def build_cluster(self) -> ServerCluster:
        """The web-server cluster this config describes."""
        if self.relative_capacities is not None:
            return ServerCluster(self.relative_capacities, self.total_capacity)
        return ServerCluster.from_heterogeneity(
            self.heterogeneity, self.total_capacity
        )

    def build_domains(self) -> DomainSet:
        """The *nominal* (unperturbed) domain popularity.

        At or above :data:`~repro.workload.domains.LAZY_DOMAIN_THRESHOLD`
        domains the streaming representation is used — share-for-share
        bit-identical to the materialized one, without the K-element
        hot-path lists (keyed on ``domain_count`` alone, so the switch
        can never make two runs of one config diverge).
        """
        factory = (
            LazyDomainSet
            if self.domain_count >= LAZY_DOMAIN_THRESHOLD
            else DomainSet
        )
        if self.uniform_domains:
            return factory.uniform(self.domain_count)
        return factory.pure_zipf(self.domain_count, self.zipf_exponent)

    def effective_population(self) -> str:
        """Resolve the ``population`` field (``"auto"`` included)."""
        if self.population != "auto":
            return self.population
        return (
            "lazy"
            if self.total_clients >= LAZY_POPULATION_THRESHOLD
            else "eager"
        )

    @property
    def derived_trace_rate(self) -> float:
        """Session arrival rate of the trace source (sessions/second).

        ``trace_rate`` when set; otherwise the rate at which
        ``total_clients`` synthetic clients complete sessions — one
        session per client per ``mean_pages x mean_think`` seconds — so
        the open workload offers the closed population's load.
        """
        if self.trace_rate > 0:
            return self.trace_rate
        return self.total_clients / (
            self.mean_pages_per_session * self.mean_think_time
        )

    def build_arrival_schedule(self) -> ArrivalSchedule:
        """The arrival-rate schedule of the trace-driven source."""
        rate = self.derived_trace_rate
        profile = self.trace_profile
        if profile == "constant":
            return ArrivalSchedule.constant(rate)
        if profile == "ramp":
            return ArrivalSchedule.ramp(
                rate * (1.0 - self.trace_amplitude),
                rate * (1.0 + self.trace_amplitude),
                self.duration,
            )
        if profile == "diurnal":
            return ArrivalSchedule.diurnal(
                rate, self.trace_amplitude, self.trace_period
            )
        return ArrivalSchedule.from_jsonl(self.trace_path)

    def build_session_model(self) -> SessionModel:
        """Session/page/think-time distributions for this config."""
        return SessionModel(
            pages_per_session=Geometric(self.mean_pages_per_session),
            hits_per_page=DiscreteUniform(*self.hits_per_page),
            think_time=Exponential(self.mean_think_time),
        )

    @property
    def offered_utilization(self) -> float:
        """Expected average system utilization under this config."""
        return self.build_session_model().offered_load(
            self.total_clients, self.total_capacity
        )

    def describe(self) -> List[Tuple[str, str]]:
        """Human-readable (parameter, value) pairs, Table 1 style."""
        return [
            ("Policy", self.policy),
            ("Connected domains K", str(self.domain_count)),
            ("Client distribution",
             "uniform" if self.uniform_domains
             else f"pure Zipf (exponent {self.zipf_exponent:g})"),
            ("Total clients", str(self.total_clients)),
            ("Mean think time", f"{self.mean_think_time:g} s"),
            ("Mean pages per session", f"{self.mean_pages_per_session:g}"),
            ("Hits per page",
             f"uniform {{{self.hits_per_page[0]}..{self.hits_per_page[1]}}}"),
            ("Servers N",
             str(len(self.relative_capacities))
             if self.relative_capacities is not None else "7"),
            ("Heterogeneity", f"{self.heterogeneity}%"),
            ("Total capacity", f"{self.total_capacity:g} hits/s"),
            ("Average utilization", f"{self.offered_utilization:.3f}"),
            ("Utilization interval", f"{self.utilization_interval:g} s"),
            ("Alarm threshold theta", f"{self.alarm_threshold:g}"),
            ("Constant TTL", f"{self.constant_ttl:g} s"),
            ("Min accepted TTL", f"{self.min_accepted_ttl:g} s"),
            ("Workload perturbation", f"{self.workload_error:.0%}"),
            ("Estimator", self.estimator),
            ("Duration", f"{self.duration:g} s"),
            ("Seed", str(self.seed)),
        ]


#: The paper's default configuration (Table 1 with the documented choices
#: for the scan-corrupted entries).
PAPER_DEFAULTS = SimulationConfig()
