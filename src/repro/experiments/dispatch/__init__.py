"""Multi-host dispatch: execution backends for the parallel executor.

This package fans experiment grids out over multiple hosts. The
:class:`~repro.experiments.dispatch.backend.Backend` protocol has two
implementations — the zero-change local process pool and a remote
coordinator/worker pair speaking length-prefixed JSON over TCP — with
lease-based crash tolerance and the executor's bit-identical-results
guarantee intact. See ``docs/DISTRIBUTED.md`` for the protocol, the
lease/retry semantics and deployment guidance.
"""

from .backend import (
    BACKENDS,
    Backend,
    LocalBackend,
    RemoteBackend,
    resolve_backend,
)
from .context import dispatch_context, set_dispatch_context
from .coordinator import Coordinator, DispatchOutcome, bind_listener
from .leases import LeaseTable
from .protocol import (
    PROTOCOL_VERSION,
    format_address,
    parse_address,
    recv_message,
    result_from_wire,
    result_to_wire,
    send_message,
)
from .worker import CRASH_EXIT_STATUS, WorkerTelemetry, execute_cell, serve

__all__ = [
    "BACKENDS",
    "Backend",
    "CRASH_EXIT_STATUS",
    "Coordinator",
    "DispatchOutcome",
    "LeaseTable",
    "LocalBackend",
    "PROTOCOL_VERSION",
    "RemoteBackend",
    "WorkerTelemetry",
    "bind_listener",
    "dispatch_context",
    "execute_cell",
    "format_address",
    "parse_address",
    "recv_message",
    "resolve_backend",
    "result_from_wire",
    "result_to_wire",
    "send_message",
    "serve",
    "set_dispatch_context",
]
