"""Pluggable execution backends behind :class:`ParallelExecutor`.

A *backend* decides where a batch of simulation cells physically runs:

* :class:`LocalBackend` — the original path, byte-for-byte: a serial
  loop at ``workers=1``, a :class:`concurrent.futures.ProcessPoolExecutor`
  above it. Selecting it changes nothing about how the executor behaved
  before backends existed.
* :class:`RemoteBackend` — a coordinator that owns a listening TCP
  socket, leases cells to however many ``repro worker serve`` agents
  connect (see :mod:`~repro.experiments.dispatch.coordinator`), streams
  their progress heartbeats into the executor's
  :class:`~repro.obs.progress.ProgressSink`, and reassembles results in
  submission order.

Both backends uphold the executor's core guarantee: results are
bit-identical to ``workers=1`` regardless of worker count, host count,
lease order, or mid-grid worker crashes — every cell's seed is fixed
before dispatch and a cell is a pure function of its config.

The listening socket is bound once per :class:`RemoteBackend` and kept
across batches: multi-batch commands (the figure generators) run several
coordinated batches back-to-back, with workers reconnecting in between.
"""

from __future__ import annotations

import queue
import socket
import threading
import uuid
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from ...errors import ConfigurationError
from ...obs.spans import SpanRecorder
from ..config import SimulationConfig
from ..metrics import SimulationResult
from ..persistence import config_to_dict
from .coordinator import Coordinator, DispatchOutcome, bind_listener
from .protocol import format_address, parse_address

#: Backend names accepted by the executor and the CLI.
BACKENDS = ("local", "remote")

Address = Tuple[str, int]


class Backend:
    """Where a batch of simulation cells runs; see the module docstring."""

    #: Short name recorded in stats, manifests and the CLI.
    name = "abstract"

    def run_simulations(
        self,
        executor,
        configs: Sequence[SimulationConfig],
        labels: Optional[Sequence[Optional[str]]],
    ) -> List[SimulationResult]:
        """Run one simulation per config; results in submission order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any long-lived resources (sockets)."""


class LocalBackend(Backend):
    """The in-process / process-pool path — the pre-backend behavior."""

    name = "local"

    def run_simulations(self, executor, configs, labels):
        return executor._run_simulations_local(configs, labels)


class RemoteBackend(Backend):
    """Coordinate a batch over TCP-connected worker agents.

    Parameters
    ----------
    listen:
        ``(host, port)`` or ``"host:port"`` to bind the coordinator on.
        Port ``0`` picks an ephemeral port — call :meth:`bind` to learn
        it before starting workers.
    lease_timeout:
        Seconds a leased cell may go without a heartbeat before it is
        re-leased to another worker.
    timeout:
        Optional overall wall-clock limit per batch;
        :class:`~repro.errors.DispatchError` on expiry. ``None`` (the
        default) waits indefinitely — workers may join late.
    on_listen:
        Optional callback invoked once with the bound ``(host, port)``
        (the CLI prints the ``repro worker serve --connect`` hint).
    pace:
        Optional minimum wall seconds per cell *on the worker* — the
        dispatch benchmark's emulation of remote compute (a worker
        sleeps out the remainder after the real simulation). Results
        are unaffected; only timing changes. ``None`` (the default)
        means real cells run at real speed.
    span_log:
        Optional JSONL path receiving the coordinator's cell-lifecycle
        span events (:mod:`repro.obs.spans`). ``None`` (the default)
        records nothing and pays nothing — the span layer is provably
        absent, and results are bit-identical either way.
    metrics_port:
        Optional TCP port for the coordinator's ``/metrics`` +
        ``/healthz`` endpoint (``0`` picks an ephemeral port). ``None``
        serves nothing.
    """

    name = "remote"

    def __init__(
        self,
        listen: Union[Address, str, None] = None,
        *,
        lease_timeout: float = 30.0,
        timeout: Optional[float] = None,
        on_listen: Optional[Callable[[Address], None]] = None,
        pace: Optional[float] = None,
        span_log=None,
        metrics_port: Optional[int] = None,
    ):
        if isinstance(listen, str):
            listen = parse_address(listen)
        self.listen: Address = listen if listen is not None else ("127.0.0.1", 0)
        if lease_timeout <= 0:
            raise ConfigurationError(
                f"lease_timeout must be > 0 seconds, got {lease_timeout!r}"
            )
        if pace is not None and pace < 0:
            raise ConfigurationError(
                f"pace must be >= 0 wall seconds, got {pace!r}"
            )
        self.lease_timeout = float(lease_timeout)
        self.timeout = timeout
        self.on_listen = on_listen
        self.pace = None if pace is None else float(pace)
        self.span_log = span_log
        self.metrics_port = metrics_port
        self.spans: Optional[SpanRecorder] = (
            SpanRecorder(span_log, source="coordinator")
            if span_log is not None
            else None
        )
        self._listener: Optional[socket.socket] = None
        self._obs_server = None
        self._coordinator: Optional[Coordinator] = None
        self._batches = 0
        #: ``(host, port)`` of the metrics endpoint once serving.
        self.metrics_address: Optional[Address] = None
        #: Correlation id of the most recent batch's span events.
        self.last_run_id: Optional[str] = None
        #: Outcome of the most recent batch (roster, retries, timings).
        self.last_outcome: Optional[DispatchOutcome] = None

    # -- socket lifecycle ----------------------------------------------------

    def bind(self) -> Address:
        """Bind the listening socket (idempotent); returns the address.

        Binding is separate from running so callers can learn an
        ephemeral port — and start workers against it — before the
        first batch blocks in the coordinator.
        """
        if self._listener is None:
            self._listener = bind_listener(self.listen)
            if self.on_listen is not None:
                self.on_listen(self.address)
        if self.metrics_port is not None and self._obs_server is None:
            self._obs_server = self._start_obs_server()
        return self.address

    def _start_obs_server(self):
        """The coordinator's ``/metrics`` + ``/healthz`` endpoint.

        Every fabric metric is a pull callback reading the live
        coordinator's lease table — a scrape costs the coordinator
        nothing between scrapes, and nothing at all when no coordinator
        batch is active (callbacks report zeros).
        """
        from ...obs.http import ObservabilityServer
        from ...obs.metrics import MetricsRegistry

        def table():
            coordinator = self._coordinator
            return coordinator.table if coordinator is not None else None

        def counts(reader):
            def value():
                current = table()
                return reader(current) if current is not None else 0
            return value

        registry = MetricsRegistry()
        for name, reader, help_text, kind in (
            ("fabric.cells_total",
             lambda t: t.cell_count,
             "Cells in the current (or last) coordinated batch", "gauge"),
            ("fabric.cells_completed",
             lambda t: t.completed_count,
             "Cells with a recorded first completion", "gauge"),
            ("fabric.cells_pending",
             lambda t: t.pending_count,
             "Cells awaiting a worker lease", "gauge"),
            ("fabric.cells_leased",
             lambda t: t.leased_count,
             "Cells currently out on a lease", "gauge"),
            ("fabric.lease_retries",
             lambda t: sum(t.retried.values()),
             "Lease expiries + dead-worker releases this batch",
             "counter"),
        ):
            registry.register(name, counts(reader), help=help_text,
                              kind=kind)
        registry.register(
            "fabric.workers_connected",
            lambda: (
                len(self._coordinator.connected)
                if self._coordinator is not None else 0
            ),
            help="Workers with a live coordinator connection",
        )
        registry.register(
            "fabric.workers_seen",
            lambda: (
                len(self._coordinator.roster)
                if self._coordinator is not None else 0
            ),
            help="Distinct workers that ever joined this batch",
        )
        registry.register(
            "fabric.batches",
            lambda: self._batches,
            help="Coordinated batches run over this listener",
            kind="counter",
        )

        def health() -> Dict[str, Any]:
            return {
                "role": "coordinator",
                "listen": format_address(self.address),
                "batches": self._batches,
                "run": self.last_run_id,
            }

        server = ObservabilityServer(
            self.metrics_port, registry, health=health
        )
        self.metrics_address = server.start()
        return server

    @property
    def address(self) -> Address:
        """The bound ``(host, port)``; binds on first use."""
        if self._listener is None:
            return self.bind()
        return self._listener.getsockname()[:2]

    def close(self) -> None:
        """Close the listening socket; connected workers will drain out."""
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        if self._obs_server is not None:
            self._obs_server.close()
            self._obs_server = None
            self.metrics_address = None
        if self.spans is not None:
            self.spans.close()

    def __enter__(self) -> "RemoteBackend":
        self.bind()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- execution -----------------------------------------------------------

    def run_simulations(self, executor, configs, labels):
        from ..executor import ExecutionStats, _drain_queue

        self.bind()
        specs = self._cell_specs(executor, configs)
        sink = executor.progress
        events: Optional[queue.Queue] = None
        drainer: Optional[threading.Thread] = None
        if sink is not None:
            # Worker count is unknown until workers connect; 0 means
            # "determined by the roster" to begin() consumers.
            sink.begin(len(specs), 0)
            events = queue.Queue()
            drainer = threading.Thread(
                target=_drain_queue, args=(events, sink), daemon=True
            )
            drainer.start()
        run_id = uuid.uuid4().hex[:12]
        self.last_run_id = run_id
        coordinator = Coordinator(
            specs,
            labels,
            listener=self._listener,
            lease_timeout=self.lease_timeout,
            events=events,
            timeout=self.timeout,
            spans=self.spans,
            run_id=run_id,
        )
        self._coordinator = coordinator
        self._batches += 1
        try:
            outcome = coordinator.run()
        except BaseException:
            if sink is not None:
                events.put(None)
                drainer.join()
                sink.finish(None)
            raise
        self.last_outcome = outcome
        stats = ExecutionStats.from_completions(
            workers=max(1, len(outcome.roster)),
            wall_time=outcome.wall_time,
            completions=outcome.completions,
        )
        executor.last_stats = stats
        if sink is not None:
            events.put(None)
            drainer.join()
            sink.finish(stats)
        return outcome.results

    def _cell_specs(
        self, executor, configs: Sequence[SimulationConfig]
    ) -> List[Dict[str, Any]]:
        """The wire task for each cell, mirroring the local cell layout.

        Checkpointed cells get the same ``cell-NNNN/`` ledger directories
        the local backend numbers in submission order — so a grid
        interrupted under one backend resumes under the other, and their
        bundles land in identical places.
        """
        specs: List[Dict[str, Any]] = []
        for index, config in enumerate(configs):
            spec: Dict[str, Any] = {
                "config": config_to_dict(config),
                "engine_mode": executor.engine_mode,
            }
            if self.pace is not None:
                spec["pace"] = self.pace
            if executor.checkpoint_dir is not None:
                spec["checkpoint"] = {
                    "directory": str(
                        executor.checkpoint_dir / f"cell-{index:04d}"
                    ),
                    "every": executor.checkpoint_every,
                }
            specs.append(spec)
        return specs

    def dispatch_info(self) -> Dict[str, Any]:
        """A manifest-ready description of the last batch's dispatch."""
        info: Dict[str, Any] = {
            "backend": self.name,
            "listen": format_address(self.address),
            "lease_timeout": self.lease_timeout,
        }
        if self.span_log is not None:
            info["span_log"] = str(self.span_log)
        if self.last_run_id is not None:
            info["run"] = self.last_run_id
        if self.metrics_address is not None:
            info["metrics"] = format_address(self.metrics_address)
        if self.last_outcome is not None:
            info["roster"] = self.last_outcome.roster_list()
            if self.last_outcome.retried:
                info["retried_cells"] = dict(self.last_outcome.retried)
        return info

    def __repr__(self) -> str:
        bound = (
            format_address(self._listener.getsockname()[:2])
            if self._listener is not None
            else format_address(self.listen) + " (unbound)"
        )
        return f"<RemoteBackend {bound} lease_timeout={self.lease_timeout}>"


def resolve_backend(
    backend: Union[str, Backend, None],
    *,
    listen: Union[Address, str, None] = None,
    lease_timeout: float = 30.0,
    dispatch_timeout: Optional[float] = None,
    on_listen: Optional[Callable[[Address], None]] = None,
    span_log=None,
    metrics_port: Optional[int] = None,
) -> Backend:
    """Turn a backend name (or ready instance) into a :class:`Backend`.

    ``None`` and ``"local"`` give the zero-change local path; ``"remote"``
    builds a :class:`RemoteBackend` from the keyword options. A
    :class:`Backend` instance passes through untouched (the options are
    ignored — the instance already carries its own).
    """
    if backend is None:
        return LocalBackend()
    if isinstance(backend, Backend):
        return backend
    if backend == "local":
        return LocalBackend()
    if backend == "remote":
        return RemoteBackend(
            listen,
            lease_timeout=lease_timeout,
            timeout=dispatch_timeout,
            on_listen=on_listen,
            span_log=span_log,
            metrics_port=metrics_port,
        )
    raise ConfigurationError(
        f"unknown dispatch backend {backend!r}; choose from {BACKENDS}"
    )
