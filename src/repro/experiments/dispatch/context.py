"""Ambient dispatch identity, recorded into provenance manifests.

When a worker agent executes a checkpointed cell, the cell's bundle is
written by :func:`~repro.experiments.checkpointing.run_checkpointed_cell`
deep below the dispatch layer. Rather than thread a "who am I" argument
through every call, the worker sets a process-wide context once per
session and the persistence layer picks it up when writing manifests —
so a bundle produced on a remote worker records which worker, process
and coordinator produced it, while bundles from ordinary local runs are
unchanged (the context is ``None`` unless a worker agent set it).

The context deliberately lands in the *manifest* (timestamped, already
environment-specific) and never in the result JSON, whose byte-identity
across backends is the dispatch layer's core guarantee.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

_CONTEXT: Optional[Dict[str, Any]] = None


def set_dispatch_context(context: Optional[Dict[str, Any]]) -> None:
    """Install (or clear, with ``None``) this process's dispatch identity."""
    global _CONTEXT
    _CONTEXT = dict(context) if context is not None else None


def dispatch_context() -> Optional[Dict[str, Any]]:
    """The current dispatch identity, or ``None`` outside a worker agent."""
    return dict(_CONTEXT) if _CONTEXT is not None else None
