"""The dispatch coordinator: leases cells to workers, reassembles results.

One :class:`Coordinator` drives one batch of cells over an already-bound
listening socket (the :class:`~repro.experiments.dispatch.backend.RemoteBackend`
owns the socket so it survives across batches — figure generators run
several batches back-to-back and workers reconnect between them).

Threading model, mirroring the process-pool executor's:

* an accept thread admits workers and spawns one handler thread per
  connection;
* handler threads speak the :mod:`~repro.experiments.dispatch.protocol`
  message loop, mutating the shared :class:`~.leases.LeaseTable` only
  under the coordinator lock;
* progress heartbeats are *forwarded* onto a queue the backend drains
  from a single thread, so — exactly as with the local backend — a
  :class:`~repro.obs.progress.ProgressSink` never sees concurrent
  ``emit`` calls;
* the caller's thread sits in :meth:`run`, sweeping expired leases every
  quarter second until every cell has a result.

Determinism: results are recorded per submission index and returned in
submission order, each cell's seed was fixed before dispatch, and a
re-leased cell's retry is idempotent — so the reassembled batch is
bit-identical to ``workers=1`` no matter how many workers served it, in
which order leases returned, or which workers died along the way.
Duplicate completions (a stalled worker finishing a cell that was
re-leased and already completed elsewhere) are dropped: the first
completion wins, in results, progress events and timing alike.
"""

from __future__ import annotations

import queue
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ...errors import DispatchError
from ...obs import spans as span_kinds
from ...obs.progress import FINISHED, ROSTER, STARTED, ProgressEvent
from ...obs.spans import SpanRecorder
from .leases import LeaseTable
from .protocol import (
    ERROR,
    HEARTBEAT,
    HELLO,
    LEASE,
    PROGRESS,
    PROTOCOL_VERSION,
    REQUEST,
    RESULT,
    SHUTDOWN,
    WAIT,
    format_address,
    recv_message,
    result_from_wire,
    send_message,
)

#: How long an idle worker is told to sleep before re-requesting work.
WAIT_DELAY = 0.2

#: Cadence of the coordinator's lease-expiry sweep (wall seconds).
SWEEP_INTERVAL = 0.25


@dataclass
class DispatchOutcome:
    """Everything one coordinated batch produced."""

    #: Cell results in submission order.
    results: List[Any]
    #: ``(index, elapsed, worker)`` triples in completion order, first
    #: completion per cell only — feed to
    #: :meth:`~repro.experiments.executor.ExecutionStats.from_completions`.
    completions: List[Tuple[int, float, str]]
    #: Wall-clock seconds for the whole batch.
    wall_time: float
    #: Every worker that connected: id -> {"worker", "host", "pid", "cells"}.
    roster: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: Cells that needed a re-lease (index -> retry count).
    retried: Dict[str, int] = field(default_factory=dict)

    def roster_list(self) -> List[Dict[str, Any]]:
        """Roster entries sorted by worker id (manifest-stable order)."""
        return [self.roster[key] for key in sorted(self.roster)]


class Coordinator:
    """Serve one batch of cell tasks to however many workers connect.

    Parameters
    ----------
    tasks:
        JSON-safe cell task payloads, one per cell, in submission order.
    labels:
        Optional per-cell labels for progress heartbeats.
    listener:
        A bound, listening TCP socket (ownership stays with the caller).
    lease_timeout:
        Seconds a lease may go without a heartbeat before the cell is
        returned to the pool.
    events:
        Optional :class:`queue.Queue` receiving
        :class:`~repro.obs.progress.ProgressEvent` forwards.
    timeout:
        Optional overall wall-clock deadline for the batch; expiry
        raises :class:`~repro.errors.DispatchError` naming the missing
        cells (``None`` waits indefinitely — workers may join late).
    spans:
        Optional :class:`~repro.obs.spans.SpanRecorder` receiving
        cell-lifecycle span events (submit, lease, heartbeat, complete,
        expire, release, worker join/leave). ``None`` (the default)
        emits nothing and costs nothing — every emission site is
        guarded.
    run_id:
        Correlation id stamped on span events and leases of this batch
        (observability only; never touches results).
    """

    def __init__(
        self,
        tasks: Sequence[Dict[str, Any]],
        labels: Optional[Sequence[Optional[str]]] = None,
        *,
        listener: socket.socket,
        lease_timeout: float = 30.0,
        events: Optional["queue.Queue"] = None,
        timeout: Optional[float] = None,
        spans: Optional[SpanRecorder] = None,
        run_id: Optional[str] = None,
    ):
        self.tasks = list(tasks)
        self.labels = list(labels) if labels is not None else None
        self.listener = listener
        self.lease_timeout = float(lease_timeout)
        self.events = events
        self.timeout = timeout
        self.spans = spans
        self.run_id = run_id
        self.table = LeaseTable(len(self.tasks), self.lease_timeout)
        self.roster: Dict[str, Dict[str, Any]] = {}
        #: Worker ids with a live connection right now (id -> count of
        #: open connections, normally 1) — the live roster the ROSTER
        #: progress events and the coordinator metrics report.
        self.connected: Dict[str, int] = {}
        self._lock = threading.Lock()
        self._done = threading.Event()
        self._stop = False
        self._failure: Optional[DispatchError] = None
        self._connections: List[socket.socket] = []
        self._handlers: List[threading.Thread] = []

    # -- public API ----------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """The listener's bound ``(host, port)``."""
        return self.listener.getsockname()[:2]

    def _span(self, kind: str, **fields: Any) -> None:
        """Emit one coordinator span event (no-op without a recorder)."""
        if self.spans is not None:
            self.spans.emit(kind, run=self.run_id, **fields)

    def run(self) -> DispatchOutcome:
        """Block until every cell completed; return the batch outcome."""
        start = time.perf_counter()
        deadline = None if self.timeout is None else start + self.timeout
        if not self.tasks:
            return DispatchOutcome(
                results=[], completions=[], wall_time=0.0
            )
        self._span(span_kinds.BATCH_BEGIN, cells=len(self.tasks))
        if self.spans is not None:
            for index in range(len(self.tasks)):
                label = (
                    self.labels[index] if self.labels is not None else None
                )
                self._span(span_kinds.SUBMIT, cell=index, label=label)
        accept_thread = threading.Thread(
            target=self._accept_loop, name="dispatch-accept", daemon=True
        )
        accept_thread.start()
        try:
            while True:
                if self._done.wait(SWEEP_INTERVAL):
                    break
                with self._lock:
                    expired = self.table.expire_details()
                for index, holder, attempt in expired:
                    self._span(
                        span_kinds.EXPIRE,
                        cell=index, attempt=attempt, worker=holder,
                    )
                if deadline is not None and time.perf_counter() > deadline:
                    with self._lock:
                        missing = self.table.cell_count - self.table.completed_count
                        self._failure = self._failure or DispatchError(
                            f"dispatch timed out after {self.timeout:g}s with "
                            f"{missing} of {self.table.cell_count} cells "
                            f"incomplete ({len(self.roster)} workers seen)"
                        )
                        self._done.set()
                    break
        finally:
            self._shutdown()
            accept_thread.join(timeout=2.0)
        if self._failure is not None:
            raise self._failure
        with self._lock:
            results = [
                result_from_wire(payload)
                for payload in self.table.results_in_order()
            ]
            completions = list(self.table.completions)
            retried = {
                str(index): count
                for index, count in sorted(self.table.retried.items())
            }
        self._span(
            span_kinds.BATCH_END,
            cells=len(self.tasks),
            wall_time=time.perf_counter() - start,
            retries=sum(self.table.retried.values()),
        )
        return DispatchOutcome(
            results=results,
            completions=completions,
            wall_time=time.perf_counter() - start,
            roster=dict(self.roster),
            retried=retried,
        )

    # -- socket plumbing -----------------------------------------------------

    def _accept_loop(self) -> None:
        self.listener.settimeout(SWEEP_INTERVAL)
        while not self._stop:
            try:
                connection, _ = self.listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed under us
            connection.settimeout(None)
            try:
                # Leases and results are small framed messages; never let
                # Nagle hold one back waiting for a delayed ACK.
                connection.setsockopt(
                    socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
                )
            except OSError:
                pass
            handler = threading.Thread(
                target=self._serve_connection,
                args=(connection,),
                name="dispatch-worker-conn",
                daemon=True,
            )
            with self._lock:
                self._connections.append(connection)
                self._handlers.append(handler)
            handler.start()

    def _shutdown(self) -> None:
        """End the batch: tell every worker goodbye and drop the conns."""
        self._stop = True
        with self._lock:
            connections = list(self._connections)
            handlers = list(self._handlers)
        for connection in connections:
            try:
                send_message(connection, {"type": SHUTDOWN})
            except OSError:
                pass
            try:
                connection.close()
            except OSError:
                pass
        for handler in handlers:
            handler.join(timeout=1.0)

    # -- per-connection message loop -----------------------------------------

    def _serve_connection(self, connection: socket.socket) -> None:
        worker_id = None
        try:
            hello = recv_message(connection)
            if hello is None or hello.get("type") != HELLO:
                return
            if hello.get("protocol") != PROTOCOL_VERSION:
                send_message(connection, {"type": SHUTDOWN})
                return
            worker_id = str(
                hello.get("worker")
                or f"{hello.get('host', '?')}:{hello.get('pid', '?')}"
            )
            with self._lock:
                self.roster.setdefault(
                    worker_id,
                    {
                        "worker": worker_id,
                        "host": hello.get("host"),
                        "pid": hello.get("pid"),
                        "cells": 0,
                    },
                )
                self.connected[worker_id] = (
                    self.connected.get(worker_id, 0) + 1
                )
                live = len(self.connected)
            self._span(
                span_kinds.WORKER_JOIN,
                worker=worker_id,
                host=hello.get("host"),
                pid=hello.get("pid"),
                connected=live,
            )
            self._emit(ProgressEvent(
                kind=ROSTER, index=-1, workers=live, timestamp=time.time(),
            ))
            while not self._stop:
                message = recv_message(connection)
                if message is None:
                    return
                kind = message["type"]
                if kind == REQUEST:
                    if not self._answer_request(connection, worker_id):
                        return
                elif kind == PROGRESS:
                    self._handle_progress(message, worker_id)
                elif kind == HEARTBEAT:
                    cell = int(message["cell"])
                    with self._lock:
                        self.table.heartbeat(cell, worker_id)
                    if self.spans is not None:
                        self._span(
                            span_kinds.HEARTBEAT,
                            cell=cell,
                            attempt=message.get("attempt"),
                            worker=worker_id,
                        )
                elif kind == RESULT:
                    self._handle_result(message, worker_id)
                elif kind == ERROR:
                    self._handle_error(message, worker_id)
                else:
                    raise DispatchError(
                        f"unexpected message type {kind!r} from worker "
                        f"{worker_id}"
                    )
        except DispatchError as error:
            with self._lock:
                if self._failure is None:
                    self._failure = error
                self._done.set()
        except OSError:
            pass  # connection died mid-send; the release below re-pools
        finally:
            if worker_id is not None:
                with self._lock:
                    released = self.table.release_details(worker_id)
                    count = self.connected.get(worker_id, 0) - 1
                    if count > 0:
                        self.connected[worker_id] = count
                    else:
                        self.connected.pop(worker_id, None)
                    live = len(self.connected)
                    if self.table.done and self._failure is None:
                        self._done.set()
                for index, holder, attempt in released:
                    self._span(
                        span_kinds.RELEASE,
                        cell=index, attempt=attempt, worker=holder,
                    )
                self._span(
                    span_kinds.WORKER_LEAVE,
                    worker=worker_id, connected=live,
                )
                self._emit(ProgressEvent(
                    kind=ROSTER, index=-1, workers=live,
                    timestamp=time.time(),
                ))
            try:
                connection.close()
            except OSError:
                pass

    def _answer_request(
        self, connection: socket.socket, worker_id: str
    ) -> bool:
        """Reply to a work request; ``False`` ends the conversation."""
        with self._lock:
            if self._failure is not None or self.table.done:
                send_message(connection, {"type": SHUTDOWN})
                return False
            index = self.table.lease(worker_id)
            if index is None:
                send_message(
                    connection, {"type": WAIT, "delay": WAIT_DELAY}
                )
                return True
            label = (
                self.labels[index] if self.labels is not None else None
            )
            attempt = self.table.attempt(index)
            send_message(
                connection,
                {
                    "type": LEASE,
                    "cell": index,
                    "label": label,
                    "task": self.tasks[index],
                    "timeout": self.lease_timeout,
                    "attempt": attempt,
                    "run": self.run_id,
                },
            )
        self._span(
            span_kinds.LEASE,
            cell=index, attempt=attempt, worker=worker_id, label=label,
        )
        return True

    # -- worker message handling ---------------------------------------------

    def _emit(self, event: ProgressEvent) -> None:
        if self.events is not None:
            self.events.put(event)

    def _handle_progress(
        self, message: Dict[str, Any], worker_id: str
    ) -> None:
        index = int(message["cell"])
        with self._lock:
            # Any sign of life on a lease extends its deadline.
            self.table.heartbeat(index, worker_id)
            already_done = self.table.completed(index)
        if message.get("kind") == STARTED and not already_done:
            self._emit(ProgressEvent(
                kind=STARTED,
                index=index,
                label=message.get("label"),
                worker=message.get("worker"),
                timestamp=message.get("timestamp") or time.time(),
            ))
        # ``finished`` progress is not forwarded: the coordinator
        # synthesizes exactly one finished event per cell from the
        # winning result message, so a re-leased cell that two workers
        # both finish can never double-count in any sink.

    def _handle_result(
        self, message: Dict[str, Any], worker_id: str
    ) -> None:
        index = int(message["cell"])
        elapsed = float(message.get("elapsed") or 0.0)
        with self._lock:
            first = self.table.complete(
                index, worker_id, message["payload"], elapsed
            )
            if first and worker_id in self.roster:
                self.roster[worker_id]["cells"] += 1
            done = self.table.done
        self._span(
            span_kinds.COMPLETE,
            cell=index,
            attempt=message.get("attempt"),
            worker=worker_id,
            winner=first,
            elapsed=elapsed,
            label=message.get("label"),
        )
        if first:
            self._emit(ProgressEvent(
                kind=FINISHED,
                index=index,
                label=message.get("label"),
                worker=message.get("worker"),
                elapsed=elapsed,
                timestamp=message.get("timestamp") or time.time(),
            ))
        if done:
            self._done.set()

    def _handle_error(
        self, message: Dict[str, Any], worker_id: str
    ) -> None:
        index = message.get("cell")
        label = message.get("label")
        detail = message.get("error", "unknown error")
        kind = message.get("kind", "Exception")
        where = f"cell {index}" + (f" ({label})" if label else "")
        error = DispatchError(
            f"{where} raised {kind} on worker {worker_id}: {detail}"
        )
        traceback_text = message.get("traceback")
        if traceback_text:
            error.worker_traceback = traceback_text
        if index is not None:
            self._span(
                span_kinds.ERROR,
                cell=int(index),
                attempt=message.get("attempt"),
                worker=worker_id,
                error=detail,
                error_kind=kind,
            )
        with self._lock:
            if self._failure is None:
                self._failure = error
            self._done.set()


def bind_listener(address: Tuple[str, int], backlog: int = 16) -> socket.socket:
    """Bind and listen on ``address``; returns the listening socket.

    Raises :class:`~repro.errors.DispatchError` when the address cannot
    be bound (port taken, host unresolvable) — with the address in the
    message, since "bind failed" without it is useless in CI logs.
    """
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    try:
        listener.bind(address)
        listener.listen(backlog)
    except OSError as exc:
        listener.close()
        raise DispatchError(
            f"cannot listen on {format_address(address)}: {exc}"
        ) from exc
    return listener
