"""Deadline-carrying cell leases for the dispatch coordinator.

The coordinator's crash tolerance lives here, in a pure data structure
with no sockets or threads (its single-threaded semantics are what the
unit tests pin; the coordinator serializes access with a lock):

* every un-run cell is *pending*; a worker's request moves one cell to
  *leased* with a monotonic-clock deadline;
* a heartbeat (or any progress) from the lease holder extends the
  deadline — a worker busy on a long cell keeps its lease alive;
* :meth:`expire` returns every overdue lease to the pending pool, and
  :meth:`release_worker` does the same immediately for a worker whose
  connection died;
* the **first** completion of a cell wins: :meth:`complete` records it
  and returns ``True``; a late duplicate (a stalled-but-alive worker
  finishing a cell that was re-leased and already completed elsewhere)
  is dropped with ``False``, so no cell is ever double-counted — in
  results *or* in timing stats.

Re-leasing is safe because a cell is a pure function of its config
(every seed fixed before dispatch) and, under checkpointing, because
:func:`~repro.experiments.checkpointing.run_checkpointed_cell` is
idempotent: the retry reloads or resumes the dead worker's ledger
instead of redoing finished work. Either way the retried result is
bit-identical to what the dead worker would have produced.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple


class LeaseTable:
    """Pending / leased / completed bookkeeping for one batch of cells."""

    def __init__(self, cell_count: int, lease_timeout: float):
        if lease_timeout <= 0:
            raise ValueError(
                f"lease_timeout must be > 0 seconds, got {lease_timeout!r}"
            )
        self.cell_count = int(cell_count)
        self.lease_timeout = float(lease_timeout)
        #: Cells awaiting a worker, in lease order (re-leased cells are
        #: appended, which only affects scheduling — never results).
        self._pending: Deque[int] = deque(range(cell_count))
        #: cell index -> (worker id, monotonic deadline).
        self._leases: Dict[int, Tuple[str, float]] = {}
        #: cell index -> result payload of the *first* completion.
        self._results: Dict[int, Any] = {}
        #: (cell index, elapsed seconds, worker id) in completion order,
        #: first completion per cell only.
        self.completions: List[Tuple[int, float, str]] = []
        #: Cells that expired or were released at least once (stats).
        self.retried: Dict[int, int] = {}

    # -- queries -------------------------------------------------------------

    @property
    def done(self) -> bool:
        """Every cell has a recorded result."""
        return len(self._results) == self.cell_count

    @property
    def completed_count(self) -> int:
        return len(self._results)

    @property
    def pending_count(self) -> int:
        """Cells currently awaiting a worker."""
        return len(self._pending)

    @property
    def leased_count(self) -> int:
        """Cells currently out on a lease."""
        return len(self._leases)

    def attempt(self, index: int) -> int:
        """The attempt number a lease of ``index`` would carry *now*.

        Attempt 0 is the first lease; every expiry or dead-worker
        release increments it — so the value equals the cell's retry
        count, and ``(cell, attempt)`` uniquely names one lease for the
        span layer.
        """
        return self.retried.get(index, 0)

    def results_in_order(self) -> List[Any]:
        """Result payloads in submission (index) order; batch must be done."""
        if not self.done:
            missing = sorted(set(range(self.cell_count)) - set(self._results))
            raise ValueError(f"batch incomplete; missing cells {missing}")
        return [self._results[index] for index in range(self.cell_count)]

    def holder(self, index: int) -> Optional[str]:
        """Worker currently holding the lease on ``index``, if any."""
        lease = self._leases.get(index)
        return lease[0] if lease is not None else None

    def completed(self, index: int) -> bool:
        """Whether ``index`` already has a recorded result."""
        return index in self._results

    # -- transitions ---------------------------------------------------------

    def lease(self, worker: str, now: Optional[float] = None) -> Optional[int]:
        """Lease the next pending cell to ``worker``; ``None`` if none."""
        now = time.monotonic() if now is None else now
        self.expire(now)
        if not self._pending:
            return None
        index = self._pending.popleft()
        self._leases[index] = (worker, now + self.lease_timeout)
        return index

    def heartbeat(
        self, index: int, worker: str, now: Optional[float] = None
    ) -> bool:
        """Extend ``worker``'s lease on ``index``; ``False`` if not held."""
        now = time.monotonic() if now is None else now
        lease = self._leases.get(index)
        if lease is None or lease[0] != worker:
            return False
        self._leases[index] = (worker, now + self.lease_timeout)
        return True

    def complete(
        self, index: int, worker: str, payload: Any, elapsed: float
    ) -> bool:
        """Record a completion; ``True`` only for the cell's first one."""
        if not 0 <= index < self.cell_count:
            raise ValueError(f"cell index {index} out of range")
        self._leases.pop(index, None)
        # A re-leased copy of this cell may still sit in the pending
        # queue (completion raced the expiry sweep); drop it.
        if index in self._pending:
            self._pending.remove(index)
        if index in self._results:
            return False
        self._results[index] = payload
        self.completions.append((index, float(elapsed), worker))
        return True

    def expire(self, now: Optional[float] = None) -> List[int]:
        """Return overdue leases to the pending pool; lists the cells."""
        return [index for index, _, _ in self.expire_details(now)]

    def expire_details(
        self, now: Optional[float] = None
    ) -> List[Tuple[int, str, int]]:
        """:meth:`expire`, but listing ``(cell, holder, attempt)``.

        ``attempt`` is the number of the lease being terminated (the
        value :meth:`attempt` returned when it was granted) — what the
        span layer stamps on its ``expire`` events.
        """
        now = time.monotonic() if now is None else now
        expired = [
            (index, holder)
            for index, (holder, deadline) in self._leases.items()
            if deadline <= now
        ]
        return [self._repool(index, holder) for index, holder in expired]

    def release_worker(self, worker: str) -> List[int]:
        """Re-pool every lease ``worker`` holds (its connection died)."""
        return [index for index, _, _ in self.release_details(worker)]

    def release_details(self, worker: str) -> List[Tuple[int, str, int]]:
        """:meth:`release_worker`, listing ``(cell, holder, attempt)``."""
        released = [
            index
            for index, (holder, _) in self._leases.items()
            if holder == worker
        ]
        return [self._repool(index, worker) for index in released]

    def _repool(self, index: int, holder: str) -> Tuple[int, str, int]:
        """Terminate one lease, re-queue its cell, bump its retry count."""
        attempt = self.retried.get(index, 0)
        del self._leases[index]
        self._pending.append(index)
        self.retried[index] = attempt + 1
        return index, holder, attempt

    def __repr__(self) -> str:
        return (
            f"<LeaseTable {self.completed_count}/{self.cell_count} done, "
            f"{len(self._leases)} leased, {len(self._pending)} pending>"
        )
