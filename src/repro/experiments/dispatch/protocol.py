"""Wire protocol of the multi-host dispatch layer.

Coordinator and workers speak length-prefixed JSON over a TCP stream:
every message is a 4-byte big-endian payload length followed by exactly
that many bytes of UTF-8 JSON (one object). Framing this explicitly —
rather than, say, newline-delimited JSON — makes a *torn* message (the
sender was killed mid-write) detectable as a short read, which the
coordinator treats exactly like a closed connection: the worker is dead,
its leases go back to the pool.

The conversation is worker-driven (pull model). After connecting, a
worker sends one ``hello`` and then loops::

    worker -> {"type": "request"}
    coord  -> {"type": "lease", "cell": 3, "label": ..., "task": {...},
               "timeout": 30.0, "attempt": 0, "run": "8c1f..."}
           |  {"type": "wait", "delay": 0.2}      # nothing leasable now
           |  {"type": "shutdown"}                # batch is over

    # while executing a lease, inline on the same connection:
    worker -> {"type": "progress", "kind": "started", "cell": 3, ...}
    worker -> {"type": "heartbeat", "cell": 3, "attempt": 0,
               "mono": ...}                       # keepalive during the cell
    worker -> {"type": "progress", "kind": "finished", "cell": 3, ...}
    worker -> {"type": "result", "cell": 3, "elapsed": 1.2,
               "result": {...}, "trace": [...] | null}
           |  {"type": "error", "cell": 3, "error": "...",
               "kind": "SimulationError", "traceback": "..."}

Clock discipline: worker messages carry **two** stamps — ``timestamp``
(wall-clock ``time.time()``, for humans and cross-host correlation) and
``mono`` (``time.monotonic()``, for arithmetic). Lease deadlines and
every latency/skew computation in the span reconstructor
(:mod:`repro.obs.spans`) use monotonic stamps only, compared within one
source process, so an NTP step mid-run cannot corrupt durations.
``attempt`` numbers a specific lease of a cell (0 on first lease,
incremented per re-lease) and ``run`` identifies the coordinated batch;
workers echo both back so coordinator- and worker-side span events
correlate. All three fields are additions a version-1 peer without
spans simply ignores.

Cell tasks and results travel as the JSON-safe dicts of
:mod:`repro.experiments.persistence` — the same serialization the
checkpoint ledger and run bundles use — so a result that crossed the
wire saves byte-identically to one produced in-process.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Dict, Optional, Tuple

from ...errors import DispatchError
from ...obs.export import record_from_dict, record_to_dict
from ..metrics import SimulationResult
from ..persistence import result_from_dict, result_to_dict

#: 4-byte big-endian unsigned frame-length header.
HEADER = struct.Struct(">I")

#: Hard ceiling on one frame's payload (a traced result can be large,
#: but anything past this is a corrupt or hostile stream, not data).
MAX_FRAME_BYTES = 256 * 1024 * 1024

#: Protocol revision; ``hello`` carries it so a coordinator can refuse
#: a worker speaking a different framing.
PROTOCOL_VERSION = 1

# Message type tags.
HELLO = "hello"
REQUEST = "request"
LEASE = "lease"
WAIT = "wait"
SHUTDOWN = "shutdown"
PROGRESS = "progress"
HEARTBEAT = "heartbeat"
RESULT = "result"
ERROR = "error"


def parse_address(text: str) -> Tuple[str, int]:
    """``"HOST:PORT"`` -> ``(host, port)``; raises :class:`DispatchError`."""
    host, separator, port_text = text.rpartition(":")
    if not separator or not host:
        raise DispatchError(
            f"bad address {text!r}: expected HOST:PORT (e.g. 127.0.0.1:7571)"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise DispatchError(f"bad port in address {text!r}") from None
    if not 0 <= port <= 65535:
        raise DispatchError(f"port out of range in address {text!r}")
    return host, port


def format_address(address: Tuple[str, int]) -> str:
    """``(host, port)`` -> ``"host:port"``."""
    return f"{address[0]}:{address[1]}"


def send_message(sock: socket.socket, message: Dict[str, Any]) -> None:
    """Send one framed JSON message (compact, key-sorted encoding)."""
    payload = json.dumps(
        message, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    sock.sendall(HEADER.pack(len(payload)) + payload)


def _recv_exactly(sock: socket.socket, count: int) -> Optional[bytes]:
    """Read exactly ``count`` bytes, or ``None`` on EOF (clean or torn).

    A short read means the peer went away mid-frame — for the dispatch
    layer that is indistinguishable from (and handled identically to) a
    connection closed between frames: the peer is gone.
    """
    chunks = []
    remaining = count
    while remaining:
        try:
            chunk = sock.recv(remaining)
        except (OSError, ValueError):
            return None
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """Receive one framed message; ``None`` when the peer is gone.

    Raises :class:`~repro.errors.DispatchError` on a frame that cannot
    be data (oversized length prefix or non-JSON payload) — a protocol
    violation, not a death.
    """
    header = _recv_exactly(sock, HEADER.size)
    if header is None:
        return None
    (length,) = HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise DispatchError(
            f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES}-byte "
            f"protocol maximum (corrupt stream?)"
        )
    payload = _recv_exactly(sock, length)
    if payload is None:
        return None
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise DispatchError(f"undecodable frame: {exc}") from exc
    if not isinstance(message, dict) or "type" not in message:
        raise DispatchError(f"malformed message (no type): {message!r}")
    return message


# -- cell results on the wire -------------------------------------------------


def result_to_wire(result: SimulationResult) -> Dict[str, Any]:
    """The JSON payload carrying one cell's result (trace included).

    :func:`~repro.experiments.persistence.result_to_dict` deliberately
    omits the trace (it can dwarf the result in a saved bundle, where it
    lives in a JSONL sidecar); on the wire the trace must ride along or
    a traced remote cell would silently lose it.
    """
    return {
        "result": result_to_dict(result),
        "trace": (
            [record_to_dict(record) for record in result.trace]
            if result.trace is not None
            else None
        ),
    }


def result_from_wire(payload: Dict[str, Any]) -> SimulationResult:
    """Rebuild the :class:`SimulationResult` sent by :func:`result_to_wire`."""
    result = result_from_dict(payload["result"])
    trace = payload.get("trace")
    if trace is not None:
        result.trace = [record_from_dict(record) for record in trace]
    return result
