"""The dispatch worker agent behind ``repro worker serve``.

A worker connects to a coordinator, pulls leased cells one at a time,
executes each through the same code path the local backend uses —
:func:`~repro.experiments.simulation.run_simulation` for plain cells,
the idempotent
:func:`~repro.experiments.checkpointing.run_checkpointed_cell` for
checkpointed ones — and streams progress heartbeats back inline on the
same connection, so the coordinator's ``--progress`` view is one live
picture across every host.

Liveness: while a cell runs, a keepalive thread sends ``heartbeat``
messages at a third of the lease timeout, so a *busy* worker never loses
its lease; a *dead or stalled* one stops heartbeating and the
coordinator re-leases its cell. Execution is therefore at-least-once —
safe because every cell is a pure function of its config and the
checkpoint ledger makes retries resume instead of redo.

Session lifecycle: a coordinator batch ends with ``shutdown`` (or simply
a dropped connection); the worker then tries to *reconnect*, because
multi-batch commands (the figure generators) run several batches over
one listening socket. Only when no coordinator answers for
``connect_timeout`` seconds does the agent exit — cleanly, with status
0, if it ever served; with status 1 if it never reached a coordinator
at all.

``crash_after`` is the chaos hook the crash-tolerance tests and the CI
``dispatch-smoke`` job use: after completing N cells the worker takes
one more lease, reports it started, and dies via ``os._exit`` — a real
kill, mid-lease, with no goodbye on the wire.
"""

from __future__ import annotations

import os
import pathlib
import signal
import socket
import sys
import threading
import time
import traceback
from typing import Any, Dict, Optional, Tuple

from ...errors import ReproError
from ...obs import spans as span_kinds
from ...obs.metrics import MetricsRegistry
from ...obs.progress import FINISHED, STARTED
from ...obs.spans import DEFAULT_RING_SIZE, SpanRecorder, crash_file_name
from ..persistence import config_from_dict
from ..simulation import run_simulation
from .context import set_dispatch_context
from .protocol import (
    ERROR,
    HEARTBEAT,
    HELLO,
    LEASE,
    PROGRESS,
    PROTOCOL_VERSION,
    REQUEST,
    RESULT,
    SHUTDOWN,
    WAIT,
    format_address,
    recv_message,
    result_to_wire,
    send_message,
)

#: Seconds between connection attempts while (re)connecting.
RECONNECT_INTERVAL = 0.2

#: Exit status of a ``--crash-after`` simulated kill (distinctive, so a
#: test watching the process can tell the planned crash from a bug).
CRASH_EXIT_STATUS = 17


def execute_cell(task: Dict[str, Any]) -> Any:
    """Run one leased cell task; returns its ``SimulationResult``.

    ``task`` is the coordinator's JSON payload: the cell's serialized
    config, its engine mode, and — when the batch runs under
    checkpointing — the cell's ledger directory and cadence, in which
    case execution goes through the idempotent
    :func:`~repro.experiments.checkpointing.run_checkpointed_cell`
    (reload finished cells, resume interrupted ones, start fresh ones).

    An optional ``pace`` (wall seconds) holds the cell to at least that
    duration by sleeping out any remainder after the simulation — the
    dispatch benchmark's stand-in for remote compute, so fabric overlap
    is measurable even on a single-core host where extra local
    processes cannot make CPU-bound cells faster. Pacing is pure
    timing: the result bytes are exactly the unpaced cell's.
    """
    engine_mode = task.get("engine_mode", "event")
    pace = task.get("pace")
    start = time.perf_counter() if pace is not None else 0.0
    checkpoint = task.get("checkpoint")
    if checkpoint is not None:
        from ..checkpointing import run_checkpointed_cell

        result = run_checkpointed_cell((
            task["config"],
            checkpoint["directory"],
            float(checkpoint["every"]),
            engine_mode,
        ))
    else:
        result = run_simulation(
            config_from_dict(task["config"]), engine_mode=engine_mode
        )
    if pace is not None:
        remaining = float(pace) - (time.perf_counter() - start)
        if remaining > 0:
            time.sleep(remaining)
    return result


def _rss_bytes() -> float:
    """This process's peak resident set size in bytes (0 if unknown)."""
    try:
        import resource
    except ImportError:  # non-Unix platform
        return 0.0
    # ru_maxrss is KiB on Linux, bytes on macOS.
    scale = 1 if sys.platform == "darwin" else 1024
    return float(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * scale)


class WorkerTelemetry:
    """Live health counters of one worker agent.

    Plain attributes mutated from the worker's serving thread (and read
    by ``/metrics`` scrapes — single writes of ints/floats, so no lock
    is needed). ``register_into`` wires everything into a
    :class:`~repro.obs.MetricsRegistry` as pull callbacks: the worker
    pays nothing per scrape it never receives.

    ``heartbeat_rtt_seconds`` is measured around the worker's
    request/reply exchanges with the coordinator — a genuine round trip
    on the same socket the heartbeats use. (Lease heartbeats themselves
    are deliberately one-way: an acknowledgement would sit unread in
    the socket buffer while the worker executes a cell.)
    """

    def __init__(self, identity: str):
        self.identity = identity
        self.started = time.monotonic()
        self.sessions = 0
        self.cells_completed = 0
        self.cells_failed = 0
        self.heartbeats_sent = 0
        self.retried_leases = 0
        self.leases_held = 0
        self.heartbeat_rtt_seconds = 0.0
        self.queue_wait_seconds = 0.0
        self.current_cell: Optional[int] = None

    def uptime(self) -> float:
        return time.monotonic() - self.started

    def cells_per_second(self) -> float:
        uptime = self.uptime()
        return self.cells_completed / uptime if uptime > 0 else 0.0

    def health(self) -> Dict[str, Any]:
        """The worker's ``/healthz`` document body."""
        return {
            "role": "worker",
            "worker": self.identity,
            "sessions": self.sessions,
            "cells_completed": self.cells_completed,
            "leases_held": self.leases_held,
            "current_cell": self.current_cell,
            "uptime_seconds": self.uptime(),
        }

    def register_into(self, registry: MetricsRegistry) -> None:
        """Register every health metric as a pull callback."""
        for name, callback, help_text, kind in (
            ("worker.cells_completed", lambda: self.cells_completed,
             "Cells this worker completed and reported", "counter"),
            ("worker.cells_failed", lambda: self.cells_failed,
             "Cells that raised on this worker", "counter"),
            ("worker.sessions", lambda: self.sessions,
             "Coordinator sessions served", "counter"),
            ("worker.heartbeats_sent", lambda: self.heartbeats_sent,
             "Lease keepalive heartbeats sent", "counter"),
            ("worker.retried_leases", lambda: self.retried_leases,
             "Leases received with attempt > 0 (another worker's retry)",
             "counter"),
            ("worker.leases_held", lambda: self.leases_held,
             "Leases currently held (0 or 1)", "gauge"),
            ("worker.cells_per_second", self.cells_per_second,
             "Completed cells per wall second of uptime", "gauge"),
            ("worker.heartbeat_rtt_seconds",
             lambda: self.heartbeat_rtt_seconds,
             "Last coordinator request/reply round-trip latency", "gauge"),
            ("worker.queue_wait_seconds", lambda: self.queue_wait_seconds,
             "Wall seconds the last lease request waited for work",
             "gauge"),
            ("worker.rss_bytes", _rss_bytes,
             "Peak resident set size of the worker process", "gauge"),
            ("worker.uptime_seconds", self.uptime,
             "Wall seconds since the agent started", "gauge"),
        ):
            registry.register(name, callback, help=help_text, kind=kind)


class _Keepalive:
    """Background heartbeats for the cell currently executing."""

    def __init__(
        self,
        sock: socket.socket,
        send_lock: threading.Lock,
        cell: int,
        interval: float,
        attempt: int = 0,
        telemetry: Optional[WorkerTelemetry] = None,
    ):
        self._sock = sock
        self._send_lock = send_lock
        self._cell = cell
        self._attempt = attempt
        self._telemetry = telemetry
        self._interval = max(0.1, interval)
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._loop, name="dispatch-keepalive", daemon=True
        )

    def __enter__(self) -> "_Keepalive":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join(timeout=2.0)

    def _loop(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                with self._send_lock:
                    send_message(
                        self._sock,
                        {
                            "type": HEARTBEAT,
                            "cell": self._cell,
                            "attempt": self._attempt,
                            "timestamp": time.time(),
                            "mono": time.monotonic(),
                        },
                    )
                if self._telemetry is not None:
                    self._telemetry.heartbeats_sent += 1
            except OSError:
                return  # connection is gone; the main loop will notice


def _connect(
    address: Tuple[str, int], timeout: float
) -> Optional[socket.socket]:
    """Dial the coordinator, retrying for up to ``timeout`` seconds."""
    deadline = time.monotonic() + timeout
    while True:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            sock.connect(address)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            return sock
        except OSError:
            sock.close()
            if time.monotonic() >= deadline:
                return None
            time.sleep(RECONNECT_INTERVAL)


def serve(
    connect: Tuple[str, int],
    *,
    connect_timeout: float = 10.0,
    worker_id: Optional[str] = None,
    crash_after: Optional[int] = None,
    log=None,
    span_log=None,
    metrics_port: Optional[int] = None,
    span_ring: int = DEFAULT_RING_SIZE,
    crash_dir=None,
) -> int:
    """Serve leases from the coordinator at ``connect``; returns exit status.

    Loops over coordinator *sessions* (one per batch) until no
    coordinator answers for ``connect_timeout`` seconds. ``worker_id``
    names this worker in rosters and manifests (default:
    ``host:pid``). ``crash_after`` is the chaos hook described in the
    module docstring. ``log`` is an optional callable for one-line
    status messages (the CLI passes a stderr printer).

    Observability (all off by default, all zero-cost when off):
    ``span_log`` appends this worker's cell-lifecycle span events to a
    JSONL file; ``metrics_port`` serves ``/metrics`` + ``/healthz``
    with live worker health (leases held, cells/s, round-trip latency,
    RSS, queue wait); ``crash_dir`` keeps the last ``span_ring`` span
    events in memory and flushes them to ``crash-<worker>.jsonl`` there
    on abnormal exit (SIGTERM, unhandled exception, or the chaos
    hook's simulated kill), so a dead worker's postmortem does not
    depend on what it managed to stream.
    """
    host = socket.gethostname()
    pid = os.getpid()
    identity = worker_id or f"{host}:{pid}"
    say = log if log is not None else (lambda message: None)
    spans: Optional[SpanRecorder] = None
    crash_path: Optional[pathlib.Path] = None
    if span_log is not None or crash_dir is not None:
        spans = SpanRecorder(
            span_log,
            source=identity,
            ring_size=span_ring if crash_dir is not None else 0,
        )
    if crash_dir is not None:
        crash_path = pathlib.Path(crash_dir) / crash_file_name(identity)
    telemetry = WorkerTelemetry(identity)
    obs_server = None
    if metrics_port is not None:
        from ...obs.http import ObservabilityServer

        registry = MetricsRegistry()
        telemetry.register_into(registry)
        obs_server = ObservabilityServer(
            metrics_port, registry, health=telemetry.health
        )
        bound_host, bound_port = obs_server.start()
        say(f"[worker {identity}] metrics on "
            f"http://{bound_host}:{bound_port}/metrics")
    _install_crash_handler(spans, crash_path)
    completed = 0
    sessions = 0
    say(f"[worker {identity}] connecting to {format_address(connect)}")
    try:
        while True:
            sock = _connect(connect, connect_timeout)
            if sock is None:
                break
            try:
                completed = _serve_session(
                    sock,
                    identity=identity,
                    host=host,
                    pid=pid,
                    coordinator=format_address(connect),
                    completed=completed,
                    crash_after=crash_after,
                    say=say,
                    spans=spans,
                    telemetry=telemetry,
                    crash_path=crash_path,
                )
                sessions += 1
            finally:
                try:
                    sock.close()
                except OSError:
                    pass
            say(f"[worker {identity}] session over ({completed} cells so "
                f"far); waiting for another coordinator")
    except BaseException:
        # Unhandled death: leave the forensics ring behind on the way
        # down (the ring outlives the streamed log's last flushed line).
        if spans is not None and crash_path is not None:
            spans.emit(span_kinds.CRASH, reason="unhandled-exception")
            spans.flush_ring(crash_path)
        raise
    finally:
        if obs_server is not None:
            obs_server.close()
        if spans is not None:
            spans.close()
    set_dispatch_context(None)
    if sessions == 0:
        say(f"[worker {identity}] no coordinator at "
            f"{format_address(connect)} within {connect_timeout:g}s")
        return 1
    say(f"[worker {identity}] done: {completed} cells over "
        f"{sessions} session(s)")
    return 0


def _install_crash_handler(
    spans: Optional[SpanRecorder], crash_path: Optional[pathlib.Path]
) -> None:
    """Flush the forensics ring on SIGTERM (best-effort, main thread only).

    ``kill <pid>`` is how deployments reap stuck workers; without this
    the ring would die with the process. SIGKILL still loses the ring —
    that is what the streamed ``--span-log`` is for.
    """
    if spans is None or crash_path is None:
        return

    def _on_sigterm(signum, frame):  # pragma: no cover - signal path
        spans.emit(span_kinds.CRASH, reason="sigterm")
        spans.flush_ring(crash_path)
        os._exit(128 + signal.SIGTERM)

    try:
        signal.signal(signal.SIGTERM, _on_sigterm)
    except ValueError:
        pass  # not the main thread (embedded use); ring flush still
        # covers the exception and chaos-hook paths


def _serve_session(
    sock: socket.socket,
    *,
    identity: str,
    host: str,
    pid: int,
    coordinator: str,
    completed: int,
    crash_after: Optional[int],
    say,
    spans: Optional[SpanRecorder] = None,
    telemetry: Optional[WorkerTelemetry] = None,
    crash_path: Optional[pathlib.Path] = None,
) -> int:
    """One hello-to-shutdown conversation; returns updated cell count."""
    send_lock = threading.Lock()
    set_dispatch_context({
        "backend": "remote",
        "worker": identity,
        "host": host,
        "pid": pid,
        "coordinator": coordinator,
    })
    if telemetry is not None:
        telemetry.sessions += 1
    if spans is not None:
        spans.emit(span_kinds.SESSION, worker=identity,
                   coordinator=coordinator)
    try:
        with send_lock:
            send_message(sock, {
                "type": HELLO,
                "protocol": PROTOCOL_VERSION,
                "worker": identity,
                "host": host,
                "pid": pid,
            })
        # ``wait_since`` anchors the queue-wait metric: how long this
        # worker has been asking for work since its last lease ended.
        wait_since = time.monotonic()
        while True:
            request_at = time.monotonic()
            with send_lock:
                send_message(sock, {"type": REQUEST})
            message = recv_message(sock)
            if telemetry is not None:
                # A genuine round trip on the lease socket — the
                # heartbeat-path latency an operator wants to see.
                telemetry.heartbeat_rtt_seconds = (
                    time.monotonic() - request_at
                )
            if message is None or message["type"] == SHUTDOWN:
                return completed
            if message["type"] == WAIT:
                time.sleep(float(message.get("delay", 0.2)))
                continue
            if message["type"] != LEASE:
                return completed
            if telemetry is not None:
                telemetry.queue_wait_seconds = (
                    time.monotonic() - wait_since
                )
            completed = _execute_lease(
                sock, send_lock, message,
                pid=pid, completed=completed,
                crash_after=crash_after, say=say,
                identity=identity, spans=spans,
                telemetry=telemetry, crash_path=crash_path,
            )
            wait_since = time.monotonic()
    except OSError:
        return completed  # coordinator went away mid-send


def _execute_lease(
    sock: socket.socket,
    send_lock: threading.Lock,
    lease: Dict[str, Any],
    *,
    pid: int,
    completed: int,
    crash_after: Optional[int],
    say,
    identity: Optional[str] = None,
    spans: Optional[SpanRecorder] = None,
    telemetry: Optional[WorkerTelemetry] = None,
    crash_path: Optional[pathlib.Path] = None,
) -> int:
    """Run one leased cell, streaming heartbeats; returns new count."""
    index = int(lease["cell"])
    label = lease.get("label")
    attempt = int(lease.get("attempt") or 0)
    run = lease.get("run")
    with send_lock:
        send_message(sock, {
            "type": PROGRESS,
            "kind": STARTED,
            "cell": index,
            "attempt": attempt,
            "label": label,
            "worker": pid,
            "timestamp": time.time(),
            "mono": time.monotonic(),
        })
    if telemetry is not None:
        telemetry.leases_held = 1
        telemetry.current_cell = index
        if attempt > 0:
            telemetry.retried_leases += 1
    if spans is not None:
        spans.emit(
            span_kinds.EXECUTE,
            run=run, cell=index, attempt=attempt, worker=identity,
            label=label,
        )
    if crash_after is not None and completed >= crash_after:
        # The chaos hook: die holding the lease, no goodbye. os._exit
        # skips every finally/atexit — as close to `kill -9` as a
        # process can do to itself. The forensics ring is flushed first,
        # standing in for the SIGTERM handler a real deployment's
        # reaper would have triggered.
        say(f"[worker] --crash-after {crash_after}: dying on cell {index}")
        if spans is not None and crash_path is not None:
            spans.emit(
                span_kinds.CRASH,
                run=run, cell=index, attempt=attempt, worker=identity,
                reason="crash-after",
            )
            spans.flush_ring(crash_path)
        os._exit(CRASH_EXIT_STATUS)
    interval = float(lease.get("timeout", 30.0)) / 3.0
    start = time.perf_counter()
    try:
        keepalive = _Keepalive(
            sock, send_lock, index, interval, attempt, telemetry
        )
        with keepalive:
            result = execute_cell(lease["task"])
        elapsed = time.perf_counter() - start
    except ReproError as error:
        if telemetry is not None:
            telemetry.cells_failed += 1
            telemetry.leases_held = 0
            telemetry.current_cell = None
        if spans is not None:
            spans.emit(
                span_kinds.ERROR,
                run=run, cell=index, attempt=attempt, worker=identity,
                error=str(error), error_kind=type(error).__name__,
            )
        with send_lock:
            send_message(sock, {
                "type": ERROR,
                "cell": index,
                "attempt": attempt,
                "label": label,
                "error": str(error),
                "kind": type(error).__name__,
                "traceback": traceback.format_exc(),
                "timestamp": time.time(),
                "mono": time.monotonic(),
            })
        return completed
    if spans is not None:
        spans.emit(
            span_kinds.FINISH,
            run=run, cell=index, attempt=attempt, worker=identity,
            elapsed=elapsed,
        )
    with send_lock:
        send_message(sock, {
            "type": PROGRESS,
            "kind": FINISHED,
            "cell": index,
            "attempt": attempt,
            "label": label,
            "worker": pid,
            "elapsed": elapsed,
            "timestamp": time.time(),
            "mono": time.monotonic(),
        })
        send_message(sock, {
            "type": RESULT,
            "cell": index,
            "attempt": attempt,
            "label": label,
            "worker": pid,
            "elapsed": elapsed,
            "timestamp": time.time(),
            "mono": time.monotonic(),
            "payload": result_to_wire(result),
        })
    if spans is not None:
        spans.emit(
            span_kinds.RESULT_SENT,
            run=run, cell=index, attempt=attempt, worker=identity,
        )
    if telemetry is not None:
        telemetry.cells_completed += 1
        telemetry.leases_held = 0
        telemetry.current_cell = None
    say(f"[worker] cell {index}"
        + (f" ({label})" if label else "")
        + f" done in {elapsed:.3f}s")
    return completed + 1
