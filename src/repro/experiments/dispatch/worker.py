"""The dispatch worker agent behind ``repro worker serve``.

A worker connects to a coordinator, pulls leased cells one at a time,
executes each through the same code path the local backend uses —
:func:`~repro.experiments.simulation.run_simulation` for plain cells,
the idempotent
:func:`~repro.experiments.checkpointing.run_checkpointed_cell` for
checkpointed ones — and streams progress heartbeats back inline on the
same connection, so the coordinator's ``--progress`` view is one live
picture across every host.

Liveness: while a cell runs, a keepalive thread sends ``heartbeat``
messages at a third of the lease timeout, so a *busy* worker never loses
its lease; a *dead or stalled* one stops heartbeating and the
coordinator re-leases its cell. Execution is therefore at-least-once —
safe because every cell is a pure function of its config and the
checkpoint ledger makes retries resume instead of redo.

Session lifecycle: a coordinator batch ends with ``shutdown`` (or simply
a dropped connection); the worker then tries to *reconnect*, because
multi-batch commands (the figure generators) run several batches over
one listening socket. Only when no coordinator answers for
``connect_timeout`` seconds does the agent exit — cleanly, with status
0, if it ever served; with status 1 if it never reached a coordinator
at all.

``crash_after`` is the chaos hook the crash-tolerance tests and the CI
``dispatch-smoke`` job use: after completing N cells the worker takes
one more lease, reports it started, and dies via ``os._exit`` — a real
kill, mid-lease, with no goodbye on the wire.
"""

from __future__ import annotations

import os
import socket
import threading
import time
import traceback
from typing import Any, Dict, Optional, Tuple

from ...errors import ReproError
from ...obs.progress import FINISHED, STARTED
from ..persistence import config_from_dict
from ..simulation import run_simulation
from .context import set_dispatch_context
from .protocol import (
    ERROR,
    HEARTBEAT,
    HELLO,
    LEASE,
    PROGRESS,
    PROTOCOL_VERSION,
    REQUEST,
    RESULT,
    SHUTDOWN,
    WAIT,
    format_address,
    recv_message,
    result_to_wire,
    send_message,
)

#: Seconds between connection attempts while (re)connecting.
RECONNECT_INTERVAL = 0.2

#: Exit status of a ``--crash-after`` simulated kill (distinctive, so a
#: test watching the process can tell the planned crash from a bug).
CRASH_EXIT_STATUS = 17


def execute_cell(task: Dict[str, Any]) -> Any:
    """Run one leased cell task; returns its ``SimulationResult``.

    ``task`` is the coordinator's JSON payload: the cell's serialized
    config, its engine mode, and — when the batch runs under
    checkpointing — the cell's ledger directory and cadence, in which
    case execution goes through the idempotent
    :func:`~repro.experiments.checkpointing.run_checkpointed_cell`
    (reload finished cells, resume interrupted ones, start fresh ones).

    An optional ``pace`` (wall seconds) holds the cell to at least that
    duration by sleeping out any remainder after the simulation — the
    dispatch benchmark's stand-in for remote compute, so fabric overlap
    is measurable even on a single-core host where extra local
    processes cannot make CPU-bound cells faster. Pacing is pure
    timing: the result bytes are exactly the unpaced cell's.
    """
    engine_mode = task.get("engine_mode", "event")
    pace = task.get("pace")
    start = time.perf_counter() if pace is not None else 0.0
    checkpoint = task.get("checkpoint")
    if checkpoint is not None:
        from ..checkpointing import run_checkpointed_cell

        result = run_checkpointed_cell((
            task["config"],
            checkpoint["directory"],
            float(checkpoint["every"]),
            engine_mode,
        ))
    else:
        result = run_simulation(
            config_from_dict(task["config"]), engine_mode=engine_mode
        )
    if pace is not None:
        remaining = float(pace) - (time.perf_counter() - start)
        if remaining > 0:
            time.sleep(remaining)
    return result


class _Keepalive:
    """Background heartbeats for the cell currently executing."""

    def __init__(
        self,
        sock: socket.socket,
        send_lock: threading.Lock,
        cell: int,
        interval: float,
    ):
        self._sock = sock
        self._send_lock = send_lock
        self._cell = cell
        self._interval = max(0.1, interval)
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._loop, name="dispatch-keepalive", daemon=True
        )

    def __enter__(self) -> "_Keepalive":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join(timeout=2.0)

    def _loop(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                with self._send_lock:
                    send_message(
                        self._sock,
                        {"type": HEARTBEAT, "cell": self._cell},
                    )
            except OSError:
                return  # connection is gone; the main loop will notice


def _connect(
    address: Tuple[str, int], timeout: float
) -> Optional[socket.socket]:
    """Dial the coordinator, retrying for up to ``timeout`` seconds."""
    deadline = time.monotonic() + timeout
    while True:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            sock.connect(address)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            return sock
        except OSError:
            sock.close()
            if time.monotonic() >= deadline:
                return None
            time.sleep(RECONNECT_INTERVAL)


def serve(
    connect: Tuple[str, int],
    *,
    connect_timeout: float = 10.0,
    worker_id: Optional[str] = None,
    crash_after: Optional[int] = None,
    log=None,
) -> int:
    """Serve leases from the coordinator at ``connect``; returns exit status.

    Loops over coordinator *sessions* (one per batch) until no
    coordinator answers for ``connect_timeout`` seconds. ``worker_id``
    names this worker in rosters and manifests (default:
    ``host:pid``). ``crash_after`` is the chaos hook described in the
    module docstring. ``log`` is an optional callable for one-line
    status messages (the CLI passes a stderr printer).
    """
    host = socket.gethostname()
    pid = os.getpid()
    identity = worker_id or f"{host}:{pid}"
    say = log if log is not None else (lambda message: None)
    completed = 0
    sessions = 0
    say(f"[worker {identity}] connecting to {format_address(connect)}")
    while True:
        sock = _connect(connect, connect_timeout)
        if sock is None:
            break
        try:
            completed = _serve_session(
                sock,
                identity=identity,
                host=host,
                pid=pid,
                coordinator=format_address(connect),
                completed=completed,
                crash_after=crash_after,
                say=say,
            )
            sessions += 1
        finally:
            try:
                sock.close()
            except OSError:
                pass
        say(f"[worker {identity}] session over ({completed} cells so far); "
            f"waiting for another coordinator")
    set_dispatch_context(None)
    if sessions == 0:
        say(f"[worker {identity}] no coordinator at "
            f"{format_address(connect)} within {connect_timeout:g}s")
        return 1
    say(f"[worker {identity}] done: {completed} cells over "
        f"{sessions} session(s)")
    return 0


def _serve_session(
    sock: socket.socket,
    *,
    identity: str,
    host: str,
    pid: int,
    coordinator: str,
    completed: int,
    crash_after: Optional[int],
    say,
) -> int:
    """One hello-to-shutdown conversation; returns updated cell count."""
    send_lock = threading.Lock()
    set_dispatch_context({
        "backend": "remote",
        "worker": identity,
        "host": host,
        "pid": pid,
        "coordinator": coordinator,
    })
    try:
        with send_lock:
            send_message(sock, {
                "type": HELLO,
                "protocol": PROTOCOL_VERSION,
                "worker": identity,
                "host": host,
                "pid": pid,
            })
        while True:
            with send_lock:
                send_message(sock, {"type": REQUEST})
            message = recv_message(sock)
            if message is None or message["type"] == SHUTDOWN:
                return completed
            if message["type"] == WAIT:
                time.sleep(float(message.get("delay", 0.2)))
                continue
            if message["type"] != LEASE:
                return completed
            completed = _execute_lease(
                sock, send_lock, message,
                pid=pid, completed=completed,
                crash_after=crash_after, say=say,
            )
    except OSError:
        return completed  # coordinator went away mid-send


def _execute_lease(
    sock: socket.socket,
    send_lock: threading.Lock,
    lease: Dict[str, Any],
    *,
    pid: int,
    completed: int,
    crash_after: Optional[int],
    say,
) -> int:
    """Run one leased cell, streaming heartbeats; returns new count."""
    index = int(lease["cell"])
    label = lease.get("label")
    with send_lock:
        send_message(sock, {
            "type": PROGRESS,
            "kind": STARTED,
            "cell": index,
            "label": label,
            "worker": pid,
            "timestamp": time.time(),
        })
    if crash_after is not None and completed >= crash_after:
        # The chaos hook: die holding the lease, no goodbye. os._exit
        # skips every finally/atexit — as close to `kill -9` as a
        # process can do to itself.
        say(f"[worker] --crash-after {crash_after}: dying on cell {index}")
        os._exit(CRASH_EXIT_STATUS)
    interval = float(lease.get("timeout", 30.0)) / 3.0
    start = time.perf_counter()
    try:
        with _Keepalive(sock, send_lock, index, interval):
            result = execute_cell(lease["task"])
        elapsed = time.perf_counter() - start
    except ReproError as error:
        with send_lock:
            send_message(sock, {
                "type": ERROR,
                "cell": index,
                "label": label,
                "error": str(error),
                "kind": type(error).__name__,
                "traceback": traceback.format_exc(),
            })
        return completed
    with send_lock:
        send_message(sock, {
            "type": PROGRESS,
            "kind": FINISHED,
            "cell": index,
            "label": label,
            "worker": pid,
            "elapsed": elapsed,
            "timestamp": time.time(),
        })
        send_message(sock, {
            "type": RESULT,
            "cell": index,
            "label": label,
            "worker": pid,
            "elapsed": elapsed,
            "timestamp": time.time(),
            "payload": result_to_wire(result),
        })
    say(f"[worker] cell {index}"
        + (f" ({label})" if label else "")
        + f" done in {elapsed:.3f}s")
    return completed + 1
