"""Process-parallel execution of independent experiment cells.

The paper's studies are *embarrassingly parallel*: every cell of a
factorial grid, every value of a sweep, and every replication is one
fully independent simulation whose seed is derived up front from the
master seed (:func:`repro.sim.rng.derive_seed`).  A simulation is a pure
function of its :class:`~repro.experiments.config.SimulationConfig`, so
the same set of configs produces bit-identical results no matter how
many worker processes run them or in which order they complete.

:class:`ParallelExecutor` exploits that:

* ``workers=1`` (the default everywhere) is a dependency-free serial
  loop — no processes, no pickling, and exceptions propagate with their
  original traceback;
* ``workers>1`` fans cells out over a
  :class:`concurrent.futures.ProcessPoolExecutor`, submitting *chunks*
  of cells to amortize inter-process overhead, and reassembles results
  in submission order so outputs are independent of completion order;
* every cell's wall-clock time is captured (inside the worker, around
  the cell alone) and summarized in an :class:`ExecutionStats`, whose
  ``speedup`` compares the sum of per-cell times against the observed
  wall time.

The price of ``workers>1`` is process startup plus pickling each
:class:`SimulationConfig` out and each
:class:`~repro.experiments.metrics.SimulationResult` back; see
``docs/PERFORMANCE.md`` for measurements and worker-count guidance.
"""

from __future__ import annotations

import functools
import multiprocessing
import os
import pathlib
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar, Union

from ..errors import ConfigurationError
from ..obs.progress import FINISHED, STARTED, ProgressEvent, ProgressSink
from .config import SimulationConfig
from .metrics import SimulationResult
from .simulation import ENGINE_MODES, run_simulation

T = TypeVar("T")
R = TypeVar("R")
PathLike = Union[str, pathlib.Path]


def resolve_workers(workers: Optional[int]) -> int:
    """Validate a worker count; ``None`` means one per available CPU."""
    if workers is None:
        return os.cpu_count() or 1
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers!r}")
    return int(workers)


@dataclass
class ExecutionStats:
    """Timing of one batch of cells run through the executor."""

    #: Worker processes used (1 = in-process serial loop; for the
    #: remote backend, the number of distinct workers that connected).
    workers: int
    #: Wall-clock seconds for the whole batch, including pool startup.
    wall_time: float
    #: Per-cell wall-clock seconds, in submission order, measured inside
    #: the worker around the cell function alone.
    cell_times: List[float]

    @classmethod
    def from_completions(
        cls,
        workers: int,
        wall_time: float,
        completions: Sequence[Sequence],
    ) -> "ExecutionStats":
        """Build stats from ``(index, elapsed, ...)`` completion records.

        The local pool collects per-cell times in submission order, but
        remote leases return in *arbitrary* order — and, after a crash
        re-lease, a cell can even complete more than once (a stalled
        worker finishing late behind the retry's result). Summing raw
        completion times in arrival order would misalign
        :attr:`cell_times` with submission-order labels and double-count
        re-leased cells in :attr:`total_cell_time` and :attr:`speedup`.
        This constructor reorders by submission index and keeps only
        each cell's **first** completion, so the stats are identical
        however completions interleaved.
        """
        first: dict = {}
        for completion in completions:
            index, elapsed = int(completion[0]), float(completion[1])
            if index not in first:
                first[index] = elapsed
        return cls(
            workers=workers,
            wall_time=wall_time,
            cell_times=[first[index] for index in sorted(first)],
        )

    @property
    def cell_count(self) -> int:
        return len(self.cell_times)

    @property
    def total_cell_time(self) -> float:
        """Sum of per-cell times — the serial-equivalent workload."""
        return sum(self.cell_times)

    @property
    def mean_cell_time(self) -> float:
        return self.total_cell_time / len(self.cell_times) if self.cell_times else 0.0

    @property
    def max_cell_time(self) -> float:
        return max(self.cell_times) if self.cell_times else 0.0

    @property
    def speedup(self) -> float:
        """Serial-equivalent time over observed wall time.

        ``0.0`` for an empty batch (there was nothing to speed up);
        ``inf`` when cells ran but the wall clock measured zero — work
        happened in no measurable time, which only a degenerate clock
        resolution produces, and which must not masquerade as the 0.0
        of an empty batch.
        """
        if not self.cell_times:
            return 0.0
        if self.wall_time <= 0:
            return float("inf")
        return self.total_cell_time / self.wall_time

    def summary_rows(self) -> List[Tuple[str, str]]:
        """(label, value) pairs for the reporting layer."""
        if not self.cell_times or self.wall_time <= 0:
            rendered_speedup = "n/a"
        else:
            rendered_speedup = f"{self.speedup:.2f}x"
        return [
            ("workers", str(self.workers)),
            ("cells", str(self.cell_count)),
            ("wall time", f"{self.wall_time:.3f} s"),
            ("cell time (mean)", f"{self.mean_cell_time:.3f} s"),
            ("cell time (max)", f"{self.max_cell_time:.3f} s"),
            ("cell time (total)", f"{self.total_cell_time:.3f} s"),
            ("speedup vs serial", rendered_speedup),
        ]


def _timed_call(fn: Callable[[T], R], item: T) -> Tuple[R, float]:
    """Run one cell and capture its wall time (runs inside the worker)."""
    start = time.perf_counter()
    result = fn(item)
    return result, time.perf_counter() - start


def _run_chunk(
    fn: Callable[[T], R],
    chunk: Sequence[T],
    queue=None,
    base_index: int = 0,
    labels: Optional[Sequence[Optional[str]]] = None,
) -> List[Tuple[R, float]]:
    """Worker entry point: run one chunk of cells, timing each.

    With a ``queue`` (a picklable ``multiprocessing.Manager`` queue),
    one ``started`` and one ``finished`` :class:`ProgressEvent` per cell
    are put on it, carrying the cell's submission-order index
    (``base_index`` + position), its label and this worker's pid. The
    heartbeats are pure observation — they never touch the cell's
    work — so results are bit-identical with or without a queue.
    """
    if queue is None:
        return [_timed_call(fn, item) for item in chunk]
    pid = os.getpid()
    outcomes: List[Tuple[R, float]] = []
    for position, item in enumerate(chunk):
        index = base_index + position
        label = labels[position] if labels is not None else None
        queue.put(ProgressEvent(
            kind=STARTED, index=index, label=label, worker=pid,
            timestamp=time.time(),
        ))
        outcome = _timed_call(fn, item)
        outcomes.append(outcome)
        queue.put(ProgressEvent(
            kind=FINISHED, index=index, label=label, worker=pid,
            elapsed=outcome[1], timestamp=time.time(),
        ))
    return outcomes


def _drain_queue(queue, sink: ProgressSink) -> None:
    """Forward queued heartbeats to ``sink`` until the ``None`` sentinel.

    Runs on a daemon thread in the parent process, so :meth:`emit` is
    never called concurrently with itself and terminal rendering stays
    off the result-collection path.
    """
    while True:
        event = queue.get()
        if event is None:
            return
        sink.emit(event)


class ParallelExecutor:
    """Run independent cells serially or across worker processes.

    Parameters
    ----------
    workers:
        Worker processes. ``1`` (default) runs everything in-process
        with zero dependencies on :mod:`multiprocessing`; ``None`` uses
        one worker per available CPU. Values below 1 raise
        :class:`~repro.errors.ConfigurationError`.
    chunk_size:
        Cells submitted per pool task. ``None`` (default) picks
        ``max(1, cells // (workers * 4))`` — large enough to amortize
        submission overhead, small enough to keep workers load-balanced.
        Explicit values below 1 raise
        :class:`~repro.errors.ConfigurationError`.
    progress:
        An optional :class:`~repro.obs.progress.ProgressSink` receiving
        ``begin``/``started``/``finished``/``finish`` callbacks for each
        batch. ``None`` (default) keeps the executor exactly as before —
        no queue, no manager process, no per-cell overhead. Heartbeats
        are emitted from inside the workers (over a ``multiprocessing``
        manager queue) or inline on the serial path, and never perturb
        cell seeding or results.
    checkpoint_dir:
        Optional directory making :meth:`run_simulations` batches
        *restartable*: each cell checkpoints into its own
        ``cell-NNNN/`` subdirectory every ``checkpoint_every`` simulated
        seconds, and a rerun of the same batch over the same directory
        reloads completed cells, resumes interrupted ones from their
        last digest-verified snapshot and runs the rest fresh — with
        results bit-identical to an uninterrupted batch (see
        :mod:`repro.experiments.checkpointing`). ``None`` (default)
        changes nothing.
    checkpoint_every:
        Checkpoint cadence in simulated seconds; required (> 0) when
        ``checkpoint_dir`` is set.
    engine_mode:
        Dispatch engine for every cell: ``"event"`` (default, the
        reference per-event engine) or ``"fastforward"`` (the hybrid
        fluid/event engine of :mod:`repro.sim.fastforward`). Both modes
        produce bit-identical results — the purity property the
        executor is built on is mode-independent — so this only changes
        wall-clock time, never outputs.
    backend:
        Where :meth:`run_simulations` batches physically run:
        ``"local"`` (default — the process-pool path above, byte-for-byte
        unchanged), ``"remote"`` (a coordinator leasing cells to
        ``repro worker serve`` agents over TCP; see
        :mod:`repro.experiments.dispatch` and ``docs/DISTRIBUTED.md``),
        or a ready :class:`~repro.experiments.dispatch.backend.Backend`
        instance. Results are bit-identical across backends.
    listen, lease_timeout, dispatch_timeout, on_listen:
        Remote-backend options (ignored for ``"local"``): the
        coordinator's bind address (``"host:port"``, tuple, or ``None``
        for an ephemeral localhost port), the per-lease heartbeat
        deadline, an optional overall batch deadline, and an optional
        bound-address callback.
    span_log, metrics_port:
        Remote-backend observability (ignored for ``"local"``): an
        optional JSONL path receiving coordinator span events
        (:mod:`repro.obs.spans`) and an optional port for the
        coordinator's ``/metrics`` + ``/healthz`` endpoint. Both default
        to off, in which case the observability plane is provably
        absent — results are bit-identical either way.

    After each :meth:`map` / :meth:`run_simulations` call,
    :attr:`last_stats` holds the batch's :class:`ExecutionStats`.
    """

    def __init__(
        self,
        workers: Optional[int] = 1,
        chunk_size: Optional[int] = None,
        progress: Optional[ProgressSink] = None,
        checkpoint_dir: Optional[PathLike] = None,
        checkpoint_every: float = 0.0,
        engine_mode: str = "event",
        backend=None,
        listen=None,
        lease_timeout: float = 30.0,
        dispatch_timeout: Optional[float] = None,
        on_listen=None,
        span_log=None,
        metrics_port: Optional[int] = None,
    ):
        self.workers = resolve_workers(workers)
        if chunk_size is not None and chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1, got {chunk_size!r}"
            )
        self.chunk_size = chunk_size
        self.progress = progress
        if checkpoint_dir is not None and checkpoint_every <= 0:
            raise ConfigurationError(
                f"checkpoint_every must be > 0 when checkpoint_dir is set, "
                f"got {checkpoint_every!r}"
            )
        self.checkpoint_dir = (
            pathlib.Path(checkpoint_dir) if checkpoint_dir is not None else None
        )
        self.checkpoint_every = float(checkpoint_every)
        if engine_mode not in ENGINE_MODES:
            raise ConfigurationError(
                f"unknown engine mode {engine_mode!r}; "
                f"choose from {ENGINE_MODES}"
            )
        self.engine_mode = engine_mode
        # Imported here, not at module top: the dispatch package pulls
        # in the persistence layer, which circularly reaches back to
        # this module during package import.
        from .dispatch.backend import resolve_backend

        self.backend = resolve_backend(
            backend,
            listen=listen,
            lease_timeout=lease_timeout,
            dispatch_timeout=dispatch_timeout,
            on_listen=on_listen,
            span_log=span_log,
            metrics_port=metrics_port,
        )
        self.last_stats: Optional[ExecutionStats] = None

    def _chunks(self, items: List[T]) -> List[List[T]]:
        size = self.chunk_size
        if size is None:
            size = max(1, len(items) // (self.workers * 4))
        return [items[i : i + size] for i in range(0, len(items), size)]

    def map(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        labels: Optional[Sequence[Optional[str]]] = None,
    ) -> List[R]:
        """Apply ``fn`` to every item; results come back in input order.

        With ``workers=1`` this is a plain loop: ``fn`` and the items
        need not be picklable and any exception propagates untouched.
        With ``workers>1``, ``fn`` must be a module-level callable and
        items/results must pickle; a cell's exception is re-raised here
        as soon as its chunk is collected.

        ``labels`` (optional, one per item) name the cells in progress
        heartbeats; they are ignored without a progress sink.

        :meth:`map` always runs on this machine — arbitrary callables
        cannot cross the dispatch wire — so it refuses to run under a
        remote backend rather than silently executing locally.
        """
        if self.backend.name != "local":
            raise ConfigurationError(
                f"ParallelExecutor.map() requires the local backend "
                f"(got {self.backend.name!r}); only run_simulations() "
                f"batches can be dispatched remotely"
            )
        items = list(items)
        if labels is not None and len(labels) != len(items):
            raise ConfigurationError(
                f"got {len(labels)} labels for {len(items)} items"
            )
        sink = self.progress
        if sink is None:
            return self._map_silent(fn, items)
        sink.begin(len(items), self.workers)
        try:
            results = self._map_observed(fn, items, labels)
        except BaseException:
            sink.finish(None)
            raise
        sink.finish(self.last_stats)
        return results

    def _finish_batch(
        self, start: float, outcomes: List[Tuple[R, float]]
    ) -> List[R]:
        """Record :attr:`last_stats` and strip the per-cell timings."""
        self.last_stats = ExecutionStats(
            workers=self.workers,
            wall_time=time.perf_counter() - start,
            cell_times=[elapsed for _, elapsed in outcomes],
        )
        return [result for result, _ in outcomes]

    def _map_silent(self, fn: Callable[[T], R], items: List[T]) -> List[R]:
        """The original no-observer path: zero progress overhead."""
        start = time.perf_counter()
        if self.workers == 1 or len(items) <= 1:
            outcomes = [_timed_call(fn, item) for item in items]
        else:
            chunks = self._chunks(items)
            pool_size = min(self.workers, len(chunks))
            with ProcessPoolExecutor(max_workers=pool_size) as pool:
                futures = [
                    pool.submit(_run_chunk, fn, chunk) for chunk in chunks
                ]
                # Collect in submission order: results are positionally
                # stable regardless of which worker finishes first.
                outcomes = [
                    outcome for future in futures for outcome in future.result()
                ]
        return self._finish_batch(start, outcomes)

    def _map_observed(
        self,
        fn: Callable[[T], R],
        items: List[T],
        labels: Optional[Sequence[Optional[str]]],
    ) -> List[R]:
        """The same batch semantics, with per-cell heartbeats emitted."""
        sink = self.progress
        start = time.perf_counter()
        if self.workers == 1 or len(items) <= 1:
            pid = os.getpid()
            outcomes = []
            for index, item in enumerate(items):
                label = labels[index] if labels is not None else None
                sink.emit(ProgressEvent(
                    kind=STARTED, index=index, label=label, worker=pid,
                    timestamp=time.time(),
                ))
                outcome = _timed_call(fn, item)
                outcomes.append(outcome)
                sink.emit(ProgressEvent(
                    kind=FINISHED, index=index, label=label, worker=pid,
                    elapsed=outcome[1], timestamp=time.time(),
                ))
            return self._finish_batch(start, outcomes)

        chunks = self._chunks(items)
        pool_size = min(self.workers, len(chunks))
        # A Manager queue (unlike a raw mp.Queue) pickles as a pool-task
        # argument; created only here, so silent batches pay nothing.
        with multiprocessing.Manager() as manager:
            queue = manager.Queue()
            drainer = threading.Thread(
                target=_drain_queue, args=(queue, sink), daemon=True
            )
            drainer.start()
            try:
                with ProcessPoolExecutor(max_workers=pool_size) as pool:
                    futures = []
                    base_index = 0
                    for chunk in chunks:
                        chunk_labels = (
                            list(labels[base_index:base_index + len(chunk)])
                            if labels is not None else None
                        )
                        futures.append(pool.submit(
                            _run_chunk, fn, chunk, queue, base_index,
                            chunk_labels,
                        ))
                        base_index += len(chunk)
                    outcomes = [
                        outcome
                        for future in futures
                        for outcome in future.result()
                    ]
            finally:
                # All workers are done (or dead): the queue holds every
                # event they ever put, so the sentinel lands last and
                # the drainer forwards everything before exiting.
                queue.put(None)
                drainer.join()
        return self._finish_batch(start, outcomes)

    def run_simulations(
        self,
        configs: Sequence[SimulationConfig],
        labels: Optional[Sequence[Optional[str]]] = None,
    ) -> List[SimulationResult]:
        """Run one simulation per config (the common experiment cell).

        With :attr:`checkpoint_dir` set, every cell runs under periodic
        checkpointing in its own ``cell-NNNN/`` subdirectory (numbered
        in submission order, which is deterministic for a given batch) —
        completed cells are reloaded and interrupted ones resumed when
        the same batch is rerun over the same directory.

        The batch executes on :attr:`backend` — results are
        bit-identical whichever backend (and however many workers or
        hosts) ran it.
        """
        return self.backend.run_simulations(self, configs, labels)

    def dispatch_info(self):
        """Manifest-ready dispatch description of the last remote batch.

        ``None`` under the local backend — local manifests are exactly
        what they were before backends existed.
        """
        info = getattr(self.backend, "dispatch_info", None)
        return info() if info is not None else None

    def _run_simulations_local(
        self,
        configs: Sequence[SimulationConfig],
        labels: Optional[Sequence[Optional[str]]] = None,
    ) -> List[SimulationResult]:
        """The local (serial / process-pool) simulation batch path."""
        if self.checkpoint_dir is None:
            cell = run_simulation
            if self.engine_mode != "event":
                # functools.partial of a module-level function pickles
                # into worker processes; a lambda would not.
                cell = functools.partial(
                    run_simulation, engine_mode=self.engine_mode
                )
            return self.map(cell, configs, labels=labels)
        from .checkpointing import make_cell_task, run_checkpointed_cell

        tasks = [
            make_cell_task(
                config,
                self.checkpoint_dir / f"cell-{index:04d}",
                self.checkpoint_every,
                self.engine_mode,
            )
            for index, config in enumerate(configs)
        ]
        return self.map(run_checkpointed_cell, tasks, labels=labels)

    def __repr__(self) -> str:
        return (
            f"<ParallelExecutor workers={self.workers} "
            f"chunk_size={self.chunk_size} backend={self.backend.name}>"
        )
