"""Per-figure experiment definitions — one function per paper artifact.

Each ``figN`` function reruns the experiments behind the corresponding
figure of the paper and returns a :class:`FigureResult` holding the same
series the paper plots (labels included). Tables 1 and 2 are exposed as
data by :func:`table1` and :func:`table2`.

Runtime control: the paper simulates 5 hours per point; that is the
default here, but every function takes ``duration`` so the benchmark
harness can run shorter seeded runs. The helper
:func:`default_duration` honours the ``REPRO_PAPER_FIDELITY``
environment variable (any non-empty value restores full 5-hour runs).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..web.cluster import HETEROGENEITY_LEVELS
from .config import PAPER_DURATION, SimulationConfig
from .executor import ParallelExecutor
from .metrics import OVERLOAD_THRESHOLD
from .runner import compare_policies, sweep
from .simulation import run_simulation

#: Benchmark-friendly default duration (one simulated hour).
QUICK_DURATION = 3600.0

#: Grid on which the Figs. 1-2 cumulative-frequency curves are evaluated.
MAX_UTILIZATION_GRID = [round(0.5 + 0.02 * i, 2) for i in range(26)]

FIG1_POLICIES = [
    "IDEAL",
    "DRR2-TTL/S_K",
    "DRR-TTL/S_K",
    "DRR2-TTL/S_2",
    "DRR-TTL/S_2",
    "DRR2-TTL/S_1",
    "DRR-TTL/S_1",
    "RR",
]

FIG2_POLICIES = [
    "IDEAL",
    "PRR2-TTL/K",
    "PRR-TTL/K",
    "PRR2-TTL/2",
    "PRR-TTL/2",
    "PRR2-TTL/1",
    "PRR-TTL/1",
    "RR",
]

FIG3_POLICIES = [
    "DRR2-TTL/S_K",
    "DRR2-TTL/S_2",
    "PRR2-TTL/K",
    "PRR2-TTL/2",
    "DAL",
    "RR",
]

FIG45_POLICIES = [
    "DRR2-TTL/S_K",
    "DRR-TTL/S_K",
    "PRR2-TTL/K",
    "PRR-TTL/K",
    "PRR2-TTL/2",
]

FIG67_POLICIES = [
    "DRR2-TTL/S_K",
    "DRR-TTL/S_K",
    "PRR2-TTL/K",
    "PRR-TTL/K",
    "DRR2-TTL/S_2",
    "DRR-TTL/S_2",
    "PRR2-TTL/2",
    "PRR-TTL/2",
]

HETEROGENEITY_SWEEP = [20, 35, 50, 65]
MIN_TTL_SWEEP = [0.0, 30.0, 60.0, 90.0, 120.0]
ERROR_SWEEP = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5]


def default_duration() -> float:
    """Quick (1 h) by default; full 5 h with ``REPRO_PAPER_FIDELITY=1``."""
    if os.environ.get("REPRO_PAPER_FIDELITY"):
        return PAPER_DURATION
    return QUICK_DURATION


@dataclass
class Series:
    """One plotted line: a label and its (x, y) points."""

    label: str
    x: List[float]
    y: List[float]

    def as_rows(self) -> List[Tuple[float, float]]:
        return list(zip(self.x, self.y))


@dataclass
class FigureResult:
    """A regenerated paper figure."""

    figure_id: str
    title: str
    x_label: str
    y_label: str
    series: List[Series]
    notes: str = ""

    def series_by_label(self) -> Dict[str, Series]:
        return {s.label: s for s in self.series}

    def y_at(self, label: str, x: float) -> float:
        """The y value of ``label``'s series at grid point ``x``."""
        series = self.series_by_label()[label]
        return series.y[series.x.index(x)]


def _base_config(duration: float, seed: int, **overrides) -> SimulationConfig:
    return SimulationConfig(duration=duration, seed=seed, **overrides)


def _cdf_figure(
    figure_id: str,
    title: str,
    policies: Sequence[str],
    heterogeneity: int,
    duration: Optional[float],
    seed: int,
    grid: Sequence[float],
    workers: int = 1,
    executor: Optional[ParallelExecutor] = None,
) -> FigureResult:
    duration = duration if duration is not None else default_duration()
    base = _base_config(duration, seed, heterogeneity=heterogeneity)
    results = compare_policies(base, policies, workers=workers, executor=executor)
    series = [
        Series(
            label=policy,
            x=list(grid),
            y=[results[policy].cdf().probability_below(x) for x in grid],
        )
        for policy in policies
    ]
    return FigureResult(
        figure_id=figure_id,
        title=title,
        x_label="Max Utilization",
        y_label="Cumulative Frequency",
        series=series,
        notes=f"heterogeneity {heterogeneity}%, duration {duration:g}s, seed {seed}",
    )


def fig1(
    duration: Optional[float] = None,
    seed: int = 1,
    grid: Sequence[float] = tuple(MAX_UTILIZATION_GRID),
    workers: int = 1,
    executor: Optional[ParallelExecutor] = None,
) -> FigureResult:
    """Figure 1 — deterministic algorithms, heterogeneity 20%."""
    return _cdf_figure(
        "fig1",
        "Deterministic algorithms (Het. 20%)",
        FIG1_POLICIES,
        heterogeneity=20,
        duration=duration,
        seed=seed,
        grid=grid,
        workers=workers,
        executor=executor,
    )


def fig2(
    duration: Optional[float] = None,
    seed: int = 1,
    grid: Sequence[float] = tuple(MAX_UTILIZATION_GRID),
    workers: int = 1,
    executor: Optional[ParallelExecutor] = None,
) -> FigureResult:
    """Figure 2 — probabilistic algorithms, heterogeneity 35%."""
    return _cdf_figure(
        "fig2",
        "Probabilistic algorithms (Het. 35%)",
        FIG2_POLICIES,
        heterogeneity=35,
        duration=duration,
        seed=seed,
        grid=grid,
        workers=workers,
        executor=executor,
    )


def _sweep_figure(
    figure_id: str,
    title: str,
    x_label: str,
    policies: Sequence[str],
    parameter: str,
    values: Sequence[float],
    duration: Optional[float],
    seed: int,
    threshold: float = OVERLOAD_THRESHOLD,
    workers: int = 1,
    executor: Optional[ParallelExecutor] = None,
    **base_overrides,
) -> FigureResult:
    duration = duration if duration is not None else default_duration()
    series = []
    for policy in policies:
        base = _base_config(duration, seed, policy=policy, **base_overrides)
        rows = sweep(
            base,
            parameter,
            values,
            metric=lambda result: result.prob_max_below(threshold),
            workers=workers,
            executor=executor,
        )
        series.append(
            Series(
                label=policy,
                x=[float(value) for value, _, _ in rows],
                y=[metric_value for _, metric_value, _ in rows],
            )
        )
    return FigureResult(
        figure_id=figure_id,
        title=title,
        x_label=x_label,
        y_label=f"Prob(maxUtilization < {threshold:g})",
        series=series,
        notes=f"duration {duration:g}s, seed {seed}",
    )


def fig3(
    duration: Optional[float] = None,
    seed: int = 1,
    levels: Sequence[int] = tuple(HETEROGENEITY_SWEEP),
    workers: int = 1,
    executor: Optional[ParallelExecutor] = None,
) -> FigureResult:
    """Figure 3 — sensitivity to system heterogeneity (20-65%)."""
    return _sweep_figure(
        "fig3",
        "Sensitivity to system heterogeneity",
        "Heterogeneity (max difference among server capacities %)",
        FIG3_POLICIES,
        parameter="heterogeneity",
        values=list(levels),
        duration=duration,
        seed=seed,
        workers=workers,
        executor=executor,
    )


def fig4(
    duration: Optional[float] = None,
    seed: int = 1,
    thresholds: Sequence[float] = tuple(MIN_TTL_SWEEP),
    workers: int = 1,
    executor: Optional[ParallelExecutor] = None,
) -> FigureResult:
    """Figure 4 — sensitivity to the minimum accepted TTL (Het. 20%)."""
    return _sweep_figure(
        "fig4",
        "Sensitivity to minimum TTL (Het. 20%)",
        "Minimum TTL (sec)",
        FIG45_POLICIES,
        parameter="min_accepted_ttl",
        values=list(thresholds),
        duration=duration,
        seed=seed,
        workers=workers,
        executor=executor,
        heterogeneity=20,
    )


def fig5(
    duration: Optional[float] = None,
    seed: int = 1,
    thresholds: Sequence[float] = tuple(MIN_TTL_SWEEP),
    workers: int = 1,
    executor: Optional[ParallelExecutor] = None,
) -> FigureResult:
    """Figure 5 — sensitivity to the minimum accepted TTL (Het. 50%)."""
    return _sweep_figure(
        "fig5",
        "Sensitivity to minimum TTL (Het. 50%)",
        "Minimum TTL (sec)",
        FIG45_POLICIES,
        parameter="min_accepted_ttl",
        values=list(thresholds),
        duration=duration,
        seed=seed,
        workers=workers,
        executor=executor,
        heterogeneity=50,
    )


def fig6(
    duration: Optional[float] = None,
    seed: int = 1,
    errors: Sequence[float] = tuple(ERROR_SWEEP),
    workers: int = 1,
    executor: Optional[ParallelExecutor] = None,
) -> FigureResult:
    """Figure 6 — sensitivity to hidden-load estimation error (Het. 20%)."""
    return _sweep_figure(
        "fig6",
        "Sensitivity to estimation error (Het. 20%)",
        "Estimation Error %",
        FIG67_POLICIES,
        parameter="workload_error",
        values=list(errors),
        duration=duration,
        seed=seed,
        workers=workers,
        executor=executor,
        heterogeneity=20,
    )


def fig7(
    duration: Optional[float] = None,
    seed: int = 1,
    errors: Sequence[float] = tuple(ERROR_SWEEP),
    workers: int = 1,
    executor: Optional[ParallelExecutor] = None,
) -> FigureResult:
    """Figure 7 — sensitivity to hidden-load estimation error (Het. 50%)."""
    return _sweep_figure(
        "fig7",
        "Sensitivity to estimation error (Het. 50%)",
        "Estimation Error %",
        FIG67_POLICIES,
        parameter="workload_error",
        values=list(errors),
        duration=duration,
        seed=seed,
        workers=workers,
        executor=executor,
        heterogeneity=50,
    )


def table1() -> List[Tuple[str, str]]:
    """Table 1 — the system-model parameters (defaults)."""
    return SimulationConfig().describe()


def table2() -> Dict[int, List[float]]:
    """Table 2 — relative server capacities per heterogeneity level."""
    return {
        level: list(alphas)
        for level, alphas in HETEROGENEITY_LEVELS.items()
        if level != 0
    }


#: All figure generators keyed by identifier (used by the CLI).
FIGURES = {
    "fig1": fig1,
    "fig2": fig2,
    "fig3": fig3,
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
}
