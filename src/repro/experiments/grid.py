"""Full-factorial experiment grids.

:func:`run_grid` drives the cartesian product of parameter values over a
base configuration — the workhorse behind "compare every policy at every
heterogeneity level under every estimator" style studies — and returns a
:class:`GridResult` that can pivot any scalar metric into a table or CSV.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from .config import SimulationConfig
from .executor import ExecutionStats, ParallelExecutor
from .metrics import OVERLOAD_THRESHOLD, SimulationResult
from .reporting import format_table

#: One grid cell: parameter assignment -> result.
Cell = Tuple[Dict[str, object], SimulationResult]

Metric = Callable[[SimulationResult], float]


def _default_metric(result: SimulationResult) -> float:
    return result.prob_max_below(OVERLOAD_THRESHOLD)


@dataclass
class GridResult:
    """All cells of a factorial run, with pivot helpers."""

    parameters: List[str]
    cells: List[Cell] = field(default_factory=list)
    #: Timing of the batch that filled :attr:`cells` (set by
    #: :func:`run_grid`; per-cell wall times align with cell order).
    execution: Optional[ExecutionStats] = None

    def __len__(self) -> int:
        return len(self.cells)

    def value(
        self, metric: Optional[Metric] = None, **assignment
    ) -> float:
        """Metric of the single cell matching ``assignment``."""
        metric = metric or _default_metric
        matches = [
            result
            for params, result in self.cells
            if all(params.get(k) == v for k, v in assignment.items())
        ]
        if len(matches) != 1:
            raise ConfigurationError(
                f"assignment {assignment!r} matches {len(matches)} cells"
            )
        return metric(matches[0])

    def pivot(
        self,
        rows: str,
        columns: str,
        metric: Optional[Metric] = None,
    ) -> Tuple[List[object], List[object], List[List[float]]]:
        """Aggregate the grid into a (row values, col values, matrix)."""
        if rows not in self.parameters or columns not in self.parameters:
            raise ConfigurationError(
                f"pivot axes must be grid parameters {self.parameters!r}"
            )
        metric = metric or _default_metric
        row_values = sorted(
            {params[rows] for params, _ in self.cells}, key=str
        )
        col_values = sorted(
            {params[columns] for params, _ in self.cells}, key=str
        )
        matrix: List[List[float]] = []
        for row_value in row_values:
            line = []
            for col_value in col_values:
                values = [
                    metric(result)
                    for params, result in self.cells
                    if params[rows] == row_value
                    and params[columns] == col_value
                ]
                line.append(sum(values) / len(values) if values else float("nan"))
            matrix.append(line)
        return row_values, col_values, matrix

    def pivot_table(
        self,
        rows: str,
        columns: str,
        metric: Optional[Metric] = None,
        precision: int = 3,
    ) -> str:
        """The pivot rendered as an aligned text table."""
        row_values, col_values, matrix = self.pivot(rows, columns, metric)
        headers = [f"{rows}\\{columns}"] + [str(v) for v in col_values]
        body = [
            [str(row_value)] + [f"{v:.{precision}f}" for v in line]
            for row_value, line in zip(row_values, matrix)
        ]
        return format_table(headers, body)

    def to_csv(self, metric: Optional[Metric] = None) -> str:
        """Long-format CSV: one line per cell plus the metric column."""
        metric = metric or _default_metric
        lines = [",".join(self.parameters + ["metric"])]
        for params, result in self.cells:
            lines.append(
                ",".join(
                    [str(params[name]) for name in self.parameters]
                    + [f"{metric(result):.6f}"]
                )
            )
        return "\n".join(lines) + "\n"


def run_grid(
    base: SimulationConfig,
    axes: Mapping[str, Sequence],
    progress: Optional[Callable[[Dict[str, object]], None]] = None,
    workers: int = 1,
    executor: Optional[ParallelExecutor] = None,
) -> GridResult:
    """Run the cartesian product of ``axes`` over ``base``.

    Parameters
    ----------
    base:
        Template configuration.
    axes:
        Mapping of :class:`SimulationConfig` field name to the values it
        takes; every combination is simulated once.
    progress:
        Optional callback invoked with each assignment before it is
        submitted (under ``workers>1`` all callbacks fire up front,
        before any cell completes).
    workers:
        Worker processes for the grid's cells (1 = serial). Cell
        ordering and every metric are identical for any value — each
        cell's config (seed included) is fixed before submission.
    executor:
        A pre-built :class:`ParallelExecutor` to use instead of
        ``workers``.
    """
    if not axes:
        raise ConfigurationError("need at least one grid axis")
    names = list(axes)
    assignments = [
        dict(zip(names, combination))
        for combination in itertools.product(*(axes[name] for name in names))
    ]
    if progress is not None:
        for assignment in assignments:
            progress(assignment)
    runner = executor if executor is not None else ParallelExecutor(workers=workers)
    labels = [
        ",".join(f"{name}={assignment[name]}" for name in names)
        for assignment in assignments
    ]
    results = runner.run_simulations(
        [base.replace(**assignment) for assignment in assignments],
        labels=labels,
    )
    return GridResult(
        parameters=names,
        cells=list(zip(assignments, results)),
        execution=runner.last_stats,
    )
