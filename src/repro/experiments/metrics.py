"""Output metrics: the paper's Max Utilization statistics.

The paper deliberately avoids averaged metrics like the standard
deviation of utilizations: what kills a web site is *any one* server
being overloaded. Its headline metric is therefore the cumulative
frequency of the per-interval **maximum** server utilization — for each
level ``x``, the fraction of sampling intervals in which *every* server
stayed below ``x`` — and the scalar ``Prob(MaxUtilization < 0.98)`` used
on the y-axes of Figs. 3-7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import SimulationError
from ..sim.stats import EmpiricalCdf, RunningStats, batch_means_ci

#: The threshold of the paper's scalar indicator.
OVERLOAD_THRESHOLD = 0.98


class MaxUtilizationCollector:
    """Sample sink for the utilization monitor.

    Retains the per-interval maximum utilization (after ``warmup``) and
    streams per-server statistics.
    """

    def __init__(
        self,
        server_count: int,
        warmup: float = 0.0,
        keep_series: bool = False,
    ):
        if warmup < 0:
            raise SimulationError(f"warmup must be >= 0, got {warmup!r}")
        self.warmup = float(warmup)
        self.max_samples: List[float] = []
        self.per_server: List[RunningStats] = [
            RunningStats() for _ in range(server_count)
        ]
        #: Full per-interval utilization vectors (kept only on request —
        #: enables the :mod:`repro.analysis` time-series tools).
        self.series: Optional[List[Tuple[float, List[float]]]] = (
            [] if keep_series else None
        )

    def sink(self, now: float, utilizations: Sequence[float]) -> None:
        """Monitor callback: one utilization vector per interval.

        Runs once per measurement window for the whole simulation; the
        attribute chains are bound to locals once per call rather than
        re-resolved inside the per-server loop.
        """
        if now <= self.warmup:
            return
        self.max_samples.append(max(utilizations))
        series = self.series
        for stats, utilization in zip(self.per_server, utilizations):
            stats.add(utilization)
        if series is not None:
            series.append((now, list(utilizations)))

    def cdf(self) -> EmpiricalCdf:
        return EmpiricalCdf(self.max_samples)

    def snapshot_state(self) -> dict:
        """Collected samples and per-server accumulators (checkpoints)."""
        return {
            "max_samples": list(self.max_samples),
            "per_server": [
                stats.snapshot_state() for stats in self.per_server
            ],
            "series_length": (
                len(self.series) if self.series is not None else None
            ),
        }


@dataclass
class SimulationResult:
    """Everything measured in one simulation run."""

    #: Canonical policy name.
    policy: str
    #: Per-interval maximum server utilizations (post-warmup).
    max_utilization_samples: List[float]
    #: Time-average utilization per server.
    mean_utilization_per_server: List[float]
    #: Address-mapping requests answered by the authoritative DNS.
    dns_resolutions: int
    #: Authoritative address-request rate (per second).
    address_request_rate: float
    #: Fraction of resolutions answered by the DNS (vs NS caches).
    dns_resolution_fraction: float
    #: Fraction of *hits* belonging to DNS-routed sessions.
    dns_control_fraction: float
    #: Mean TTL granted by the DNS.
    mean_granted_ttl: float
    #: Alarm signals sent by servers during the run.
    alarm_signals: int
    #: TTL recommendations overridden by non-cooperative name servers.
    ns_ttl_overrides: int
    #: Mean fluid page response time (s) over all servers' page bursts.
    mean_page_response_time: float = 0.0
    #: Worst single page response time (s) observed anywhere.
    max_page_response_time: float = 0.0
    #: Mean per-page network RTT (s); 0 unless geography is enabled.
    mean_network_rtt: float = 0.0
    #: Total hits served.
    total_hits: int = 0
    #: Total sessions started.
    total_sessions: int = 0
    #: Simulated duration (seconds).
    duration: float = 0.0
    #: The configuration that produced this result (set by the runner).
    config: Optional[object] = None
    #: Optional trace records (when tracing was enabled).
    trace: Optional[List] = None
    #: Snapshot of the run's metrics registry (flat name -> value dict;
    #: see :mod:`repro.obs.metrics`).
    metrics: Optional[Dict] = None
    #: Optional per-interval ``(time, [u_1..u_N])`` vectors (when
    #: ``keep_utilization_series`` was enabled).
    utilization_series: Optional[List[Tuple[float, List[float]]]] = None

    # -- the paper's metrics -------------------------------------------------

    def cdf(self) -> EmpiricalCdf:
        """Cumulative frequency of the maximum server utilization."""
        return EmpiricalCdf(self.max_utilization_samples)

    def prob_max_below(self, threshold: float = OVERLOAD_THRESHOLD) -> float:
        """``Prob(MaxUtilization < threshold)`` — Figs. 3-7's y-axis."""
        return self.cdf().probability_below(threshold)

    def cumulative_frequency(
        self, grid: Sequence[float]
    ) -> List[Tuple[float, float]]:
        """The Figs. 1-2 curve evaluated on ``grid``."""
        return self.cdf().evaluate(grid)

    def confidence_interval(self, confidence: float = 0.95) -> Tuple[float, float]:
        """Batch-means CI of the mean maximum utilization."""
        return batch_means_ci(self.max_utilization_samples, confidence=confidence)

    @property
    def mean_max_utilization(self) -> float:
        samples = self.max_utilization_samples
        if not samples:
            raise SimulationError("no samples collected")
        return sum(samples) / len(samples)

    def trace_category_counts(self) -> Dict[str, int]:
        """Per-category record counts of the run's trace (empty if none).

        For a fixed config and seed these counts are bit-identical
        however the run was executed — the reproducibility fingerprint
        checked by the observability tests.
        """
        if not self.trace:
            return {}
        counts: Dict[str, int] = {}
        for record in self.trace:
            counts[record.category] = counts.get(record.category, 0) + 1
        return dict(sorted(counts.items()))

    def summary(self) -> Dict[str, float]:
        """Flat dictionary of the headline numbers (for reports/CSV)."""
        return {
            "policy": self.policy,
            "prob_max_below_098": self.prob_max_below(OVERLOAD_THRESHOLD),
            "prob_max_below_090": self.prob_max_below(0.90),
            "mean_max_utilization": self.mean_max_utilization,
            "mean_utilization": (
                sum(self.mean_utilization_per_server)
                / len(self.mean_utilization_per_server)
            ),
            "address_request_rate": self.address_request_rate,
            "dns_control_fraction": self.dns_control_fraction,
            "mean_granted_ttl": self.mean_granted_ttl,
            "mean_page_response_time": self.mean_page_response_time,
            "alarm_signals": self.alarm_signals,
            "samples": len(self.max_utilization_samples),
        }
