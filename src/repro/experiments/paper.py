"""Qualitative expectations from the paper, as checkable predicates.

Absolute probabilities depend on parameters the available scan corrupted
(see DESIGN.md), so the reproduction targets the paper's *qualitative*
claims: which policies win, which are stable, where crossovers occur.
Each ``check_*`` function takes the corresponding
:class:`~repro.experiments.figures.FigureResult` and returns a list of
human-readable violations (empty = all expectations hold). The
integration tests and the EXPERIMENTS.md generator share these.
"""

from __future__ import annotations

from typing import List

from .figures import FigureResult


def _mean_y(figure: FigureResult, label: str) -> float:
    series = figure.series_by_label()[label]
    return sum(series.y) / len(series.y)


def _check_order(
    figure: FigureResult, better: str, worse: str, margin: float = 0.0
) -> List[str]:
    """Expect ``better``'s curve to dominate ``worse``'s on average."""
    gap = _mean_y(figure, better) - _mean_y(figure, worse)
    if gap < -margin:
        return [
            f"{figure.figure_id}: expected {better} >= {worse} "
            f"(mean curve gap {gap:+.3f})"
        ]
    return []


def check_fig1(figure: FigureResult) -> List[str]:
    """Fig. 1 — deterministic policies at 20% heterogeneity."""
    violations: List[str] = []
    # Full adaptation (TTL/S_K) close to the ideal envelope and far above RR.
    violations += _check_order(figure, "IDEAL", "RR")
    violations += _check_order(figure, "DRR2-TTL/S_K", "RR")
    violations += _check_order(figure, "DRR2-TTL/S_K", "DRR2-TTL/S_1", margin=0.02)
    violations += _check_order(figure, "DRR2-TTL/S_2", "DRR2-TTL/S_1", margin=0.02)
    # RR2-based >= RR-based counterparts (small margin: "not large").
    for suffix in ("S_K", "S_2"):
        violations += _check_order(
            figure, f"DRR2-TTL/{suffix}", f"DRR-TTL/{suffix}", margin=0.05
        )
    # Headline numbers: P(max < 0.9) high for TTL/S_K (paper ~0.94), low
    # for RR (paper ~0.1), with a wide gap between them. Short seeded runs
    # shift the absolute levels, so the gap carries most of the check.
    p_sk = figure.y_at("DRR2-TTL/S_K", 0.9)
    p_rr = figure.y_at("RR", 0.9)
    if p_sk < 0.55:
        violations.append(
            f"fig1: P(max<0.9) for DRR2-TTL/S_K is {p_sk:.2f}, expected high (~0.94)"
        )
    if p_rr > 0.45:
        violations.append(
            f"fig1: P(max<0.9) for RR is {p_rr:.2f}, expected low (~0.1)"
        )
    if p_sk - p_rr < 0.4:
        violations.append(
            f"fig1: expected a wide gap between DRR2-TTL/S_K ({p_sk:.2f}) "
            f"and RR ({p_rr:.2f}) at max utilization 0.9"
        )
    return violations


def check_fig2(figure: FigureResult) -> List[str]:
    """Fig. 2 — probabilistic policies at 35% heterogeneity."""
    violations: List[str] = []
    violations += _check_order(figure, "IDEAL", "RR")
    violations += _check_order(figure, "PRR2-TTL/K", "PRR2-TTL/1", margin=0.02)
    violations += _check_order(figure, "PRR2-TTL/2", "PRR2-TTL/1", margin=0.02)
    violations += _check_order(figure, "PRR-TTL/2", "PRR-TTL/1", margin=0.02)
    violations += _check_order(figure, "PRR2-TTL/1", "RR", margin=0.05)
    for suffix in ("K", "2"):
        violations += _check_order(
            figure, f"PRR2-TTL/{suffix}", f"PRR-TTL/{suffix}", margin=0.05
        )
    return violations


def check_fig3(figure: FigureResult) -> List[str]:
    """Fig. 3 — heterogeneity sensitivity; adaptive stable, RR poor.

    Note on DAL: the paper places DAL near RR; with oracle hidden-load
    weights our greedy accumulated-load implementation is stronger than
    the paper's (under-specified) one, so the reproduction only requires
    DAL not to *beat* the best adaptive scheme on average (see
    EXPERIMENTS.md for the discussion).
    """
    violations: List[str] = []
    by_label = figure.series_by_label()
    # The deterministic per-domain scheme is stable across heterogeneity.
    # (The probabilistic one also stays near 1 in the paper; our model
    # reproduces its ordering but with a stronger decline at 65% — see
    # EXPERIMENTS.md — so it gets a looser floor.)
    stability_floors = (("DRR2-TTL/S_K", 0.55), ("PRR2-TTL/K", 0.40))
    for label, floor in stability_floors:
        series = by_label[label]
        if min(series.y) < floor:
            violations.append(
                f"fig3: {label} should stay high across heterogeneity, "
                f"min is {min(series.y):.2f}"
            )
    # RR is far below every adaptive scheme at every level.
    rr = by_label["RR"]
    if max(rr.y) > 0.45:
        violations.append(
            f"fig3: RR should be poor at all levels, max is {max(rr.y):.2f}"
        )
    violations += _check_order(figure, "DRR2-TTL/S_K", "RR")
    violations += _check_order(figure, "PRR2-TTL/K", "RR")
    violations += _check_order(figure, "DRR2-TTL/S_K", "DAL", margin=0.08)
    # The full per-domain schemes should dominate the two-class schemes at
    # the highest heterogeneity level.
    for full, two in (("DRR2-TTL/S_K", "DRR2-TTL/S_2"), ("PRR2-TTL/K", "PRR2-TTL/2")):
        y_full = by_label[full].y[-1]
        y_two = by_label[two].y[-1]
        if y_full < y_two - 0.08:
            violations.append(
                f"fig3: at 65% heterogeneity expected {full} ({y_full:.2f}) "
                f">= {two} ({y_two:.2f})"
            )
    return violations


def check_fig4(figure: FigureResult) -> List[str]:
    """Fig. 4 — min-TTL sensitivity at 20% het; DRR2-TTL/S_K best."""
    violations: List[str] = []
    by_label = figure.series_by_label()
    # PRR2-TTL/K only moderately sensitive to the threshold (its load
    # balancing does not rely on small TTLs for capacity compensation).
    prr2k = by_label["PRR2-TTL/K"].y
    if max(prr2k) - min(prr2k) > 0.45:
        violations.append(
            f"fig4: PRR2-TTL/K should be fairly insensitive to min TTL "
            f"(spread {max(prr2k) - min(prr2k):.2f})"
        )
    # PRR2-TTL/2 nearly flat while the threshold stays below its hot-class
    # TTL (paper: "able to always assign TTL higher than 80 seconds").
    series = by_label["PRR2-TTL/2"]
    low_region = [y for x, y in zip(series.x, series.y) if x <= 90.0]
    if max(low_region) - min(low_region) > 0.15:
        violations.append(
            f"fig4: PRR2-TTL/2 should be flat for thresholds <= 90 s "
            f"(spread {max(low_region) - min(low_region):.2f})"
        )
    # DRR2-TTL/S_K the best at low thresholds.
    for label in ("PRR2-TTL/K", "PRR2-TTL/2", "PRR-TTL/K"):
        if by_label["DRR2-TTL/S_K"].y[0] < by_label[label].y[0] - 0.05:
            violations.append(
                f"fig4: at min TTL 0 expected DRR2-TTL/S_K >= {label}"
            )
    return violations


def check_fig5(figure: FigureResult) -> List[str]:
    """Fig. 5 — min-TTL sensitivity at 50% het; crossover appears."""
    violations: List[str] = []
    by_label = figure.series_by_label()
    best_low = by_label["DRR2-TTL/S_K"].y[0]
    for label in ("PRR2-TTL/K", "PRR2-TTL/2"):
        if best_low < by_label[label].y[0] - 0.05:
            violations.append(
                f"fig5: at min TTL 0 expected DRR2-TTL/S_K >= {label}"
            )
    # At high thresholds the probabilistic TTL/K scheme should have caught
    # up with (or passed) the deterministic one.
    x = by_label["DRR2-TTL/S_K"].x
    high = x.index(max(x))
    gap = by_label["PRR2-TTL/K"].y[high] - by_label["DRR2-TTL/S_K"].y[high]
    if gap < -0.10:
        violations.append(
            f"fig5: at the largest min TTL expected PRR2-TTL/K to be "
            f"competitive with DRR2-TTL/S_K (gap {gap:+.2f})"
        )
    return violations


def _error_sensitivity_checks(figure: FigureResult) -> List[str]:
    violations: List[str] = []
    by_label = figure.series_by_label()
    # TTL/K and TTL/S_K schemes cluster on top and degrade only slightly.
    for label in ("DRR2-TTL/S_K", "PRR2-TTL/K"):
        series = by_label[label]
        drop = series.y[0] - min(series.y)
        if drop > 0.30:
            violations.append(
                f"{figure.figure_id}: {label} should be robust to estimation "
                f"error (drop {drop:.2f})"
            )
    # K-class schemes beat their 2-class counterparts at the largest error.
    for full, two in (
        ("DRR2-TTL/S_K", "DRR2-TTL/S_2"),
        ("PRR2-TTL/K", "PRR2-TTL/2"),
    ):
        y_full = by_label[full].y[-1]
        y_two = by_label[two].y[-1]
        if y_full < y_two - 0.05:
            violations.append(
                f"{figure.figure_id}: at max error expected {full} "
                f"({y_full:.2f}) >= {two} ({y_two:.2f})"
            )
    return violations


def check_fig6(figure: FigureResult) -> List[str]:
    """Fig. 6 — estimation-error sensitivity at 20% heterogeneity."""
    return _error_sensitivity_checks(figure)


def check_fig7(figure: FigureResult) -> List[str]:
    """Fig. 7 — estimation-error sensitivity at 50% heterogeneity."""
    return _error_sensitivity_checks(figure)


CHECKS = {
    "fig1": check_fig1,
    "fig2": check_fig2,
    "fig3": check_fig3,
    "fig4": check_fig4,
    "fig5": check_fig5,
    "fig6": check_fig6,
    "fig7": check_fig7,
}
