"""Saving and loading experiment outputs as JSON.

Long sweeps are expensive; these helpers make every result and figure a
plain-JSON artifact so analysis can be re-run without re-simulating, and
so CI can diff regenerated figures against committed baselines.

Only data is serialized — configs round-trip into
:class:`~repro.experiments.config.SimulationConfig` kwargs, metrics and
utilization series are included when present. Trace records are *not*
embedded in the result JSON (they can dwarf it); :func:`save_run_artifacts`
writes them as a JSONL sidecar, together with a provenance manifest, next
to the result — the full observability bundle of one run.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Any, Dict, Optional, Union

from ..errors import ConfigurationError
from ..obs.export import write_metrics_prom, write_trace_jsonl
from ..obs.provenance import write_manifest
from .config import SimulationConfig
from .figures import FigureResult, Series
from .metrics import SimulationResult

PathLike = Union[str, pathlib.Path]

_FORMAT_VERSION = 1


def config_to_dict(config: SimulationConfig) -> Dict[str, Any]:
    """A JSON-safe dict of a simulation config."""
    data = dataclasses.asdict(config)
    # Tuples are not JSON-distinguishable from lists; normalize on load.
    return data


def config_from_dict(data: Dict[str, Any]) -> SimulationConfig:
    """Rebuild a :class:`SimulationConfig` saved by :func:`config_to_dict`."""
    kwargs = dict(data)
    if kwargs.get("relative_capacities") is not None:
        kwargs["relative_capacities"] = tuple(kwargs["relative_capacities"])
    if "hits_per_page" in kwargs:
        kwargs["hits_per_page"] = tuple(kwargs["hits_per_page"])
    return SimulationConfig(**kwargs)


def result_to_dict(result: SimulationResult) -> Dict[str, Any]:
    """A JSON-safe dict of a simulation result (trace omitted)."""
    return {
        "format_version": _FORMAT_VERSION,
        "kind": "simulation_result",
        "policy": result.policy,
        "max_utilization_samples": list(result.max_utilization_samples),
        "mean_utilization_per_server": list(
            result.mean_utilization_per_server
        ),
        "dns_resolutions": result.dns_resolutions,
        "address_request_rate": result.address_request_rate,
        "dns_resolution_fraction": result.dns_resolution_fraction,
        "dns_control_fraction": result.dns_control_fraction,
        "mean_granted_ttl": result.mean_granted_ttl,
        "alarm_signals": result.alarm_signals,
        "ns_ttl_overrides": result.ns_ttl_overrides,
        "mean_page_response_time": result.mean_page_response_time,
        "max_page_response_time": result.max_page_response_time,
        "mean_network_rtt": result.mean_network_rtt,
        "total_hits": result.total_hits,
        "total_sessions": result.total_sessions,
        "duration": result.duration,
        "config": (
            config_to_dict(result.config)
            if isinstance(result.config, SimulationConfig)
            else None
        ),
        "metrics": result.metrics,
        "utilization_series": result.utilization_series,
    }


def result_from_dict(data: Dict[str, Any]) -> SimulationResult:
    """Rebuild a :class:`SimulationResult` saved by :func:`result_to_dict`."""
    if data.get("kind") != "simulation_result":
        raise ConfigurationError(
            f"not a serialized simulation result: kind={data.get('kind')!r}"
        )
    config = data.get("config")
    series = data.get("utilization_series")
    return SimulationResult(
        policy=data["policy"],
        max_utilization_samples=list(data["max_utilization_samples"]),
        mean_utilization_per_server=list(
            data["mean_utilization_per_server"]
        ),
        dns_resolutions=data["dns_resolutions"],
        address_request_rate=data["address_request_rate"],
        dns_resolution_fraction=data["dns_resolution_fraction"],
        dns_control_fraction=data["dns_control_fraction"],
        mean_granted_ttl=data["mean_granted_ttl"],
        alarm_signals=data["alarm_signals"],
        ns_ttl_overrides=data["ns_ttl_overrides"],
        mean_page_response_time=data.get("mean_page_response_time", 0.0),
        max_page_response_time=data.get("max_page_response_time", 0.0),
        mean_network_rtt=data.get("mean_network_rtt", 0.0),
        total_hits=data["total_hits"],
        total_sessions=data["total_sessions"],
        duration=data["duration"],
        config=config_from_dict(config) if config else None,
        metrics=data.get("metrics"),
        utilization_series=(
            [(now, list(vector)) for now, vector in series]
            if series
            else None
        ),
    )


def figure_to_dict(figure: FigureResult) -> Dict[str, Any]:
    """A JSON-safe dict of a regenerated figure."""
    return {
        "format_version": _FORMAT_VERSION,
        "kind": "figure_result",
        "figure_id": figure.figure_id,
        "title": figure.title,
        "x_label": figure.x_label,
        "y_label": figure.y_label,
        "notes": figure.notes,
        "series": [
            {"label": s.label, "x": list(s.x), "y": list(s.y)}
            for s in figure.series
        ],
    }


def figure_from_dict(data: Dict[str, Any]) -> FigureResult:
    """Rebuild a :class:`FigureResult` saved by :func:`figure_to_dict`."""
    if data.get("kind") != "figure_result":
        raise ConfigurationError(
            f"not a serialized figure: kind={data.get('kind')!r}"
        )
    return FigureResult(
        figure_id=data["figure_id"],
        title=data["title"],
        x_label=data["x_label"],
        y_label=data["y_label"],
        notes=data.get("notes", ""),
        series=[
            Series(label=s["label"], x=list(s["x"]), y=list(s["y"]))
            for s in data["series"]
        ],
    )


def save_json(obj, path: PathLike) -> pathlib.Path:
    """Serialize a result/figure/config to ``path`` (by type dispatch)."""
    if isinstance(obj, SimulationResult):
        payload = result_to_dict(obj)
    elif isinstance(obj, FigureResult):
        payload = figure_to_dict(obj)
    elif isinstance(obj, SimulationConfig):
        payload = {
            "format_version": _FORMAT_VERSION,
            "kind": "simulation_config",
            "config": config_to_dict(obj),
        }
    else:
        raise ConfigurationError(f"cannot serialize {type(obj).__name__}")
    path = pathlib.Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


def save_run_artifacts(
    result: SimulationResult,
    directory: PathLike,
    *,
    stem: str = "run",
    extra: Optional[Dict[str, Any]] = None,
    workers: Optional[int] = None,
    engine_mode: Optional[str] = None,
    dispatch: Optional[Dict[str, Any]] = None,
) -> Dict[str, pathlib.Path]:
    """Write one run's full observability bundle into ``directory``.

    Always writes ``<stem>.json`` (the result) and — when the result
    carries its config — ``<stem>.manifest.json`` (provenance: config,
    seed, package version, git state, environment fingerprint;
    ``workers`` records the executor worker count there, ``engine_mode``
    the dispatch engine and ``dispatch`` the execution placement, both
    as top-level manifest keys). When the run was traced,
    ``<stem>.trace.jsonl`` holds every trace record, one JSON object per
    line; when the result carries a metrics snapshot,
    ``<stem>.metrics.prom`` holds its Prometheus text exposition.
    Returns the written paths keyed by artifact name.
    """
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = {"result": save_json(result, directory / f"{stem}.json")}
    if isinstance(result.config, SimulationConfig):
        paths["manifest"] = write_manifest(
            result.config,
            directory / f"{stem}.manifest.json",
            extra=extra,
            workers=workers,
            engine_mode=engine_mode,
            dispatch=dispatch,
        )
    if result.trace is not None:
        paths["trace"] = write_trace_jsonl(
            result.trace, directory / f"{stem}.trace.jsonl"
        )
    if result.metrics:
        paths["prom"] = write_metrics_prom(
            result.metrics, directory / f"{stem}.metrics.prom"
        )
    return paths


def load_json(path: PathLike):
    """Load whatever :func:`save_json` wrote at ``path``."""
    data = json.loads(pathlib.Path(path).read_text())
    kind = data.get("kind")
    if kind == "simulation_result":
        return result_from_dict(data)
    if kind == "figure_result":
        return figure_from_dict(data)
    if kind == "simulation_config":
        return config_from_dict(data["config"])
    raise ConfigurationError(f"unknown serialized kind {kind!r}")
