"""Plain-text and CSV rendering of experiment outputs.

The paper's figures are line plots; in a library context the same data is
most useful as aligned text tables (for terminals and logs) and CSV (for
any plotting tool). No plotting dependency is required.
"""

from __future__ import annotations

import io
from typing import Dict, List, Optional, Sequence, Tuple

from .executor import ExecutionStats
from .figures import FigureResult
from .metrics import SimulationResult


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render an aligned, pipe-separated text table."""
    cells = [[str(h) for h in headers]] + [
        [str(value) for value in row] for row in rows
    ]
    widths = [max(len(row[col]) for row in cells) for col in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        lines.append(
            " | ".join(value.ljust(width) for value, width in zip(row, widths))
        )
        if index == 0:
            lines.append("-+-".join("-" * width for width in widths))
    return "\n".join(lines)


def render_figure(figure: FigureResult, precision: int = 3) -> str:
    """A text rendering of a figure: one column per series."""
    headers = [figure.x_label] + [series.label for series in figure.series]
    x_values = figure.series[0].x if figure.series else []
    rows = []
    for index, x in enumerate(x_values):
        row: List[object] = [f"{x:g}"]
        for series in figure.series:
            row.append(f"{series.y[index]:.{precision}f}")
        rows.append(row)
    title = f"{figure.figure_id}: {figure.title}"
    body = format_table(headers, rows)
    notes = f"({figure.y_label}; {figure.notes})" if figure.notes else ""
    return "\n".join(part for part in (title, body, notes) if part)


def figure_to_csv(figure: FigureResult) -> str:
    """CSV text of a figure (x column then one column per series)."""
    out = io.StringIO()
    headers = [figure.x_label] + [series.label for series in figure.series]
    out.write(",".join(_csv_quote(h) for h in headers) + "\n")
    x_values = figure.series[0].x if figure.series else []
    for index, x in enumerate(x_values):
        row = [f"{x:g}"] + [f"{s.y[index]:.6f}" for s in figure.series]
        out.write(",".join(row) + "\n")
    return out.getvalue()


def _csv_quote(value: str) -> str:
    if any(ch in value for ch in ',"\n'):
        return '"' + value.replace('"', '""') + '"'
    return value


def render_result(result: SimulationResult) -> str:
    """A one-run summary block."""
    summary = result.summary()
    rows = [(key, _format_value(value)) for key, value in summary.items()]
    per_server = ", ".join(
        f"S{i + 1}={u:.3f}"
        for i, u in enumerate(result.mean_utilization_per_server)
    )
    return "\n".join(
        [
            format_table(["metric", "value"], rows),
            f"mean utilization per server: {per_server}",
        ]
    )


def render_comparison(results: Dict[str, SimulationResult]) -> str:
    """Side-by-side summary of several policies on the same scenario."""
    rows = []
    for policy, result in results.items():
        summary = result.summary()
        rows.append(
            (
                policy,
                f"{summary['prob_max_below_098']:.3f}",
                f"{summary['prob_max_below_090']:.3f}",
                f"{summary['mean_max_utilization']:.3f}",
                f"{summary['mean_granted_ttl']:.0f}",
                f"{summary['dns_control_fraction']:.4f}",
            )
        )
    return format_table(
        [
            "policy",
            "P(max<0.98)",
            "P(max<0.90)",
            "mean max util",
            "mean TTL (s)",
            "DNS control",
        ],
        rows,
    )


def render_metrics(metrics: Dict[str, object]) -> str:
    """The metrics-registry summary block of one run.

    ``metrics`` is a :meth:`repro.obs.MetricsRegistry.snapshot` dict (as
    carried by ``SimulationResult.metrics``): flat values plus histogram
    sub-dicts, rendered one row per metric.
    """
    rows = []
    for name, value in sorted(metrics.items()):
        if isinstance(value, dict) and value.get("kind") == "timeseries":
            if value["samples"]:
                last_time, last_value = value["samples"][-1]
                rendered = (
                    f"n={value['observations']} "
                    f"last={last_value:.4f}@{last_time:.0f}s"
                )
            else:
                rendered = "no observations"
        elif isinstance(value, dict):  # time-weighted histogram snapshot
            if value.get("max") is None:
                rendered = "no observations"
            else:
                rendered = (
                    f"mean={value['mean']:.4f} max={value['max']:.4f} "
                    f"windows={value['observations']}"
                )
        elif isinstance(value, float):
            rendered = f"{value:.4f}"
        else:
            rendered = str(value)
        rows.append((name, rendered))
    return format_table(["metric", "value"], rows)


def render_trace_counts(counts: Dict[str, int], total: int) -> str:
    """The per-category record-count block of one traced run."""
    rows = [(category, str(count)) for category, count in sorted(counts.items())]
    rows.append(("(total)", str(total)))
    return format_table(["trace category", "records"], rows)


#: Per-cell timing lines are listed individually up to this many cells;
#: larger batches show only the aggregate summary.
MAX_LISTED_CELLS = 20


def render_execution(
    stats: ExecutionStats, labels: Optional[Sequence[str]] = None
) -> str:
    """An execution-timing summary block (see :class:`ExecutionStats`).

    Shows worker count, wall time, per-cell wall-time aggregates and the
    speedup over the serial-equivalent time. When the batch holds at
    most :data:`MAX_LISTED_CELLS` cells, each cell's wall time is listed
    too (``labels``, if given, name the cells in submission order).
    """
    lines = [format_table(["execution", "value"], stats.summary_rows())]
    if 0 < stats.cell_count <= MAX_LISTED_CELLS:
        rows = []
        for index, elapsed in enumerate(stats.cell_times):
            label = (
                labels[index]
                if labels is not None and index < len(labels)
                else f"cell {index}"
            )
            rows.append((label, f"{elapsed:.3f} s"))
        lines.append(format_table(["cell", "wall time"], rows))
    return "\n\n".join(lines)


def _format_value(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)
