"""Replication and sweep drivers on top of single simulations.

The paper reports five-hour runs with 95% confidence intervals within 4%
of the mean. :func:`run_replications` reproduces that discipline across
independently seeded runs; :func:`sweep` drives the sensitivity studies
(heterogeneity, minimum TTL, estimation error, domain count).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..sim.rng import derive_seed
from ..sim.stats import EmpiricalCdf
from .config import SimulationConfig
from .executor import ExecutionStats, ParallelExecutor
from .metrics import OVERLOAD_THRESHOLD, SimulationResult
from .simulation import run_simulation


def _executor(
    workers: int, executor: Optional[ParallelExecutor]
) -> ParallelExecutor:
    """The executor to use: the caller's, or a fresh one for ``workers``."""
    if executor is not None:
        return executor
    return ParallelExecutor(workers=workers)


@dataclass
class ReplicationSet:
    """Results of several independently seeded runs of one config."""

    config: SimulationConfig
    results: List[SimulationResult]
    #: Timing of the batch that produced :attr:`results` (set by
    #: :func:`run_replications`).
    execution: Optional[ExecutionStats] = None

    @property
    def replication_count(self) -> int:
        return len(self.results)

    def pooled_cdf(self) -> EmpiricalCdf:
        """CDF over the union of all replications' samples."""
        samples: List[float] = []
        for result in self.results:
            samples.extend(result.max_utilization_samples)
        return EmpiricalCdf(samples)

    def prob_max_below(self, threshold: float = OVERLOAD_THRESHOLD) -> float:
        """Pooled ``Prob(MaxUtilization < threshold)``."""
        return self.pooled_cdf().probability_below(threshold)

    def prob_max_below_ci(
        self, threshold: float = OVERLOAD_THRESHOLD, confidence: float = 0.95
    ) -> Tuple[float, float]:
        """Across-replication mean and CI half-width of the probability.

        Uses a normal critical value; at the low replication counts
        typical here the half-width is slightly optimistic (too narrow)
        compared to a Student-t interval — see the statistics section
        of ``docs/MODELING.md`` for the magnitude and a correction.
        """
        values = [r.prob_max_below(threshold) for r in self.results]
        n = len(values)
        mean = sum(values) / n
        if n < 2:
            return mean, 0.0
        variance = sum((v - mean) ** 2 for v in values) / (n - 1)
        # Normal critical value; replications are few, so this is a
        # slightly optimistic but conventional choice for summaries
        # (docs/MODELING.md section 7 quantifies the bias).
        z = {0.90: 1.645, 0.95: 1.960, 0.99: 2.576}.get(round(confidence, 2), 1.960)
        return mean, z * math.sqrt(variance / n)


def run_replications(
    config: SimulationConfig,
    replications: int = 3,
    workers: int = 1,
    executor: Optional[ParallelExecutor] = None,
) -> ReplicationSet:
    """Run ``config`` under ``replications`` independent seeds.

    Each replication's seed is derived up front from ``config.seed``, so
    the result set is identical for any ``workers`` count.
    """
    if replications < 1:
        raise ConfigurationError(f"replications must be >= 1, got {replications!r}")
    configs = [
        config.replace(seed=derive_seed(config.seed, f"replication:{index}"))
        for index in range(replications)
    ]
    runner = _executor(workers, executor)
    results = runner.run_simulations(
        configs,
        labels=[f"replication {index}" for index in range(replications)],
    )
    return ReplicationSet(
        config=config, results=results, execution=runner.last_stats
    )


def sweep(
    base: SimulationConfig,
    parameter: str,
    values: Sequence,
    metric: Optional[Callable[[SimulationResult], float]] = None,
    workers: int = 1,
    executor: Optional[ParallelExecutor] = None,
) -> List[Tuple[object, float, SimulationResult]]:
    """Run ``base`` once per value of ``parameter``.

    Parameters
    ----------
    base:
        Template configuration.
    parameter:
        Name of the :class:`SimulationConfig` field to vary.
    values:
        Values to assign to the field.
    metric:
        Scalar extracted from each result; defaults to the paper's
        ``Prob(MaxUtilization < 0.98)``. Applied in the calling process,
        so it may be any callable (lambdas included) under any
        ``workers`` count.
    workers:
        Worker processes for the sweep's cells (1 = serial).
    executor:
        A pre-built :class:`ParallelExecutor` to use instead of
        ``workers`` (its ``last_stats`` then describes this sweep).

    Returns
    -------
    List of ``(value, metric_value, result)`` triples in input order.
    """
    if metric is None:
        metric = lambda result: result.prob_max_below(OVERLOAD_THRESHOLD)
    configs = [base.replace(**{parameter: value}) for value in values]
    results = _executor(workers, executor).run_simulations(
        configs, labels=[f"{parameter}={value}" for value in values]
    )
    return [
        (value, metric(result), result)
        for value, result in zip(values, results)
    ]


def compare_policies(
    base: SimulationConfig,
    policies: Sequence[str],
    workers: int = 1,
    executor: Optional[ParallelExecutor] = None,
) -> Dict[str, SimulationResult]:
    """Run the same scenario under each policy (common random seed)."""
    configs = [base.replace(policy=policy) for policy in policies]
    results = _executor(workers, executor).run_simulations(
        configs, labels=list(policies)
    )
    return dict(zip(policies, results))
