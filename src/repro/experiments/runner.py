"""Replication and sweep drivers on top of single simulations.

The paper reports five-hour runs with 95% confidence intervals within 4%
of the mean. :func:`run_replications` reproduces that discipline across
independently seeded runs; :func:`sweep` drives the sensitivity studies
(heterogeneity, minimum TTL, estimation error, domain count).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..sim.rng import derive_seed
from ..sim.stats import EmpiricalCdf
from .config import SimulationConfig
from .metrics import OVERLOAD_THRESHOLD, SimulationResult
from .simulation import run_simulation


@dataclass
class ReplicationSet:
    """Results of several independently seeded runs of one config."""

    config: SimulationConfig
    results: List[SimulationResult]

    @property
    def replication_count(self) -> int:
        return len(self.results)

    def pooled_cdf(self) -> EmpiricalCdf:
        """CDF over the union of all replications' samples."""
        samples: List[float] = []
        for result in self.results:
            samples.extend(result.max_utilization_samples)
        return EmpiricalCdf(samples)

    def prob_max_below(self, threshold: float = OVERLOAD_THRESHOLD) -> float:
        """Pooled ``Prob(MaxUtilization < threshold)``."""
        return self.pooled_cdf().probability_below(threshold)

    def prob_max_below_ci(
        self, threshold: float = OVERLOAD_THRESHOLD, confidence: float = 0.95
    ) -> Tuple[float, float]:
        """Across-replication mean and CI half-width of the probability."""
        values = [r.prob_max_below(threshold) for r in self.results]
        n = len(values)
        mean = sum(values) / n
        if n < 2:
            return mean, 0.0
        variance = sum((v - mean) ** 2 for v in values) / (n - 1)
        # Normal critical value; replications are few, so this is a
        # slightly optimistic but conventional choice for summaries.
        z = {0.90: 1.645, 0.95: 1.960, 0.99: 2.576}.get(round(confidence, 2), 1.960)
        return mean, z * math.sqrt(variance / n)


def run_replications(
    config: SimulationConfig, replications: int = 3
) -> ReplicationSet:
    """Run ``config`` under ``replications`` independent seeds."""
    if replications < 1:
        raise ConfigurationError(f"replications must be >= 1, got {replications!r}")
    results = []
    for index in range(replications):
        seed = derive_seed(config.seed, f"replication:{index}")
        results.append(run_simulation(config.replace(seed=seed)))
    return ReplicationSet(config=config, results=results)


def sweep(
    base: SimulationConfig,
    parameter: str,
    values: Sequence,
    metric: Optional[Callable[[SimulationResult], float]] = None,
) -> List[Tuple[object, float, SimulationResult]]:
    """Run ``base`` once per value of ``parameter``.

    Parameters
    ----------
    base:
        Template configuration.
    parameter:
        Name of the :class:`SimulationConfig` field to vary.
    values:
        Values to assign to the field.
    metric:
        Scalar extracted from each result; defaults to the paper's
        ``Prob(MaxUtilization < 0.98)``.

    Returns
    -------
    List of ``(value, metric_value, result)`` triples in input order.
    """
    if metric is None:
        metric = lambda result: result.prob_max_below(OVERLOAD_THRESHOLD)
    rows = []
    for value in values:
        result = run_simulation(base.replace(**{parameter: value}))
        rows.append((value, metric(result), result))
    return rows


def compare_policies(
    base: SimulationConfig,
    policies: Sequence[str],
) -> Dict[str, SimulationResult]:
    """Run the same scenario under each policy (common random seed)."""
    return {
        policy: run_simulation(base.replace(policy=policy))
        for policy in policies
    }
