"""Simulation assembly: wire all substrates for one configured run.

:class:`Simulation` is the composition root. Given a
:class:`~repro.experiments.config.SimulationConfig` it builds the engine,
cluster, estimator, scheduler + TTL policy, DNS + name servers, monitor +
alarms, and client population, runs the clock, and returns a
:class:`~repro.experiments.metrics.SimulationResult`.
"""

from __future__ import annotations

from typing import Optional

from ..core.estimator import (
    MeasuredEstimator,
    OracleEstimator,
    SlidingWindowEstimator,
)
from ..core.registry import build_policy, parse_policy_name
from ..core.state import SchedulerState
from ..dns.authoritative import AuthoritativeDns
from ..dns.resolver import ResolutionChain
from ..errors import ConfigurationError
from ..obs.metrics import MetricsRegistry
from ..sim.engine import Environment
from ..sim.fastforward import FastForwardEnvironment
from ..sim.rng import RandomStreams
from ..sim.tracing import NullTracer, Tracer
from ..web.monitor import AlarmProtocol, UtilizationMonitor
from ..workload.clients import ClientPopulation
from ..workload.dynamics import RotatingHotDomains
from ..workload.shards import ShardedClientPopulation
from ..workload.trace import TraceDrivenPopulation
from .config import SimulationConfig
from .metrics import MaxUtilizationCollector, SimulationResult


#: Valid engine modes: ``"event"`` is the reference per-event dispatch,
#: ``"fastforward"`` batch-advances quiescent client wakes natively (see
#: :mod:`repro.sim.fastforward`) with bit-identical trajectories.
ENGINE_MODES = ("event", "fastforward")


class Simulation:
    """One fully wired simulation (see module docstring).

    All components are exposed as attributes after construction so tests
    and notebooks can poke at any layer before/after :meth:`run`.

    ``engine_mode`` selects the dispatch engine — a *run-control*
    parameter, deliberately not a :class:`SimulationConfig` field: both
    modes produce bit-identical trajectories, so the mode must not leak
    into config hashes, checkpoint digests or result comparisons (it is
    recorded in checkpoints and provenance manifests instead).
    """

    def __init__(self, config: SimulationConfig, engine_mode: str = "event"):
        if engine_mode not in ENGINE_MODES:
            raise ConfigurationError(
                f"unknown engine mode {engine_mode!r}; "
                f"choose from {ENGINE_MODES}"
            )
        self.config = config
        self.engine_mode = engine_mode
        self.spec = parse_policy_name(config.policy)

        self.env = (
            FastForwardEnvironment()
            if engine_mode == "fastforward"
            else Environment()
        )
        self.streams = RandomStreams(config.seed)
        self.tracer = (
            Tracer(config.trace_categories) if config.trace else NullTracer()
        )
        #: Run-wide metrics registry; every subsystem below registers its
        #: counters/gauges into it (pull-based — zero hot-path cost).
        self.metrics = MetricsRegistry()

        # -- web site -----------------------------------------------------
        self.cluster = config.build_cluster()

        # -- domains: nominal (what the DNS believes) vs actual (what the
        #    clients do). The IDEAL policy forces a uniform actual
        #    distribution; the error experiments perturb the actual one.
        nominal = config.build_domains()
        if self.spec.uniform_workload and not config.uniform_domains:
            nominal = nominal.__class__.uniform(config.domain_count)
        actual = nominal
        if config.workload_error > 0:
            actual = nominal.perturb_hottest(config.workload_error)
        self.nominal_domains = nominal
        self.actual_domains = actual

        # -- estimator ------------------------------------------------------
        if config.estimator == "oracle":
            # The oracle reflects the *nominal* shares: under perturbation
            # the DNS estimates stay stale, exactly as in the paper.
            # Streamed in (and packed into a flat array) so a million-
            # domain share vector never exists as a Python list.
            self.estimator = OracleEstimator(nominal.iter_shares())
        elif config.estimator == "measured":
            self.estimator = MeasuredEstimator(
                self.env,
                self.cluster.servers,
                config.domain_count,
                interval=config.estimator_interval,
                smoothing=config.estimator_smoothing,
                prior=nominal.shares,
            )
        else:  # "window"
            self.estimator = SlidingWindowEstimator(
                self.env,
                self.cluster.servers,
                config.domain_count,
                interval=config.estimator_interval,
                window_intervals=config.estimator_window_intervals,
                prior=nominal.shares,
            )

        # -- geography (optional extension) -------------------------------------
        if config.geography != "none":
            from ..geo.placement import GeographicLayout

            factory = (
                GeographicLayout.random
                if config.geography == "random"
                else GeographicLayout.clustered
            )
            self.layout = factory(
                config.domain_count,
                self.cluster.server_count,
                seed=config.seed,
                base_rtt=config.geo_base_rtt,
                rtt_per_unit=config.geo_rtt_per_unit,
            )
        else:
            self.layout = None

        # -- scheduler + TTL policy -------------------------------------------
        self.state = SchedulerState(self.cluster, self.estimator)
        self.state.layout = self.layout
        self.scheduler, self.ttl_policy = build_policy(
            self.spec, self.state, self.streams, config.constant_ttl
        )

        # -- DNS + name servers -------------------------------------------------
        self.dns = AuthoritativeDns(
            self.scheduler,
            self.ttl_policy,
            tracer=self.tracer,
            metrics=self.metrics,
            domain_weight=self._domain_weight,
            policy_label=self.spec.name,
        )
        self.resolution_chain = ResolutionChain(
            self.dns,
            config.domain_count,
            min_accepted_ttl=config.min_accepted_ttl,
            default_ttl=config.ns_default_ttl,
            override_mode=config.ns_override_mode,
            nameservers_per_domain=config.nameservers_per_domain,
            tracer=self.tracer,
            metrics=self.metrics,
        )

        # -- monitoring + alarms -----------------------------------------------
        self.collector = MaxUtilizationCollector(
            self.cluster.server_count,
            warmup=config.warmup,
            keep_series=config.keep_utilization_series,
        )
        if config.alarm_feedback:
            self.alarm_protocol: Optional[AlarmProtocol] = AlarmProtocol(
                self.cluster.server_count,
                threshold=config.alarm_threshold,
                listener=self._on_alarm,
                tracer=self.tracer,
                metrics=self.metrics,
            )
        else:
            self.alarm_protocol = None
        # Timeline of the DNS-controlled request fraction, sampled once
        # per utilization window by piggybacking on the monitor's sink
        # (the population is wired a few lines below; by the first
        # window — interval seconds in — it exists).
        control_series = self.metrics.timeseries("workload.control_fraction")
        collector_sink = self.collector.sink

        def _windowed_sink(now, utilizations):
            collector_sink(now, utilizations)
            control_series.record(now, self.population.dns_control_fraction)

        self.monitor = UtilizationMonitor(
            self.env,
            self.cluster.servers,
            interval=config.utilization_interval,
            alarm_protocol=self.alarm_protocol,
            sample_sink=_windowed_sink,
            tracer=self.tracer,
            metrics=self.metrics,
        )

        # -- workload -------------------------------------------------------------
        if config.hot_rotation_interval > 0:
            dynamics = RotatingHotDomains(
                config.hot_rotation_interval, config.hot_rotation_count
            )
        else:
            dynamics = None
        if config.workload_source == "trace":
            self.population = TraceDrivenPopulation(
                self.env,
                self.cluster,
                self.resolution_chain,
                actual,
                config.build_session_model(),
                config.build_arrival_schedule(),
                self.streams,
                total_clients=config.total_clients,
                tracer=self.tracer,
                dynamics=dynamics,
                layout=self.layout,
                metrics=self.metrics,
                shard_size=config.shard_size,
            )
        elif config.effective_population() == "lazy":
            self.population = ShardedClientPopulation(
                self.env,
                self.cluster,
                self.resolution_chain,
                actual,
                config.build_session_model(),
                config.total_clients,
                self.streams,
                tracer=self.tracer,
                dynamics=dynamics,
                client_address_caching=config.client_address_caching,
                layout=self.layout,
                metrics=self.metrics,
                shard_size=config.shard_size,
            )
        else:
            self.population = ClientPopulation(
                self.env,
                self.cluster,
                self.resolution_chain,
                actual,
                config.build_session_model(),
                config.total_clients,
                self.streams,
                tracer=self.tracer,
                dynamics=dynamics,
                client_address_caching=config.client_address_caching,
                layout=self.layout,
                metrics=self.metrics,
            )

    @property
    def engine_info(self) -> dict:
        """Provenance of the dispatch engine actually in effect.

        Reports the requested mode, the effective mode (fast-forward
        falls back to reference event-stepping for ineligible
        configurations), the native fast-client count, and the counted
        fallback reasons. Kept out of the digested metrics registry so
        checkpoint digests and ``repro report --compare`` stay
        mode-agnostic; the provenance manifest records it instead.
        """
        info = {
            "engine_mode": self.engine_mode,
            "effective_mode": self.engine_mode,
            "fast_clients": 0,
            "fallbacks": {},
        }
        if isinstance(self.env, FastForwardEnvironment):
            info["fallbacks"] = dict(self.env.fallback_reasons)
            if self.population.engine == "fluid":
                info["fast_clients"] = self.population.total_clients
            else:
                info["effective_mode"] = "event"
        return info

    @property
    def workload_info(self) -> dict:
        """Provenance of the workload implementation actually in effect.

        Names the population class, the workload source, and — for the
        sharded/trace implementations — their shard accounting. Like
        :attr:`engine_info`, deliberately outside the digested metrics
        registry: all populations of one config are bit-identical (or,
        for the trace source, a different config), so the choice must
        not leak into digests or result comparisons.
        """
        info = {
            "source": self.config.workload_source,
            "population": type(self.population).__name__,
        }
        shard_stats = getattr(self.population, "shard_stats", None)
        if shard_stats is not None:
            info["shards"] = shard_stats()
        return info

    def _domain_weight(self, domain_id: int) -> float:
        """Estimated hidden-load share of ``domain_id`` (trace payloads)."""
        return self.estimator.share(domain_id)

    def _on_alarm(self, now: float, server_id: int, alarmed: bool) -> None:
        """Forward alarm transitions into the scheduler state.

        The :class:`AlarmProtocol` itself emits the ``"alarm"`` record;
        here the consequence for scheduling — the eligible-server set
        shrinking or regrowing — is traced as a ``"sched"`` record.
        """
        self.state.set_alarm(now, server_id, alarmed)
        if self.tracer.enabled:
            self.tracer.record(
                now,
                "sched",
                {
                    "server": server_id,
                    "excluded": alarmed,
                    "eligible": self.state.eligible_servers(),
                },
            )

    def advance(self, until: float) -> None:
        """Advance the clock to ``until`` (at most ``config.duration``).

        Segmenting a run into several ``advance`` calls dispatches the
        exact same events in the exact same order as one straight
        ``run(until=duration)`` — the property the checkpointing layer
        (:mod:`repro.experiments.checkpointing`) is built on and the
        resume-equivalence tests pin bit-for-bit.
        """
        self.env.run(until=min(float(until), self.config.duration))

    def snapshot_state(self) -> dict:
        """Canonical serializable state of every wired component.

        The composition for checkpoint digests: engine position, RNG
        substream states, DNS + NS caches, server fluid state, scheduler
        alarm view, estimator accumulators, monitor/alarm counters,
        workload census, collector samples and the metrics registry
        snapshot. Everything here is JSON-safe and deterministic for a
        given trajectory prefix, so two runs agree on this dict if and
        only if they are the same run so far.
        """
        state = {
            "engine": {
                "now": self.env.now,
                "dispatched": self.env.dispatched,
            },
            "rng": self.streams.state_dict(),
            "scheduler": self.state.snapshot_state(),
            "estimator": self.estimator.snapshot_state(),
            "dns": self.dns.stats.snapshot_state(),
            "resolution_chain": self.resolution_chain.snapshot_state(),
            "servers": [
                server.snapshot_state() for server in self.cluster
            ],
            "monitor": self.monitor.snapshot_state(),
            "alarm_protocol": (
                self.alarm_protocol.snapshot_state()
                if self.alarm_protocol is not None
                else None
            ),
            "population": self.population.snapshot_state(),
            "collector": self.collector.snapshot_state(),
            "metrics": self.metrics.snapshot(),
            "trace_records": (
                len(self.tracer) if self.tracer.enabled else None
            ),
        }
        return state

    def run(self) -> SimulationResult:
        """Advance the clock to ``config.duration`` and collect results."""
        self.advance(self.config.duration)
        return self.collect()

    def collect(self) -> SimulationResult:
        """Assemble the :class:`SimulationResult` for the current clock."""
        config = self.config
        now = self.env.now
        measured = max(now - config.warmup, 1e-12)
        total_resolutions = (
            self.resolution_chain.cache_answers
            + self.resolution_chain.authoritative_answers
        )
        ttl_stats = self.dns.stats.ttl
        page_count = sum(s.response_times.count for s in self.cluster)
        if page_count:
            mean_response = (
                sum(
                    s.response_times.mean * s.response_times.count
                    for s in self.cluster
                    if s.response_times.count
                )
                / page_count
            )
            max_response = max(
                s.response_times.maximum
                for s in self.cluster
                if s.response_times.count
            )
        else:
            mean_response = 0.0
            max_response = 0.0
        return SimulationResult(
            policy=self.spec.name,
            max_utilization_samples=list(self.collector.max_samples),
            mean_utilization_per_server=[
                stats.mean if stats.count else 0.0
                for stats in self.collector.per_server
            ],
            dns_resolutions=self.dns.stats.resolutions,
            address_request_rate=self.dns.stats.resolutions / now,
            dns_resolution_fraction=(
                self.dns.stats.resolutions / total_resolutions
                if total_resolutions
                else 0.0
            ),
            dns_control_fraction=self.population.dns_control_fraction,
            mean_granted_ttl=ttl_stats.mean if ttl_stats.count else 0.0,
            alarm_signals=(
                self.alarm_protocol.alarm_signals if self.alarm_protocol else 0
            ),
            ns_ttl_overrides=sum(
                self.resolution_chain.ttl_override_counts().values()
            ),
            mean_page_response_time=mean_response,
            max_page_response_time=max_response,
            mean_network_rtt=(
                self.population.network_rtt_stats.mean
                if self.population.network_rtt_stats.count
                else 0.0
            ),
            total_hits=self.population.total_hits,
            total_sessions=self.population.total_sessions,
            duration=measured,
            config=config,
            trace=list(self.tracer) if self.tracer.enabled else None,
            metrics=self.metrics.snapshot(),
            utilization_series=self.collector.series,
        )


def run_simulation(
    config: SimulationConfig, engine_mode: str = "event"
) -> SimulationResult:
    """Build and run one simulation (the one-call entry point).

    ``engine_mode="fastforward"`` runs the hybrid fluid/event engine
    (:mod:`repro.sim.fastforward`) — bit-identical results, measurably
    faster on eligible configurations.
    """
    return Simulation(config, engine_mode=engine_mode).run()
