"""Model validation: does a run behave the way the model promises?

Before trusting any policy comparison, a simulation study should verify
its own internal consistency. :func:`validate_run` re-runs one
configuration and checks the invariants the model guarantees:

* measured mean utilization tracks the configured offered load;
* hits arrived at servers equal hits issued by clients;
* the address-request rate matches the TTL calibration target;
* the DNS control fraction is small (the paper's premise);
* the batch-means confidence interval is tight enough to report.

Each check yields a :class:`ValidationCheck` with the measured and
expected values; :func:`validate_run` aggregates them into a
:class:`ValidationReport`. The CLI exposes this as ``repro validate``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..sim.stats import relative_ci_width
from .config import SimulationConfig
from .simulation import Simulation


@dataclass(frozen=True)
class ValidationCheck:
    """Outcome of one consistency check."""

    name: str
    passed: bool
    measured: float
    expected: float
    tolerance: str
    detail: str = ""

    def __str__(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        text = (
            f"[{status}] {self.name}: measured {self.measured:.4g}, "
            f"expected {self.expected:.4g} ({self.tolerance})"
        )
        if self.detail:
            text += f" — {self.detail}"
        return text


@dataclass
class ValidationReport:
    """All checks for one validated run."""

    config: SimulationConfig
    checks: List[ValidationCheck] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(check.passed for check in self.checks)

    def failures(self) -> List[ValidationCheck]:
        return [check for check in self.checks if not check.passed]

    def __str__(self) -> str:
        lines = [str(check) for check in self.checks]
        verdict = "all checks passed" if self.passed else (
            f"{len(self.failures())} check(s) FAILED"
        )
        lines.append(f"=> {verdict}")
        return "\n".join(lines)


def validate_run(
    config: Optional[SimulationConfig] = None,
    utilization_tolerance: float = 0.12,
    rate_tolerance: float = 0.35,
    ci_limit: float = 0.10,
) -> ValidationReport:
    """Run ``config`` (default: Table 1 defaults, 1 h) and check invariants."""
    if config is None:
        config = SimulationConfig(duration=3600.0)
    simulation = Simulation(config)
    result = simulation.run()
    report = ValidationReport(config=config)

    # 1. Offered load vs measured mean utilization.
    offered = config.offered_utilization
    measured_util = sum(result.mean_utilization_per_server) / len(
        result.mean_utilization_per_server
    )
    report.checks.append(
        ValidationCheck(
            name="mean utilization tracks offered load",
            passed=abs(measured_util - offered) <= utilization_tolerance,
            measured=measured_util,
            expected=offered,
            tolerance=f"abs diff <= {utilization_tolerance:g}",
        )
    )

    # 2. Conservation: hits issued == hits received.
    received = sum(server.total_hits for server in simulation.cluster)
    report.checks.append(
        ValidationCheck(
            name="hit conservation (clients -> servers)",
            passed=received == result.total_hits,
            measured=float(received),
            expected=float(result.total_hits),
            tolerance="exact",
        )
    )

    # 3. TTL calibration: address-request rate near K / TTL_const.
    reference_rate = config.domain_count / config.constant_ttl
    rate = result.address_request_rate
    rate_ok = (
        abs(rate - reference_rate) <= rate_tolerance * reference_rate
    )
    detail = ""
    if config.min_accepted_ttl > 0 or config.nameservers_per_domain > 1:
        # NS overrides / split caches intentionally shift the rate.
        rate_ok = True
        detail = "skipped: NS overrides or split caches shift the rate"
    report.checks.append(
        ValidationCheck(
            name="address-request rate matches calibration",
            passed=rate_ok,
            measured=rate,
            expected=reference_rate,
            tolerance=f"rel diff <= {rate_tolerance:.0%}",
            detail=detail,
        )
    )

    # 4. The paper's premise: DNS directly controls only a small share.
    report.checks.append(
        ValidationCheck(
            name="DNS control fraction is small",
            passed=result.dns_control_fraction < 0.15,
            measured=result.dns_control_fraction,
            expected=0.04,
            tolerance="< 0.15 (paper reports ~4%)",
        )
    )

    # 5. Output precision: batch-means CI of the max-utilization series.
    relative = relative_ci_width(result.max_utilization_samples)
    report.checks.append(
        ValidationCheck(
            name="batch-means CI width",
            passed=relative is not None and relative <= ci_limit,
            measured=relative if relative is not None else float("nan"),
            expected=0.04,
            tolerance=f"<= {ci_limit:.0%} of the mean "
            "(paper reports <= 4% at 5 h)",
        )
    )

    # 6. Sanity: utilizations within the fluid model's bounds.
    max_sample = max(result.max_utilization_samples)
    report.checks.append(
        ValidationCheck(
            name="utilization samples within [0, 1]",
            passed=0.0 <= max_sample <= 1.0 + 1e-9,
            measured=max_sample,
            expected=1.0,
            tolerance="<= 1",
        )
    )
    return report
