"""Geographic extension: placements, RTT matrices, proximity routing.

Optional — the paper's model abstracts the network away; enable via
``SimulationConfig(geography="random" | "clustered")`` to attach a
:class:`GeographicLayout` (page response times then include network RTT)
and to make the ``PROXIMITY`` / ``GEO-HYBRID`` policies available.
"""

from .placement import (
    DEFAULT_BASE_RTT,
    DEFAULT_RTT_PER_UNIT,
    GeographicLayout,
)
from .scheduler import ProximityScheduler

__all__ = [
    "DEFAULT_BASE_RTT",
    "DEFAULT_RTT_PER_UNIT",
    "GeographicLayout",
    "ProximityScheduler",
]
