"""Geographic placement of servers and client domains.

The paper's model deliberately abstracts the network away ("the focus of
our study on the Web site throughput allows us to avoid the details of
the network architecture"). This optional extension restores the
*geographic* dimension of the title: servers and client domains get
positions on a unit plane, and each (domain, server) pair a round-trip
time

``rtt = base_rtt + distance * rtt_per_unit``

which contributes to page response times and gives proximity-based
schedulers something to optimize. Load dynamics are unchanged — RTT is
a latency, not a capacity, effect — so every throughput result of the
reproduction is unaffected unless a proximity policy is selected.
"""

from __future__ import annotations

import math
import random
from typing import List, Sequence, Tuple

from ..errors import ConfigurationError
from ..sim.rng import derive_seed

Point = Tuple[float, float]

#: Default latency parameters: 5 ms floor plus up to ~140 ms across the
#: unit square's diagonal — transcontinental-scale numbers.
DEFAULT_BASE_RTT = 0.005
DEFAULT_RTT_PER_UNIT = 0.100


class GeographicLayout:
    """Positions of servers and domains plus the derived RTT matrix.

    Parameters
    ----------
    server_positions, domain_positions:
        Points on the unit plane.
    base_rtt:
        RTT floor in seconds (termination, last-mile).
    rtt_per_unit:
        Seconds of RTT per unit of Euclidean distance.
    """

    def __init__(
        self,
        server_positions: Sequence[Point],
        domain_positions: Sequence[Point],
        base_rtt: float = DEFAULT_BASE_RTT,
        rtt_per_unit: float = DEFAULT_RTT_PER_UNIT,
    ):
        if not server_positions:
            raise ConfigurationError("need at least one server position")
        if not domain_positions:
            raise ConfigurationError("need at least one domain position")
        if base_rtt < 0 or rtt_per_unit < 0:
            raise ConfigurationError("RTT parameters must be >= 0")
        self.server_positions: List[Point] = [
            (float(x), float(y)) for x, y in server_positions
        ]
        self.domain_positions: List[Point] = [
            (float(x), float(y)) for x, y in domain_positions
        ]
        self.base_rtt = float(base_rtt)
        self.rtt_per_unit = float(rtt_per_unit)
        self._rtt: List[List[float]] = [
            [
                self.base_rtt + self.rtt_per_unit * _distance(d, s)
                for s in self.server_positions
            ]
            for d in self.domain_positions
        ]

    # -- constructors ------------------------------------------------------

    @classmethod
    def random(
        cls,
        domain_count: int,
        server_count: int,
        seed: int = 0,
        **rtt_kwargs,
    ) -> "GeographicLayout":
        """Uniformly random placement of servers and domains."""
        rng = random.Random(derive_seed(seed, "geo.random"))
        servers = [(rng.random(), rng.random()) for _ in range(server_count)]
        domains = [(rng.random(), rng.random()) for _ in range(domain_count)]
        return cls(servers, domains, **rtt_kwargs)

    @classmethod
    def clustered(
        cls,
        domain_count: int,
        server_count: int,
        seed: int = 0,
        cluster_spread: float = 0.08,
        **rtt_kwargs,
    ) -> "GeographicLayout":
        """Domains clustered around servers (population-center pattern).

        Servers are spread on a ring; each domain is placed near a
        *random* server with Gaussian spread, so popular domains are not
        automatically near big servers — the interesting conflict for
        proximity routing.
        """
        rng = random.Random(derive_seed(seed, "geo.clustered"))
        servers = [
            (
                0.5 + 0.4 * math.cos(2 * math.pi * i / server_count),
                0.5 + 0.4 * math.sin(2 * math.pi * i / server_count),
            )
            for i in range(server_count)
        ]
        domains = []
        for _ in range(domain_count):
            cx, cy = servers[rng.randrange(server_count)]
            domains.append(
                (
                    min(1.0, max(0.0, rng.gauss(cx, cluster_spread))),
                    min(1.0, max(0.0, rng.gauss(cy, cluster_spread))),
                )
            )
        return cls(servers, domains, **rtt_kwargs)

    # -- queries ---------------------------------------------------------------

    @property
    def server_count(self) -> int:
        return len(self.server_positions)

    @property
    def domain_count(self) -> int:
        return len(self.domain_positions)

    def rtt(self, domain_id: int, server_id: int) -> float:
        """Round-trip time between a domain and a server, in seconds."""
        return self._rtt[domain_id][server_id]

    def nearest_server(self, domain_id: int) -> int:
        """Index of the server with the smallest RTT from ``domain_id``."""
        row = self._rtt[domain_id]
        return min(range(len(row)), key=row.__getitem__)

    def servers_by_rtt(self, domain_id: int) -> List[int]:
        """Server indices sorted by increasing RTT from ``domain_id``."""
        row = self._rtt[domain_id]
        return sorted(range(len(row)), key=row.__getitem__)

    def mean_rtt(self, domain_id: int) -> float:
        """Average RTT from ``domain_id`` across all servers."""
        row = self._rtt[domain_id]
        return sum(row) / len(row)

    def __repr__(self) -> str:
        return (
            f"<GeographicLayout servers={self.server_count} "
            f"domains={self.domain_count} base_rtt={self.base_rtt:g}s>"
        )


def _distance(a: Point, b: Point) -> float:
    return math.hypot(a[0] - b[0], a[1] - b[1])
