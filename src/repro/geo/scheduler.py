"""Proximity-based DNS scheduling (the classic GeoDNS strategy).

The straightforward geographic policy answers every address request with
the *nearest* server — minimizing network latency and ignoring load. In
a skew-heavy workload that is exactly wrong for balance: the servers
nearest the hottest domains melt while far ones idle. The
:class:`ProximityScheduler` supports a ``slack`` factor to trade the two
off: all eligible servers within ``slack x`` the nearest RTT form the
candidate set, which is then filled capacity-proportionally (smooth
weighted round-robin credits), recovering some balance while staying
near-local.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.base import Scheduler
from ..core.state import SchedulerState
from ..errors import ConfigurationError
from .placement import GeographicLayout


class ProximityScheduler(Scheduler):
    """Nearest-server DNS routing with an optional latency slack.

    Parameters
    ----------
    state:
        Shared scheduler state.
    layout:
        Geographic placement providing the RTT matrix.
    slack:
        Candidate set = eligible servers with
        ``rtt <= slack * rtt(nearest eligible)``. ``1.0`` = strictly
        nearest (pure GeoDNS); larger values trade latency for balance.
    """

    name = "PROXIMITY"

    def __init__(
        self,
        state: SchedulerState,
        layout: GeographicLayout,
        slack: float = 1.0,
    ):
        super().__init__(state)
        if layout.server_count != state.server_count:
            raise ConfigurationError(
                f"layout has {layout.server_count} servers, "
                f"state has {state.server_count}"
            )
        if slack < 1.0:
            raise ConfigurationError(f"slack must be >= 1.0, got {slack!r}")
        self.layout = layout
        self.slack = float(slack)
        self._credit: List[float] = [0.0] * state.server_count

    def _candidates(self, domain_id: int) -> List[int]:
        nearest_rtt: Optional[float] = None
        ordered = self.layout.servers_by_rtt(domain_id)
        candidates: List[int] = []
        for server_id in ordered:
            if not self.state.is_eligible(server_id):
                continue
            rtt = self.layout.rtt(domain_id, server_id)
            if nearest_rtt is None:
                nearest_rtt = rtt
            if rtt <= self.slack * nearest_rtt:
                candidates.append(server_id)
            else:
                break  # ordered by RTT: nothing further qualifies
        return candidates

    def select(self, domain_id: int, now: float) -> int:
        candidates = self._candidates(domain_id)
        if len(candidates) == 1:
            return candidates[0]
        # Smooth weighted round-robin among the candidate set, so repeat
        # requests from the same region interleave by capacity.
        alphas = self.state.relative_capacities
        total = 0.0
        best = candidates[0]
        best_credit = -float("inf")
        for server_id in candidates:
            self._credit[server_id] += alphas[server_id]
            total += alphas[server_id]
            if self._credit[server_id] > best_credit:
                best = server_id
                best_credit = self._credit[server_id]
        self._credit[best] -= total
        return best
