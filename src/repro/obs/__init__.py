"""Unified observability layer: metrics, trace export, provenance, telemetry.

Five cooperating pieces sit on top of the
:mod:`repro.sim.tracing` tracer skeleton:

* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges, time-weighted histograms and bounded :class:`TimeSeries` that
  every simulation subsystem registers into (pull-based, so the hot
  path pays nothing);
* :mod:`repro.obs.export` — JSONL serialization of trace records (with
  a salvage mode for truncated files), the per-category count
  fingerprint of a traced run, and Prometheus text exposition of
  metrics snapshots;
* :mod:`repro.obs.provenance` — per-run manifests (config, seed,
  package version, git state, environment fingerprint) written next to
  experiment outputs;
* :mod:`repro.obs.progress` — streaming per-cell heartbeats from the
  parallel executor into terminal renderers and JSONL progress logs;
* :mod:`repro.obs.report` — self-contained run reports from saved
  bundles, and regression-gating comparisons between two bundles.

See ``docs/OBSERVABILITY.md`` for the category catalogue, the JSONL
schemas, the live-telemetry workflow and the measured overhead numbers.
"""

from .export import (
    TraceDamage,
    category_counts,
    metrics_to_prom_text,
    read_trace_jsonl,
    record_from_dict,
    record_to_dict,
    salvage_trace_jsonl,
    write_metrics_prom,
    write_trace_jsonl,
)
from .metrics import (
    TIMESERIES_BUDGET,
    UTILIZATION_BINS,
    Counter,
    Gauge,
    MetricsRegistry,
    TimeSeries,
    TimeWeightedHistogram,
)
from .progress import (
    FINISHED,
    STARTED,
    JsonlProgressSink,
    NullProgressSink,
    ProgressEvent,
    ProgressSink,
    TeeProgressSink,
    TerminalProgressRenderer,
    read_progress_jsonl,
    salvage_progress_jsonl,
)
from .provenance import (
    MANIFEST_KIND,
    MANIFEST_VERSION,
    build_manifest,
    environment_fingerprint,
    git_describe,
    read_manifest,
    write_manifest,
)
from .report import (
    BundleComparison,
    MetricDelta,
    RunBundle,
    compare_bundles,
    load_bundle,
    render_report,
)

__all__ = [
    "BundleComparison",
    "Counter",
    "FINISHED",
    "Gauge",
    "JsonlProgressSink",
    "MANIFEST_KIND",
    "MANIFEST_VERSION",
    "MetricDelta",
    "MetricsRegistry",
    "NullProgressSink",
    "ProgressEvent",
    "ProgressSink",
    "RunBundle",
    "STARTED",
    "TIMESERIES_BUDGET",
    "TeeProgressSink",
    "TerminalProgressRenderer",
    "TimeSeries",
    "TimeWeightedHistogram",
    "TraceDamage",
    "UTILIZATION_BINS",
    "build_manifest",
    "category_counts",
    "compare_bundles",
    "environment_fingerprint",
    "git_describe",
    "load_bundle",
    "metrics_to_prom_text",
    "read_manifest",
    "read_progress_jsonl",
    "read_trace_jsonl",
    "record_from_dict",
    "record_to_dict",
    "render_report",
    "salvage_progress_jsonl",
    "salvage_trace_jsonl",
    "write_metrics_prom",
    "write_trace_jsonl",
    "write_manifest",
]
