"""Unified observability layer: metrics, trace export, provenance, telemetry.

Seven cooperating pieces sit on top of the
:mod:`repro.sim.tracing` tracer skeleton:

* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges, time-weighted histograms and bounded :class:`TimeSeries` that
  every simulation subsystem registers into (pull-based, so the hot
  path pays nothing);
* :mod:`repro.obs.export` — JSONL serialization of trace records (with
  a salvage mode for truncated files), the per-category count
  fingerprint of a traced run, and Prometheus text exposition of
  metrics snapshots;
* :mod:`repro.obs.provenance` — per-run manifests (config, seed,
  package version, git state, environment fingerprint) written next to
  experiment outputs;
* :mod:`repro.obs.progress` — streaming per-cell heartbeats from the
  parallel executor into terminal renderers and JSONL progress logs;
* :mod:`repro.obs.report` — self-contained run reports from saved
  bundles, and regression-gating comparisons between two bundles;
* :mod:`repro.obs.spans` — causally-correlated cell-lifecycle span
  events for the multi-host dispatch fabric, a reconstructor that
  rebuilds per-cell timelines from merged span logs, and the crash
  ring buffer flushed by dying workers;
* :mod:`repro.obs.http` — a stdlib HTTP endpoint serving any
  :class:`MetricsRegistry` as Prometheus text (``/metrics``) plus a
  JSON liveness probe (``/healthz``).

See ``docs/OBSERVABILITY.md`` for the category catalogue, the JSONL
schemas, the live-telemetry workflow and the measured overhead numbers.
"""

from .export import (
    PromExposition,
    TraceDamage,
    category_counts,
    metrics_to_prom_text,
    parse_prom_text,
    read_trace_jsonl,
    record_from_dict,
    record_to_dict,
    salvage_trace_jsonl,
    write_metrics_prom,
    write_trace_jsonl,
)
from .http import ObservabilityServer, scrape_endpoint
from .metrics import (
    TIMESERIES_BUDGET,
    UTILIZATION_BINS,
    Counter,
    Gauge,
    MetricsRegistry,
    TimeSeries,
    TimeWeightedHistogram,
)
from .progress import (
    FINISHED,
    ROSTER,
    STARTED,
    JsonlProgressSink,
    NullProgressSink,
    ProgressEvent,
    ProgressSink,
    TeeProgressSink,
    TerminalProgressRenderer,
    read_progress_jsonl,
    salvage_progress_jsonl,
)
from .provenance import (
    MANIFEST_KIND,
    MANIFEST_VERSION,
    build_manifest,
    environment_fingerprint,
    git_describe,
    read_manifest,
    write_manifest,
)
from .report import (
    BundleComparison,
    MetricDelta,
    RunBundle,
    compare_bundles,
    load_bundle,
    render_report,
)
from .spans import (
    FabricTimeline,
    Reconciliation,
    SpanEvent,
    SpanRecorder,
    crash_file_name,
    load_span_logs,
    read_span_jsonl,
    render_fabric_timeline,
    salvage_span_jsonl,
)

__all__ = [
    "BundleComparison",
    "Counter",
    "FINISHED",
    "FabricTimeline",
    "Gauge",
    "JsonlProgressSink",
    "MANIFEST_KIND",
    "MANIFEST_VERSION",
    "MetricDelta",
    "MetricsRegistry",
    "NullProgressSink",
    "ObservabilityServer",
    "ProgressEvent",
    "ProgressSink",
    "PromExposition",
    "ROSTER",
    "Reconciliation",
    "RunBundle",
    "STARTED",
    "SpanEvent",
    "SpanRecorder",
    "TIMESERIES_BUDGET",
    "TeeProgressSink",
    "TerminalProgressRenderer",
    "TimeSeries",
    "TimeWeightedHistogram",
    "TraceDamage",
    "UTILIZATION_BINS",
    "build_manifest",
    "category_counts",
    "compare_bundles",
    "crash_file_name",
    "environment_fingerprint",
    "git_describe",
    "load_bundle",
    "load_span_logs",
    "metrics_to_prom_text",
    "parse_prom_text",
    "read_manifest",
    "read_progress_jsonl",
    "read_span_jsonl",
    "read_trace_jsonl",
    "record_from_dict",
    "record_to_dict",
    "render_fabric_timeline",
    "render_report",
    "salvage_progress_jsonl",
    "salvage_span_jsonl",
    "salvage_trace_jsonl",
    "scrape_endpoint",
    "write_metrics_prom",
    "write_trace_jsonl",
    "write_manifest",
]
