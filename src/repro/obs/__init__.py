"""Unified observability layer: metrics, trace export, provenance.

Three cooperating pieces sit on top of the
:mod:`repro.sim.tracing` tracer skeleton:

* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges and time-weighted histograms that every simulation subsystem
  registers into (pull-based, so the hot path pays nothing);
* :mod:`repro.obs.export` — JSONL serialization of trace records and the
  per-category count fingerprint of a traced run;
* :mod:`repro.obs.provenance` — per-run manifests (config, seed, package
  version, git state) written next to experiment outputs.

See ``docs/OBSERVABILITY.md`` for the category catalogue, the JSONL
schema and the measured overhead numbers.
"""

from .export import (
    category_counts,
    read_trace_jsonl,
    record_from_dict,
    record_to_dict,
    write_trace_jsonl,
)
from .metrics import (
    UTILIZATION_BINS,
    Counter,
    Gauge,
    MetricsRegistry,
    TimeWeightedHistogram,
)
from .provenance import (
    MANIFEST_KIND,
    MANIFEST_VERSION,
    build_manifest,
    git_describe,
    read_manifest,
    write_manifest,
)

__all__ = [
    "Counter",
    "Gauge",
    "MANIFEST_KIND",
    "MANIFEST_VERSION",
    "MetricsRegistry",
    "TimeWeightedHistogram",
    "UTILIZATION_BINS",
    "build_manifest",
    "category_counts",
    "git_describe",
    "read_manifest",
    "read_trace_jsonl",
    "record_from_dict",
    "record_to_dict",
    "write_trace_jsonl",
    "write_manifest",
]
