"""JSONL export of trace records.

One JSON object per line, schema::

    {"time": <float>, "category": <str>, "payload": <JSON value or null>}

JSONL is the interchange format of the observability layer: it streams,
it diffs, it greps, and every analysis stack ingests it. Export is
loss-free for JSON-representable payloads (the instrumentation in this
package only emits dicts of numbers, strings and booleans); tuples come
back as lists, which is the standard JSON round-trip caveat.
"""

from __future__ import annotations

import json
import pathlib
import re
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from ..errors import ConfigurationError
from ..sim.tracing import TraceRecord

PathLike = Union[str, pathlib.Path]


@dataclass(frozen=True)
class TraceDamage:
    """Where and why a trace file stopped being readable.

    ``byte_offset`` is the offset of the first damaged line's start —
    the point up to which the file is intact (e.g. to truncate a
    crashed run's trace back to a fully valid JSONL file).
    """

    line_number: int
    byte_offset: int
    reason: str

    def __str__(self) -> str:
        return (
            f"line {self.line_number} (byte offset {self.byte_offset}): "
            f"{self.reason}"
        )


def record_to_dict(record: TraceRecord) -> Dict[str, object]:
    """The JSONL object for one trace record."""
    return {
        "time": record.time,
        "category": record.category,
        "payload": record.payload,
    }


def record_from_dict(data: Dict[str, object]) -> TraceRecord:
    """Rebuild a :class:`TraceRecord` from its JSONL object."""
    try:
        return TraceRecord(
            time=float(data["time"]),
            category=str(data["category"]),
            payload=data.get("payload"),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigurationError(f"malformed trace record {data!r}") from exc


def write_trace_jsonl(
    records: Iterable[TraceRecord], path: PathLike
) -> pathlib.Path:
    """Write ``records`` to ``path`` as JSONL; returns the path."""
    path = pathlib.Path(path)
    with path.open("w", encoding="utf-8") as stream:
        for record in records:
            stream.write(
                json.dumps(record_to_dict(record), sort_keys=True) + "\n"
            )
    return path


def read_trace_jsonl(
    path: PathLike, *, strict: bool = True
) -> List[TraceRecord]:
    """Load every trace record written by :func:`write_trace_jsonl`.

    ``strict=True`` (the default) raises
    :class:`~repro.errors.ConfigurationError` on the first malformed
    line. ``strict=False`` is the salvage mode for the trace of a
    crashed or killed run — whose final line is typically truncated
    mid-record — returning every complete record and silently dropping
    the damage; use :func:`salvage_trace_jsonl` when the damage location
    matters.
    """
    records, _ = salvage_trace_jsonl(path, strict=strict)
    return records


def salvage_trace_jsonl(
    path: PathLike, *, strict: bool = False
) -> Tuple[List[TraceRecord], Optional[TraceDamage]]:
    """Read a trace file, reporting where (if anywhere) it is damaged.

    Returns ``(records, damage)``: all records up to the first
    unreadable line, and a :class:`TraceDamage` naming that line and its
    byte offset (``None`` for a fully intact file). With ``strict=True``
    the damage is raised as :class:`~repro.errors.ConfigurationError`
    instead (matching :func:`read_trace_jsonl`'s default behaviour).
    """
    records: List[TraceRecord] = []
    byte_offset = 0
    with pathlib.Path(path).open("r", encoding="utf-8", newline="") as stream:
        for line_number, raw_line in enumerate(stream, start=1):
            line = raw_line.strip()
            if not line:
                byte_offset += len(raw_line.encode("utf-8"))
                continue
            try:
                data = json.loads(line)
                record = record_from_dict(data)
            except json.JSONDecodeError as exc:
                if strict:
                    raise ConfigurationError(
                        f"{path}:{line_number}: not valid JSON"
                    ) from exc
                return records, TraceDamage(
                    line_number, byte_offset, "not valid JSON"
                )
            except ConfigurationError as exc:
                if strict:
                    raise
                return records, TraceDamage(
                    line_number, byte_offset, str(exc)
                )
            records.append(record)
            byte_offset += len(raw_line.encode("utf-8"))
    return records, None


def _prom_name(name: str, prefix: str) -> str:
    """A legal Prometheus metric name for a dotted registry name."""
    return prefix + "_" + re.sub(r"[^a-zA-Z0-9_]", "_", name)


def _prom_number(value: float) -> str:
    """Prometheus-style rendering of one sample value."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _prom_help_text(text: str) -> str:
    """Escape a ``# HELP`` string per the text exposition format."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def metrics_to_prom_text(
    metrics: Dict[str, Any],
    prefix: str = "repro",
    meta: Optional[Dict[str, Dict[str, Optional[str]]]] = None,
) -> str:
    """Prometheus text exposition of a metrics-registry snapshot.

    ``metrics`` is a :meth:`repro.obs.MetricsRegistry.snapshot` dict (as
    carried on ``SimulationResult.metrics``). Scalars become untyped
    samples; :class:`~repro.obs.metrics.TimeWeightedHistogram` snapshots
    become cumulative ``_seconds_bucket{le=...}`` series (bucket values
    are *seconds spent* below each edge, the time-weighted analogue of
    observation counts) plus ``_seconds_sum`` / ``_count``;
    :class:`~repro.obs.metrics.TimeSeries` snapshots export their latest
    value as a gauge plus an ``_observations`` counter (a text
    exposition carries current state, not history — the full timeline
    stays in the result JSON). Non-numeric values are skipped with a
    ``# skipped`` comment so the exposition always parses.

    ``meta`` is :meth:`repro.obs.MetricsRegistry.metadata` output (or
    any ``{name: {"kind", "help"}}`` dict): named scalars then carry
    ``# HELP`` and ``# TYPE`` comment lines, making the output valid
    for real Prometheus scrapers, not just greppable.
    """
    meta = meta or {}
    lines: List[str] = []

    def describe(sample_name: str, registry_name: str) -> None:
        info = meta.get(registry_name)
        if info is not None and info.get("help"):
            lines.append(
                f"# HELP {sample_name} {_prom_help_text(str(info['help']))}"
            )

    for name, value in sorted(metrics.items()):
        full = _prom_name(name, prefix)
        if isinstance(value, dict) and value.get("kind") == "timeseries":
            describe(full, name)
            lines.append(f"# TYPE {full} gauge")
            if value["samples"]:
                lines.append(f"{full} {_prom_number(value['samples'][-1][1])}")
            lines.append(f"# TYPE {full}_observations counter")
            lines.append(f"{full}_observations {value['observations']}")
        elif isinstance(value, dict) and "bucket_seconds" in value:
            describe(f"{full}_seconds", name)
            lines.append(f"# TYPE {full}_seconds histogram")
            cumulative = 0.0
            for edge, seconds in zip(value["bins"], value["bucket_seconds"]):
                cumulative += seconds
                lines.append(
                    f'{full}_seconds_bucket{{le="{edge:g}"}} '
                    f"{_prom_number(cumulative)}"
                )
            lines.append(
                f'{full}_seconds_bucket{{le="+Inf"}} '
                f"{_prom_number(value['total_seconds'])}"
            )
            weighted_sum = value["mean"] * value["total_seconds"]
            lines.append(f"{full}_seconds_sum {_prom_number(weighted_sum)}")
            lines.append(f"{full}_count {value['observations']}")
        elif isinstance(value, (int, float)):
            info = meta.get(name)
            if info is not None:
                describe(full, name)
                kind = "counter" if info.get("kind") == "counter" else "gauge"
                lines.append(f"# TYPE {full} {kind}")
            lines.append(f"{full} {_prom_number(value)}")
        else:
            lines.append(f"# skipped {full}: non-numeric value")
    return "\n".join(lines) + "\n"


#: Sample-line grammar of the text exposition format (no timestamps —
#: this package never emits them).
_PROM_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^{}]*\})?"
    r" (?P<value>[^ ]+)$"
)

_PROM_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


@dataclass(frozen=True)
class PromExposition:
    """A parsed Prometheus text exposition (samples, types, helps).

    ``samples`` is keyed by the full sample key — metric name plus its
    literal label block when present (``repro_util_max`` or
    ``repro_util_windowed_seconds_bucket{le="0.9"}``).
    """

    samples: Dict[str, float]
    types: Dict[str, str]
    helps: Dict[str, str]

    def value(self, key: str) -> float:
        """The sample for ``key``; raises ``KeyError`` when absent."""
        return self.samples[key]


def parse_prom_text(text: str) -> PromExposition:
    """Parse (and thereby validate) a text-format exposition.

    Raises :class:`~repro.errors.ConfigurationError` on any line that
    is not a well-formed sample, a ``# HELP`` / ``# TYPE`` comment, a
    free comment, or blank — the validation the CI smoke job runs
    against a live ``/metrics`` scrape. A ``# TYPE`` naming an unknown
    type is rejected too.
    """
    samples: Dict[str, float] = {}
    types: Dict[str, str] = {}
    helps: Dict[str, str] = {}
    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] == "TYPE":
                if len(parts) != 4 or parts[3] not in _PROM_TYPES:
                    raise ConfigurationError(
                        f"line {line_number}: bad TYPE comment {line!r}"
                    )
                types[parts[2]] = parts[3]
            elif len(parts) >= 3 and parts[1] == "HELP":
                helps[parts[2]] = parts[3] if len(parts) == 4 else ""
            continue
        match = _PROM_SAMPLE.match(line)
        if match is None:
            raise ConfigurationError(
                f"line {line_number}: not a valid sample line {line!r}"
            )
        try:
            value = float(match.group("value"))
        except ValueError as exc:
            raise ConfigurationError(
                f"line {line_number}: bad sample value {line!r}"
            ) from exc
        key = match.group("name") + (match.group("labels") or "")
        samples[key] = value
    return PromExposition(samples=samples, types=types, helps=helps)


def write_metrics_prom(
    metrics: Dict[str, Any],
    path: PathLike,
    prefix: str = "repro",
    meta: Optional[Dict[str, Dict[str, Optional[str]]]] = None,
) -> pathlib.Path:
    """Write :func:`metrics_to_prom_text` output to ``path``."""
    path = pathlib.Path(path)
    path.write_text(metrics_to_prom_text(metrics, prefix=prefix, meta=meta))
    return path


def category_counts(records: Iterable[TraceRecord]) -> Dict[str, int]:
    """Record counts per category, name-sorted.

    This is the reproducibility fingerprint of a traced run: for a fixed
    config and seed the counts are bit-identical however the run was
    executed (serially, or through any worker count of the parallel
    executor).
    """
    counts: Dict[str, int] = {}
    for record in records:
        counts[record.category] = counts.get(record.category, 0) + 1
    return dict(sorted(counts.items()))
