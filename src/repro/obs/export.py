"""JSONL export of trace records.

One JSON object per line, schema::

    {"time": <float>, "category": <str>, "payload": <JSON value or null>}

JSONL is the interchange format of the observability layer: it streams,
it diffs, it greps, and every analysis stack ingests it. Export is
loss-free for JSON-representable payloads (the instrumentation in this
package only emits dicts of numbers, strings and booleans); tuples come
back as lists, which is the standard JSON round-trip caveat.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Iterable, List, Union

from ..errors import ConfigurationError
from ..sim.tracing import TraceRecord

PathLike = Union[str, pathlib.Path]


def record_to_dict(record: TraceRecord) -> Dict[str, object]:
    """The JSONL object for one trace record."""
    return {
        "time": record.time,
        "category": record.category,
        "payload": record.payload,
    }


def record_from_dict(data: Dict[str, object]) -> TraceRecord:
    """Rebuild a :class:`TraceRecord` from its JSONL object."""
    try:
        return TraceRecord(
            time=float(data["time"]),
            category=str(data["category"]),
            payload=data.get("payload"),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigurationError(f"malformed trace record {data!r}") from exc


def write_trace_jsonl(
    records: Iterable[TraceRecord], path: PathLike
) -> pathlib.Path:
    """Write ``records`` to ``path`` as JSONL; returns the path."""
    path = pathlib.Path(path)
    with path.open("w", encoding="utf-8") as stream:
        for record in records:
            stream.write(
                json.dumps(record_to_dict(record), sort_keys=True) + "\n"
            )
    return path


def read_trace_jsonl(path: PathLike) -> List[TraceRecord]:
    """Load every trace record written by :func:`write_trace_jsonl`."""
    records: List[TraceRecord] = []
    with pathlib.Path(path).open("r", encoding="utf-8") as stream:
        for line_number, line in enumerate(stream, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ConfigurationError(
                    f"{path}:{line_number}: not valid JSON"
                ) from exc
            records.append(record_from_dict(data))
    return records


def category_counts(records: Iterable[TraceRecord]) -> Dict[str, int]:
    """Record counts per category, name-sorted.

    This is the reproducibility fingerprint of a traced run: for a fixed
    config and seed the counts are bit-identical however the run was
    executed (serially, or through any worker count of the parallel
    executor).
    """
    counts: Dict[str, int] = {}
    for record in records:
        counts[record.category] = counts.get(record.category, 0) + 1
    return dict(sorted(counts.items()))
