"""Scrapeable observability endpoints for the dispatch fabric.

A coordinator or worker started with ``--metrics-port`` serves two
paths from a stdlib :class:`~http.server.ThreadingHTTPServer` on a
daemon thread:

* ``/metrics`` — the process's :class:`~repro.obs.MetricsRegistry`
  snapshot in Prometheus text exposition format (via
  :func:`~repro.obs.export.metrics_to_prom_text`, with ``# HELP`` /
  ``# TYPE`` lines from the registry's instrument metadata);
* ``/healthz`` — a small JSON liveness document (role, identity,
  uptime) for load balancers and smoke tests.

The server is pure pull: nothing in the dispatch or simulation path
blocks on, writes to, or even knows about it — a scrape calls the same
registry callbacks a snapshot would. No port, no server, no thread:
the feature is entirely absent unless an operator asked for it.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Optional, Tuple, Union

from ..errors import ConfigurationError
from .export import metrics_to_prom_text
from .metrics import MetricsRegistry

#: Content type of the Prometheus text exposition format.
PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _Handler(BaseHTTPRequestHandler):
    """Serves ``/metrics`` and ``/healthz`` off the owning server."""

    server: "_Server"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            registry = self.server.registry
            body = metrics_to_prom_text(
                registry.snapshot(),
                prefix=self.server.prefix,
                meta=registry.metadata(),
            ).encode("utf-8")
            self._reply(200, PROM_CONTENT_TYPE, body)
        elif path == "/healthz":
            health: Dict[str, Any] = {"status": "ok"}
            if self.server.health is not None:
                health.update(self.server.health())
            body = json.dumps(health, sort_keys=True).encode("utf-8")
            self._reply(200, "application/json", body)
        else:
            self._reply(404, "text/plain; charset=utf-8", b"not found\n")

    def _reply(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: Any) -> None:
        """Silence per-request stderr chatter (scrapes are periodic)."""


class _Server(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the registry for its handlers."""

    daemon_threads = True

    registry: MetricsRegistry
    prefix: str
    health: Optional[Callable[[], Dict[str, Any]]]


class ObservabilityServer:
    """Serve ``/metrics`` and ``/healthz`` for one process.

    Parameters
    ----------
    port:
        TCP port to bind (``0`` picks an ephemeral port — read
        :attr:`address` after :meth:`start`).
    registry:
        The :class:`~repro.obs.MetricsRegistry` scraped by ``/metrics``.
    host:
        Bind address (default loopback; bind ``0.0.0.0`` explicitly to
        expose the endpoint off-host).
    prefix:
        Prometheus metric-name prefix (default ``repro``).
    health:
        Optional zero-argument callable returning extra JSON-safe
        fields merged into the ``/healthz`` document.
    """

    def __init__(
        self,
        port: int,
        registry: MetricsRegistry,
        *,
        host: str = "127.0.0.1",
        prefix: str = "repro",
        health: Optional[Callable[[], Dict[str, Any]]] = None,
    ):
        if not 0 <= int(port) <= 65535:
            raise ConfigurationError(
                f"metrics port out of range: {port!r}"
            )
        self.port = int(port)
        self.host = host
        self.registry = registry
        self.prefix = prefix
        self.health = health
        self._server: Optional[_Server] = None
        self._thread: Optional[threading.Thread] = None

    def start(self) -> Tuple[str, int]:
        """Bind and serve on a daemon thread; returns ``(host, port)``."""
        if self._server is None:
            try:
                server = _Server((self.host, self.port), _Handler)
            except OSError as exc:
                raise ConfigurationError(
                    f"cannot serve metrics on {self.host}:{self.port}: {exc}"
                ) from exc
            server.registry = self.registry
            server.prefix = self.prefix
            server.health = self.health
            self._server = server
            self._thread = threading.Thread(
                target=server.serve_forever,
                name="obs-http",
                daemon=True,
            )
            self._thread.start()
        return self.address

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)``; :meth:`start` must have run."""
        if self._server is None:
            raise ConfigurationError("observability server not started")
        return self._server.server_address[:2]

    def close(self) -> None:
        """Stop serving and release the port (idempotent)."""
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    def __enter__(self) -> "ObservabilityServer":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        bound = (
            "%s:%d" % self.address if self._server is not None else "unbound"
        )
        return f"<ObservabilityServer {bound}>"


def uptime_clock() -> Callable[[], float]:
    """A zero-argument monotonic uptime reader, anchored now."""
    start = time.monotonic()
    return lambda: time.monotonic() - start


# -- scraping -----------------------------------------------------------------


def scrape(url: str, timeout: float = 5.0) -> str:
    """GET ``url`` and return the body text (stdlib urllib, no deps)."""
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.read().decode("utf-8")


def scrape_endpoint(
    address: Union[str, Tuple[str, int]],
    path: str = "/metrics",
    timeout: float = 5.0,
) -> str:
    """Scrape ``path`` from a ``host:port`` (or tuple) endpoint."""
    if isinstance(address, tuple):
        address = "%s:%d" % address
    if "://" not in address:
        address = f"http://{address}"
    return scrape(address.rstrip("/") + path, timeout=timeout)
