"""Instrument types and the metrics registry.

The registry is the pull-based half of the observability layer (the
:mod:`repro.sim.tracing` tracer is the push-based half). Subsystems
register *instruments* — :class:`Counter`, :class:`Gauge`,
:class:`TimeWeightedHistogram` — or plain zero-argument callbacks under
dotted names (``dns.resolutions``, ``ns.cache_answers``, ...), and a
single :meth:`MetricsRegistry.snapshot` call materializes every value as
a flat, JSON-safe dictionary.

Design constraint: the simulation hot path must not slow down when
nobody is looking. Callback registration costs one dict insert at
construction time and nothing per event, so subsystems register their
existing statistics (which they maintain anyway) rather than double
counting. Push-style instruments are reserved for low-frequency code
paths (one utilization window every ``utilization_interval`` simulated
seconds, for example).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError

#: Default bin edges for utilization-valued histograms: the thresholds
#: the paper's metrics care about (0.9 = alarm threshold theta, 0.98 =
#: the overload indicator).
UTILIZATION_BINS = (0.5, 0.75, 0.9, 0.98)

#: Default sample budget of a :class:`TimeSeries` instrument.
TIMESERIES_BUDGET = 256


class Counter:
    """A monotonically increasing integer instrument."""

    __slots__ = ("name", "value", "help")

    def __init__(self, name: str, help: Optional[str] = None):
        self.name = name
        self.value = 0
        self.help = help

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (inc({amount!r}))"
            )
        self.value += amount


class Gauge:
    """A point-in-time float instrument."""

    __slots__ = ("name", "value", "help")

    def __init__(self, name: str, help: Optional[str] = None):
        self.name = name
        self.value = 0.0
        self.help = help

    def set(self, value: float) -> None:
        self.value = float(value)


class TimeWeightedHistogram:
    """A histogram of a piecewise-constant signal, weighted by time.

    ``observe(now, value)`` declares that the signal took ``value`` from
    the *previous* observation time up to ``now`` — the natural reading
    for periodically sampled quantities like windowed utilization, where
    each sample summarizes the interval that just closed.
    """

    def __init__(
        self,
        name: str,
        bins: Sequence[float] = UTILIZATION_BINS,
        help: Optional[str] = None,
    ):
        edges = tuple(float(edge) for edge in bins)
        if list(edges) != sorted(set(edges)):
            raise ConfigurationError(
                f"histogram bins must be strictly increasing, got {bins!r}"
            )
        self.name = name
        self.help = help
        self.bins = edges
        #: Seconds spent at a value < edge, per edge, plus a final
        #: overflow bucket (value >= last edge).
        self.bucket_seconds: List[float] = [0.0] * (len(edges) + 1)
        self.total_seconds = 0.0
        self._weighted_sum = 0.0
        self._last_time: Optional[float] = None
        self.observations = 0
        self.maximum: Optional[float] = None

    def observe(self, now: float, value: float) -> None:
        """Record that the signal was ``value`` since the last call."""
        value = float(value)
        self.observations += 1
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        if self._last_time is not None:
            width = now - self._last_time
            if width < 0:
                raise ConfigurationError(
                    f"histogram {self.name!r} observed time going backwards"
                )
            index = 0
            while index < len(self.bins) and value >= self.bins[index]:
                index += 1
            self.bucket_seconds[index] += width
            self.total_seconds += width
            self._weighted_sum += value * width
        self._last_time = now

    @property
    def mean(self) -> float:
        """Time-weighted mean of the signal (0 before two observations)."""
        if self.total_seconds <= 0:
            return 0.0
        return self._weighted_sum / self.total_seconds

    def fraction_below(self, edge: float) -> float:
        """Fraction of covered time the signal spent below ``edge``.

        ``edge`` must be one of the configured bin edges.
        """
        if edge not in self.bins:
            raise ConfigurationError(
                f"{edge!r} is not an edge of histogram {self.name!r}"
            )
        if self.total_seconds <= 0:
            return 0.0
        index = self.bins.index(edge)
        return sum(self.bucket_seconds[: index + 1]) / self.total_seconds

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe summary of the histogram's state."""
        return {
            "mean": self.mean,
            "max": self.maximum,
            "observations": self.observations,
            "total_seconds": self.total_seconds,
            "bins": list(self.bins),
            "bucket_seconds": list(self.bucket_seconds),
        }


class TimeSeries:
    """Bounded ``(time, value)`` samples of an irregularly sampled signal.

    The instrument behind the timeline views: per-window utilization,
    per-resolution assigned TTL, alarm-state transitions. Memory is
    bounded by construction — at most ``budget`` samples are ever held.
    While under budget every observation is kept; when the buffer fills
    it is decimated (every other retained sample dropped, oldest kept)
    and the keep-stride doubles, so a run 10x longer produces the same
    budget-sized series at half the resolution. The per-observation cost
    is one counter increment plus, for kept samples, one list append —
    cheap enough for the low/medium-frequency decision paths (windows,
    resolutions, alarms), and deterministic: for a fixed run the
    retained samples are identical however the run was executed.
    """

    __slots__ = (
        "name", "budget", "samples", "observations", "_stride", "_phase",
        "help",
    )

    def __init__(
        self,
        name: str,
        budget: int = TIMESERIES_BUDGET,
        help: Optional[str] = None,
    ):
        if budget < 2:
            raise ConfigurationError(
                f"timeseries {name!r} budget must be >= 2, got {budget!r}"
            )
        self.name = name
        self.help = help
        self.budget = int(budget)
        #: Retained ``(time, value)`` pairs, time-ordered.
        self.samples: List[Tuple[float, float]] = []
        #: Total observations offered (kept or decimated away).
        self.observations = 0
        self._stride = 1
        self._phase = 0

    def record(self, now: float, value: float) -> None:
        """Offer one observation; it is kept every ``stride``-th call."""
        self.observations += 1
        self._phase += 1
        if self._phase < self._stride:
            return
        self._phase = 0
        samples = self.samples
        samples.append((float(now), float(value)))
        if len(samples) >= self.budget:
            # Decimate: keep indices 0, 2, 4, ... and double the stride.
            del samples[1::2]
            self._stride *= 2

    @property
    def stride(self) -> int:
        """Current keep-every-N stride (doubles at each decimation)."""
        return self._stride

    @property
    def last(self) -> Optional[Tuple[float, float]]:
        """Most recent retained ``(time, value)`` pair."""
        return self.samples[-1] if self.samples else None

    def values(self) -> List[float]:
        """The retained values, in time order."""
        return [value for _, value in self.samples]

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe summary of the series' state."""
        return {
            "kind": "timeseries",
            "budget": self.budget,
            "stride": self._stride,
            "observations": self.observations,
            "samples": [[now, value] for now, value in self.samples],
        }


class MetricsRegistry:
    """Named instruments plus pull callbacks, snapshotted on demand.

    Names are dotted paths; the segment before the first dot is the
    subsystem (``dns``, ``ns``, ``alarm``, ``util``, ``workload``, ...).
    Registering the same name twice raises
    :class:`~repro.errors.ConfigurationError` — a double registration is
    always a wiring bug.
    """

    def __init__(self):
        self._instruments: Dict[str, Any] = {}
        self._callbacks: Dict[str, Callable[[], Any]] = {}
        self._callback_meta: Dict[str, Dict[str, Optional[str]]] = {}

    def _claim(self, name: str) -> None:
        if name in self._instruments or name in self._callbacks:
            raise ConfigurationError(f"metric {name!r} already registered")

    def counter(self, name: str, help: Optional[str] = None) -> Counter:
        """Create and register a :class:`Counter`."""
        self._claim(name)
        instrument = Counter(name, help)
        self._instruments[name] = instrument
        return instrument

    def gauge(self, name: str, help: Optional[str] = None) -> Gauge:
        """Create and register a :class:`Gauge`."""
        self._claim(name)
        instrument = Gauge(name, help)
        self._instruments[name] = instrument
        return instrument

    def histogram(
        self,
        name: str,
        bins: Sequence[float] = UTILIZATION_BINS,
        help: Optional[str] = None,
    ) -> TimeWeightedHistogram:
        """Create and register a :class:`TimeWeightedHistogram`."""
        self._claim(name)
        instrument = TimeWeightedHistogram(name, bins, help)
        self._instruments[name] = instrument
        return instrument

    def timeseries(
        self,
        name: str,
        budget: int = TIMESERIES_BUDGET,
        help: Optional[str] = None,
    ) -> TimeSeries:
        """Create and register a :class:`TimeSeries`."""
        self._claim(name)
        instrument = TimeSeries(name, budget, help)
        self._instruments[name] = instrument
        return instrument

    def register(
        self,
        name: str,
        callback: Callable[[], Any],
        help: Optional[str] = None,
        kind: str = "gauge",
    ) -> None:
        """Register a zero-argument pull callback under ``name``.

        The callback is invoked at snapshot time only — the subsystem
        pays nothing per event for being observable. ``help`` and
        ``kind`` (``"gauge"`` or ``"counter"``, how the value behaves)
        feed :meth:`metadata` for Prometheus exposition.
        """
        self._claim(name)
        self._callbacks[name] = callback
        if help is not None or kind != "gauge":
            self._callback_meta[name] = {"kind": kind, "help": help}

    def names(self) -> List[str]:
        """Every registered metric name, sorted."""
        return sorted((*self._instruments, *self._callbacks))

    def metadata(self) -> Dict[str, Dict[str, Optional[str]]]:
        """Per-metric ``{"kind", "help"}`` for Prometheus exposition.

        ``kind`` is ``counter`` / ``gauge`` / ``histogram`` /
        ``timeseries`` for instruments, and whatever :meth:`register`
        declared (default ``gauge``) for pull callbacks. Feed this to
        :func:`~repro.obs.export.metrics_to_prom_text` as ``meta=`` so
        the exposition carries ``# HELP`` / ``# TYPE`` lines.
        """
        kinds = {
            Counter: "counter",
            Gauge: "gauge",
            TimeWeightedHistogram: "histogram",
            TimeSeries: "timeseries",
        }
        meta: Dict[str, Dict[str, Optional[str]]] = {}
        for name, instrument in self._instruments.items():
            meta[name] = {
                "kind": kinds.get(type(instrument), "gauge"),
                "help": getattr(instrument, "help", None),
            }
        for name in self._callbacks:
            meta[name] = dict(
                self._callback_meta.get(
                    name, {"kind": "gauge", "help": None}
                )
            )
        return dict(sorted(meta.items()))

    def snapshot(self) -> Dict[str, Any]:
        """All current values as a flat, JSON-safe, name-sorted dict."""
        values: Dict[str, Any] = {}
        for name, instrument in self._instruments.items():
            if isinstance(instrument, (TimeWeightedHistogram, TimeSeries)):
                values[name] = instrument.snapshot()
            else:
                values[name] = instrument.value
        for name, callback in self._callbacks.items():
            values[name] = callback()
        return dict(sorted(values.items()))

    def summary_rows(self) -> List[Tuple[str, str]]:
        """(name, rendered value) pairs for the reporting layer."""
        rows: List[Tuple[str, str]] = []
        for name, value in self.snapshot().items():
            if isinstance(value, dict) and value.get("kind") == "timeseries":
                if value["samples"]:
                    last_time, last_value = value["samples"][-1]
                    rendered = (
                        f"n={value['observations']} "
                        f"last={last_value:.4f}@{last_time:.0f}s"
                    )
                else:
                    rendered = "no observations"
            elif isinstance(value, dict):  # histogram snapshot
                rendered = (
                    f"mean={value['mean']:.4f} max={value['max']}"
                    if value["max"] is not None
                    else "no observations"
                )
            elif isinstance(value, float):
                rendered = f"{value:.4f}"
            else:
                rendered = str(value)
            rows.append((name, rendered))
        return rows

    def __len__(self) -> int:
        return len(self._instruments) + len(self._callbacks)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments or name in self._callbacks

    def __repr__(self) -> str:
        return f"<MetricsRegistry metrics={len(self)}>"
