"""Streaming execution progress: heartbeats from running experiment cells.

A multi-hour ``repro grid`` or ``fig1..fig7`` regeneration is a batch of
independent simulation cells; until this module existed the batch was a
black box until the last cell returned. A :class:`ProgressSink` receives
one ``started`` and one ``finished`` :class:`ProgressEvent` per cell —
emitted from inside the worker process, over a ``multiprocessing`` queue
when the :class:`~repro.experiments.executor.ParallelExecutor` fans out,
or via a direct call on the serial path — plus ``begin``/``finish``
bracketing for the whole batch.

Heartbeats are pure observation: they carry wall-clock timestamps and
cell indices only, never touch the simulation RNG, and the executor
produces bit-identical results with any sink attached (the determinism
parity test in ``tests/integration/test_live_telemetry.py`` proves it).

Three sinks ship with the package:

* :class:`TerminalProgressRenderer` — a live single-line terminal view
  (completed/total, cells/s, ETA from observed cell times, busy workers);
* :class:`JsonlProgressSink` — a machine-readable JSONL event log
  (``begin`` / ``started`` / ``finished`` / ``end`` records);
* :class:`TeeProgressSink` — fan-out to several sinks at once.

All sinks tolerate being reused across several batches (the figure
generators run one batch per plotted series): ``begin`` resets the
per-batch state.
"""

from __future__ import annotations

import json
import pathlib
import sys
import time
from dataclasses import dataclass
from typing import IO, List, Optional, Sequence, Tuple, Union

PathLike = Union[str, pathlib.Path]

#: Event kinds a cell can emit.
STARTED = "started"
FINISHED = "finished"

#: Batch-level event kind: the live worker roster changed (a remote
#: dispatch worker joined or left). ``index`` is -1 (no cell);
#: ``workers`` carries the new roster size.
ROSTER = "roster"


@dataclass(frozen=True)
class ProgressEvent:
    """One heartbeat from one experiment cell (or the batch itself).

    ``kind`` is :data:`STARTED`, :data:`FINISHED` or :data:`ROSTER`;
    ``index`` is the cell's position in submission order (-1 for
    batch-level :data:`ROSTER` events); ``label`` names the cell when
    the caller supplied labels (``policy=RR,heterogeneity=20`` style);
    ``worker`` is the emitting process id; ``elapsed`` is the cell's
    wall time (``finished`` events only); ``timestamp`` is the
    wall-clock ``time.time()`` at emission; ``workers`` is the live
    worker-roster size (``roster`` events only).
    """

    kind: str
    index: int
    label: Optional[str] = None
    worker: Optional[int] = None
    elapsed: Optional[float] = None
    timestamp: float = 0.0
    workers: Optional[int] = None


class ProgressSink:
    """Receiver of batch progress; the default implementation drops all.

    Subclasses override any of :meth:`begin` (batch starts: total cell
    count and worker count), :meth:`emit` (one :class:`ProgressEvent`),
    :meth:`finish` (batch done; ``stats`` is the batch's
    ``ExecutionStats``, or ``None`` when the batch raised) and
    :meth:`close` (no further batches will arrive). During a parallel
    batch :meth:`emit` is called from the executor's drain thread, never
    concurrently with itself.
    """

    def begin(self, total: int, workers: int) -> None:
        """A batch of ``total`` cells starts on ``workers`` workers."""

    def emit(self, event: ProgressEvent) -> None:
        """One cell heartbeat."""

    def finish(self, stats=None) -> None:
        """The batch completed (``stats=None`` means it raised)."""

    def close(self) -> None:
        """Release resources; no further batches will be reported."""


#: Back-compat alias: a sink that ignores everything.
NullProgressSink = ProgressSink


class TeeProgressSink(ProgressSink):
    """Forward every callback to each of several sinks, in order."""

    def __init__(self, sinks: Sequence[ProgressSink]):
        self.sinks: List[ProgressSink] = list(sinks)

    def begin(self, total: int, workers: int) -> None:
        for sink in self.sinks:
            sink.begin(total, workers)

    def emit(self, event: ProgressEvent) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def finish(self, stats=None) -> None:
        for sink in self.sinks:
            sink.finish(stats)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


class JsonlProgressSink(ProgressSink):
    """Append progress events to a JSONL file, one object per line.

    Schema (all records carry ``t``, the wall-clock emission time)::

        {"event": "begin", "total": 8, "workers": 4, "t": ...}
        {"event": "started", "cell": 0, "label": "...", "worker": 123, "t": ...}
        {"event": "finished", "cell": 0, "label": "...", "worker": 123,
         "elapsed": 0.51, "t": ...}
        {"event": "roster", "workers": 2, "t": ...}      # remote backend
        {"event": "end", "cells": 8, "wall_time": 2.97, "t": ...}

    The stream is flushed after every record so the log can be tailed
    while the batch runs and survives a killed process up to the last
    completed heartbeat. Several batches simply append several
    ``begin``..``end`` sections.
    """

    def __init__(self, path: PathLike):
        self.path = pathlib.Path(path)
        self._stream: Optional[IO[str]] = None

    def _write(self, record: dict) -> None:
        if self._stream is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._stream = self.path.open("w", encoding="utf-8")
        self._stream.write(json.dumps(record, sort_keys=True) + "\n")
        self._stream.flush()

    def begin(self, total: int, workers: int) -> None:
        self._write(
            {"event": "begin", "total": total, "workers": workers,
             "t": time.time()}
        )

    def emit(self, event: ProgressEvent) -> None:
        if event.kind == ROSTER:
            self._write({
                "event": ROSTER,
                "workers": event.workers,
                "t": event.timestamp or time.time(),
            })
            return
        record = {
            "event": event.kind,
            "cell": event.index,
            "label": event.label,
            "worker": event.worker,
            "t": event.timestamp or time.time(),
        }
        if event.elapsed is not None:
            record["elapsed"] = event.elapsed
        self._write(record)

    def finish(self, stats=None) -> None:
        record = {"event": "end", "t": time.time()}
        if stats is not None:
            record["cells"] = stats.cell_count
            record["wall_time"] = stats.wall_time
        else:
            record["error"] = True
        self._write(record)

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None


class TerminalProgressRenderer(ProgressSink):
    """A live one-line terminal progress view (written to ``stream``).

    Renders ``completed/total``, percentage, observed throughput
    (cells/s), an ETA extrapolated from the mean observed cell time over
    the configured worker count, and which cells are currently running.
    Redraws are throttled to one per ``min_interval`` wall seconds
    (``finished`` events always redraw, so the count never lags).
    """

    def __init__(
        self,
        stream: Optional[IO[str]] = None,
        min_interval: float = 0.1,
    ):
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = float(min_interval)
        self._reset(0, 1)

    def _reset(self, total: int, workers: int) -> None:
        self.total = total
        self.workers = max(1, workers)
        #: Live remote roster size (``roster`` events); ``None`` until
        #: the first worker joins. Under ``--backend remote`` the
        #: configured local worker count is meaningless — this is the
        #: number that is displayed and that drives the ETA.
        self.live_workers: Optional[int] = None
        self.finished = 0
        self.cell_times: List[float] = []
        self.running: dict = {}  # index -> label (or "cell <i>")
        self._start = time.monotonic()
        self._last_draw = 0.0
        self._width = 0

    def begin(self, total: int, workers: int) -> None:
        self._reset(total, workers)
        self._draw(force=True)

    def emit(self, event: ProgressEvent) -> None:
        if event.kind == ROSTER:
            if event.workers is not None:
                self.live_workers = event.workers
                self.workers = max(1, event.workers)
            self._draw(force=True)
            return
        label = event.label or f"cell {event.index}"
        if event.kind == STARTED:
            self.running[event.index] = label
            self._draw()
        elif event.kind == FINISHED:
            self.running.pop(event.index, None)
            self.finished += 1
            if event.elapsed is not None:
                self.cell_times.append(event.elapsed)
            self._draw(force=True)

    def finish(self, stats=None) -> None:
        self._draw(force=True)
        self.stream.write("\n")
        self.stream.flush()

    # -- rendering ----------------------------------------------------------

    def eta_seconds(self) -> Optional[float]:
        """Remaining wall seconds, from observed mean cell time."""
        if not self.cell_times or self.total <= 0:
            return None
        remaining = self.total - self.finished
        if remaining <= 0:
            return 0.0
        mean = sum(self.cell_times) / len(self.cell_times)
        return remaining * mean / self.workers

    def status_line(self) -> str:
        """The current one-line rendering (also used by tests)."""
        elapsed = max(time.monotonic() - self._start, 1e-9)
        parts = [f"cells {self.finished}/{self.total}"]
        if self.total:
            parts.append(f"{100.0 * self.finished / self.total:5.1f}%")
        parts.append(f"{self.finished / elapsed:.2f} cells/s")
        eta = self.eta_seconds()
        parts.append(f"ETA {eta:.1f}s" if eta is not None else "ETA --")
        if self.live_workers is not None:
            parts.append(f"workers {self.live_workers}")
        if self.running:
            busy = ", ".join(
                label for _, label in sorted(self.running.items())[:4]
            )
            if len(self.running) > 4:
                busy += f", +{len(self.running) - 4} more"
            parts.append(f"busy {len(self.running)}: {busy}")
        return "[progress] " + "  ".join(parts)

    def _draw(self, force: bool = False) -> None:
        now = time.monotonic()
        if not force and now - self._last_draw < self.min_interval:
            return
        self._last_draw = now
        line = self.status_line()
        # Pad with spaces so a shorter line fully overwrites a longer one.
        pad = max(self._width - len(line), 0)
        self._width = len(line)
        self.stream.write("\r" + line + " " * pad)
        self.stream.flush()


def read_progress_jsonl(path: PathLike, *, strict: bool = True) -> List[dict]:
    """Load every record of a :class:`JsonlProgressSink` log.

    ``strict=False`` tolerates torn lines (see
    :func:`salvage_progress_jsonl`) instead of raising on them.
    """
    if not strict:
        return salvage_progress_jsonl(path)[0]
    records = []
    with pathlib.Path(path).open("r", encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def salvage_progress_jsonl(path: PathLike) -> Tuple[List[dict], int]:
    """Load a heartbeat log, skipping torn lines; returns ``(records, skipped)``.

    A progress log is written live — by a process that may be killed
    mid-write, or tailed while a writer still holds a partial line — so
    a trailing (or even interior) torn fragment is normal operation, not
    corruption. Every line that parses as a JSON object is kept in file
    order; everything else is counted, not raised. Monitoring that
    drains heartbeats across dispatch workers must use this (or
    ``read_progress_jsonl(..., strict=False)``) so one torn write cannot
    take down the observer.
    """
    records: List[dict] = []
    skipped = 0
    with pathlib.Path(path).open("r", encoding="utf-8", errors="replace") as stream:
        for line in stream:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                skipped += 1
                continue
            if isinstance(record, dict):
                records.append(record)
            else:
                skipped += 1
    return records, skipped
