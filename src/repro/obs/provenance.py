"""Per-run provenance manifests.

A manifest answers, months later, "what exactly produced this output
file?": the full simulation configuration, the master seed, the package
version, the git state of the working tree (when available) and the
python/platform the run executed on. The experiment persistence layer
writes one next to every saved run; :func:`read_manifest` plus
``config_from_dict`` reconstruct the identical
:class:`~repro.experiments.config.SimulationConfig`.

Everything here is dependency-free and failure-tolerant: outside a git
checkout the git fields are simply ``None``.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import platform
import subprocess
import sys
import time
from typing import Any, Dict, Optional, Union

from ..errors import ConfigurationError

PathLike = Union[str, pathlib.Path]

MANIFEST_KIND = "run_manifest"
MANIFEST_VERSION = 1


def git_describe(cwd: Optional[PathLike] = None) -> Optional[str]:
    """``git describe --always --dirty`` of ``cwd``, or ``None``."""
    try:
        output = subprocess.run(
            ["git", "describe", "--always", "--dirty", "--tags"],
            cwd=str(cwd) if cwd is not None else None,
            capture_output=True,
            text=True,
            timeout=5.0,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    described = output.stdout.strip()
    return described if output.returncode == 0 and described else None


def environment_fingerprint(
    workers: Optional[int] = None,
) -> Dict[str, Any]:
    """The execution environment a run happened in.

    Report comparisons (``repro report --compare``) diff this block to
    flag environment drift between two bundles — a regression measured
    on a different interpreter, machine or worker count is a different
    claim than one measured on identical environments.
    """
    return {
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "workers": workers,
    }


def build_manifest(
    config,
    *,
    extra: Optional[Dict[str, Any]] = None,
    workers: Optional[int] = None,
    engine_mode: Optional[str] = None,
    dispatch: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """The provenance manifest for one run of ``config``.

    ``config`` is a :class:`~repro.experiments.config.SimulationConfig`
    (any dataclass with ``seed``/``policy`` fields works). ``extra``
    entries are merged under the ``"extra"`` key for caller context
    (replication index, grid cell, CLI argv, ...); ``workers`` records
    the executor worker count in the environment fingerprint;
    ``engine_mode`` records the dispatch engine (``"event"`` /
    ``"fastforward"``) as a top-level key. The mode lives *outside* the
    ``environment`` block on purpose: both engines produce bit-identical
    results, so ``repro report --compare`` (which diffs the environment
    block) must stay mode-agnostic. ``dispatch`` records where the run
    physically executed (backend name and, for remote dispatch, the
    worker identity or roster) as a top-level ``"dispatch"`` key — also
    outside ``environment``, for the same reason: dispatch placement
    never changes results.
    """
    from .. import __version__

    if not dataclasses.is_dataclass(config):
        raise ConfigurationError(
            f"config must be a dataclass, got {type(config).__name__}"
        )
    manifest: Dict[str, Any] = {
        "format_version": MANIFEST_VERSION,
        "kind": MANIFEST_KIND,
        "package": {"name": "repro", "version": __version__},
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "environment": environment_fingerprint(workers),
        "git_describe": git_describe(),
        "created_at_unix": time.time(),
        "policy": getattr(config, "policy", None),
        "seed": getattr(config, "seed", None),
        "config": dataclasses.asdict(config),
    }
    if engine_mode is not None:
        manifest["engine_mode"] = engine_mode
    if dispatch:
        manifest["dispatch"] = dict(dispatch)
    if extra:
        manifest["extra"] = dict(extra)
    return manifest


def write_manifest(
    config,
    path: PathLike,
    *,
    extra: Optional[Dict[str, Any]] = None,
    workers: Optional[int] = None,
    engine_mode: Optional[str] = None,
    dispatch: Optional[Dict[str, Any]] = None,
) -> pathlib.Path:
    """Build and write a manifest as pretty JSON; returns the path."""
    path = pathlib.Path(path)
    manifest = build_manifest(
        config,
        extra=extra,
        workers=workers,
        engine_mode=engine_mode,
        dispatch=dispatch,
    )
    path.write_text(json.dumps(manifest, indent=2, sort_keys=True))
    return path


def read_manifest(path: PathLike) -> Dict[str, Any]:
    """Load and sanity-check a manifest written by :func:`write_manifest`."""
    data = json.loads(pathlib.Path(path).read_text())
    if data.get("kind") != MANIFEST_KIND:
        raise ConfigurationError(
            f"not a run manifest: kind={data.get('kind')!r}"
        )
    return data
