"""Run reports and regression-gating bundle comparisons.

A ``save_run_artifacts`` bundle (result JSON + provenance manifest +
optional JSONL trace) is the durable record of one run; this module
turns it back into something a human — or a CI gate — can read:

* :func:`load_bundle` re-reads a bundle directory (salvaging a
  truncated trace rather than failing on it);
* :func:`render_report` produces a self-contained markdown or HTML
  report: provenance, headline metrics, the metrics-registry table,
  trace category counts, and sparkline timelines of the run's
  :class:`~repro.obs.metrics.TimeSeries` instruments (max utilization,
  assigned TTL, DNS-controlled fraction);
* :func:`compare_bundles` diffs two bundles on the metrics that define
  a regression here (max utilization, DNS control fraction, wall time)
  and flags environment drift between the two manifests, so a CI job
  can hold a change against a committed baseline bundle
  (``repro report --compare A B --fail-on-regression``).

Everything is dependency-free; heavyweight imports (the experiments
layer) happen lazily so ``repro.obs`` stays import-light.
"""

from __future__ import annotations

import html as _html
import json
import math
import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from ..errors import ConfigurationError
from .export import TraceDamage, salvage_trace_jsonl
from .provenance import read_manifest

PathLike = Union[str, pathlib.Path]

#: Threshold used by ``prob_max_below_098`` (the paper's indicator).
_OVERLOAD = 0.98


@dataclass
class RunBundle:
    """One loaded ``save_run_artifacts`` bundle."""

    directory: pathlib.Path
    stem: str
    #: The raw ``<stem>.json`` result dict.
    result: Dict[str, Any]
    #: The provenance manifest (``None`` when the bundle has none).
    manifest: Optional[Dict[str, Any]] = None
    #: Per-category record counts of the trace sidecar (``None`` when
    #: the bundle was saved without a trace).
    trace_counts: Optional[Dict[str, int]] = None
    #: Where the trace file stopped being readable, if it did.
    trace_damage: Optional[TraceDamage] = None

    @property
    def label(self) -> str:
        return str(self.directory)

    @property
    def metrics(self) -> Dict[str, Any]:
        """The metrics-registry snapshot carried by the result."""
        return self.result.get("metrics") or {}

    def scalars(self) -> Dict[str, Optional[float]]:
        """The scalar metrics a comparison gates on."""
        samples = self.result.get("max_utilization_samples") or []
        extra = (self.manifest or {}).get("extra") or {}
        wall_time = extra.get("wall_time")
        return {
            "mean_max_utilization": (
                sum(samples) / len(samples) if samples else None
            ),
            "prob_max_below_098": (
                sum(1 for s in samples if s < _OVERLOAD) / len(samples)
                if samples
                else None
            ),
            "dns_control_fraction": self.result.get("dns_control_fraction"),
            "wall_time": float(wall_time) if wall_time is not None else None,
        }


def _detect_stem(directory: pathlib.Path) -> str:
    """The bundle stem: ``run`` when present, else the unique result."""
    if (directory / "run.json").exists():
        return "run"
    candidates = [
        path.stem
        for path in sorted(directory.glob("*.json"))
        if not path.name.endswith(".manifest.json")
    ]
    if len(candidates) != 1:
        raise ConfigurationError(
            f"cannot detect a unique bundle stem in {directory} "
            f"(candidates: {candidates!r}); pass stem= explicitly"
        )
    return candidates[0]


def load_bundle(directory: PathLike, stem: Optional[str] = None) -> RunBundle:
    """Load a bundle written by ``save_run_artifacts`` (or ``repro trace``).

    Only ``<stem>.json`` is mandatory. A truncated trace sidecar — the
    signature of a crashed run — is salvaged, not fatal: all complete
    records are counted and the damage is reported on the bundle.
    """
    directory = pathlib.Path(directory)
    if not directory.is_dir():
        raise ConfigurationError(f"not a bundle directory: {directory}")
    stem = stem or _detect_stem(directory)
    result_path = directory / f"{stem}.json"
    if not result_path.exists():
        raise ConfigurationError(f"no result file {result_path}")
    result = json.loads(result_path.read_text())
    if result.get("kind") != "simulation_result":
        raise ConfigurationError(
            f"{result_path} is not a serialized simulation result"
        )
    bundle = RunBundle(directory=directory, stem=stem, result=result)
    manifest_path = directory / f"{stem}.manifest.json"
    if manifest_path.exists():
        bundle.manifest = read_manifest(manifest_path)
    trace_path = directory / f"{stem}.trace.jsonl"
    if trace_path.exists():
        records, damage = salvage_trace_jsonl(trace_path)
        counts: Dict[str, int] = {}
        for record in records:
            counts[record.category] = counts.get(record.category, 0) + 1
        bundle.trace_counts = dict(sorted(counts.items()))
        bundle.trace_damage = damage
    return bundle


# -- report content ---------------------------------------------------------


@dataclass
class ReportSection:
    """One titled block: a table (headers + rows) and/or free lines."""

    title: str
    headers: Optional[List[str]] = None
    rows: List[List[str]] = field(default_factory=list)
    lines: List[str] = field(default_factory=list)


def _format_value(value: Any) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def _metrics_rows(metrics: Dict[str, Any]) -> List[List[str]]:
    rows = []
    for name, value in sorted(metrics.items()):
        if isinstance(value, dict) and value.get("kind") == "timeseries":
            if value["samples"]:
                last_time, last_value = value["samples"][-1]
                rendered = (
                    f"n={value['observations']} "
                    f"last={last_value:.4f}@{last_time:.0f}s"
                )
            else:
                rendered = "no observations"
        elif isinstance(value, dict):  # histogram snapshot
            if value.get("max") is None:
                rendered = "no observations"
            else:
                rendered = (
                    f"mean={value['mean']:.4f} max={value['max']:.4f} "
                    f"windows={value['observations']}"
                )
        else:
            rendered = _format_value(value)
        rows.append([name, rendered])
    return rows


#: TimeSeries metrics drawn as sparkline timelines, with display names.
TIMELINE_METRICS = (
    ("util.max", "max utilization"),
    ("dns.assigned_ttl", "assigned TTL (s)"),
    ("workload.control_fraction", "DNS-controlled fraction"),
    ("alarm.active", "alarmed servers"),
)


def _timeline_lines(metrics: Dict[str, Any]) -> List[str]:
    from ..analysis.timeseries import sparkline

    lines = []
    for name, label in TIMELINE_METRICS:
        snapshot = metrics.get(name)
        if not isinstance(snapshot, dict) or snapshot.get("kind") != "timeseries":
            continue
        values = [value for _, value in snapshot["samples"]]
        if not values:
            continue
        low, high = min(values), max(values)
        lines.append(
            f"{label:<24} {sparkline(values)}  "
            f"[{low:.3g} .. {high:.3g}] ({snapshot['observations']} obs)"
        )
    return lines


def build_report(bundle: RunBundle) -> List[ReportSection]:
    """The report's content, independent of output format."""
    sections: List[ReportSection] = []

    provenance = ReportSection("Provenance", headers=["field", "value"])
    provenance.rows.append(["bundle", bundle.label])
    provenance.rows.append(["policy", str(bundle.result.get("policy"))])
    manifest = bundle.manifest
    if manifest is not None:
        package = manifest.get("package", {})
        environment = manifest.get("environment") or {}
        provenance.rows += [
            ["seed", str(manifest.get("seed"))],
            [
                "package",
                f"{package.get('name')} {package.get('version')}",
            ],
            ["git", str(manifest.get("git_describe"))],
        ]
        for key in ("python", "implementation", "platform", "machine",
                    "cpu_count", "workers"):
            if key in environment:
                provenance.rows.append([key, str(environment[key])])
        extra = manifest.get("extra") or {}
        if "wall_time" in extra:
            provenance.rows.append(
                ["wall time", f"{float(extra['wall_time']):.3f} s"]
            )
    else:
        provenance.lines.append("(no provenance manifest in this bundle)")
    sections.append(provenance)

    headline = ReportSection("Headline metrics", headers=["metric", "value"])
    scalars = bundle.scalars()
    for name in ("mean_max_utilization", "prob_max_below_098",
                 "dns_control_fraction"):
        value = scalars.get(name)
        headline.rows.append(
            [name, _format_value(value) if value is not None else "n/a"]
        )
    for name in ("dns_resolutions", "mean_granted_ttl", "alarm_signals",
                 "total_hits", "total_sessions", "duration"):
        if name in bundle.result:
            headline.rows.append([name, _format_value(bundle.result[name])])
    sections.append(headline)

    timelines = _timeline_lines(bundle.metrics)
    if timelines:
        section = ReportSection("Timelines")
        section.lines = timelines
        sections.append(section)

    if bundle.metrics:
        section = ReportSection(
            "Metrics registry", headers=["metric", "value"]
        )
        section.rows = _metrics_rows(bundle.metrics)
        sections.append(section)

    if bundle.trace_counts is not None:
        section = ReportSection(
            "Trace", headers=["category", "records"]
        )
        section.rows = [
            [category, str(count)]
            for category, count in bundle.trace_counts.items()
        ]
        section.rows.append(
            ["(total)", str(sum(bundle.trace_counts.values()))]
        )
        if bundle.trace_damage is not None:
            section.lines.append(
                f"warning: trace truncated at {bundle.trace_damage} — "
                "counts cover the salvaged records only"
            )
        sections.append(section)

    return sections


# -- rendering --------------------------------------------------------------


def _render_markdown(title: str, sections: List[ReportSection]) -> str:
    out = [f"# {title}", ""]
    for section in sections:
        out.append(f"## {section.title}")
        out.append("")
        if section.headers is not None:
            out.append("| " + " | ".join(section.headers) + " |")
            out.append("|" + "---|" * len(section.headers))
            for row in section.rows:
                out.append("| " + " | ".join(row) + " |")
            out.append("")
        for line in section.lines:
            out.append(f"    {line}")
        if section.lines:
            out.append("")
    return "\n".join(out).rstrip() + "\n"


_HTML_STYLE = """
body { font-family: system-ui, sans-serif; margin: 2rem auto; max-width: 60rem; }
h1 { border-bottom: 2px solid #444; padding-bottom: .3rem; }
table { border-collapse: collapse; margin: .5rem 0 1rem; }
th, td { border: 1px solid #bbb; padding: .25rem .6rem; text-align: left; }
th { background: #eee; }
pre { background: #f6f6f6; padding: .6rem; overflow-x: auto; }
.warn { color: #a40000; }
""".strip()


def _render_html(title: str, sections: List[ReportSection]) -> str:
    esc = _html.escape
    out = [
        "<!DOCTYPE html>",
        "<html><head><meta charset=\"utf-8\">",
        f"<title>{esc(title)}</title>",
        f"<style>{_HTML_STYLE}</style>",
        "</head><body>",
        f"<h1>{esc(title)}</h1>",
    ]
    for section in sections:
        out.append(f"<h2>{esc(section.title)}</h2>")
        if section.headers is not None:
            out.append("<table><tr>")
            out += [f"<th>{esc(h)}</th>" for h in section.headers]
            out.append("</tr>")
            for row in section.rows:
                out.append(
                    "<tr>" + "".join(f"<td>{esc(c)}</td>" for c in row)
                    + "</tr>"
                )
            out.append("</table>")
        if section.lines:
            cls = " class=\"warn\"" if any(
                line.startswith("warning") for line in section.lines
            ) else ""
            out.append(
                f"<pre{cls}>" + "\n".join(esc(line) for line in section.lines)
                + "</pre>"
            )
    out.append("</body></html>")
    return "\n".join(out) + "\n"


def render_report(bundle: RunBundle, fmt: str = "markdown") -> str:
    """A self-contained report of one bundle (``markdown`` or ``html``)."""
    if fmt not in ("markdown", "html"):
        raise ConfigurationError(f"unknown report format {fmt!r}")
    title = (
        f"Run report: {bundle.result.get('policy')} "
        f"(seed {(bundle.manifest or {}).get('seed')})"
    )
    sections = build_report(bundle)
    if fmt == "html":
        return _render_html(title, sections)
    return _render_markdown(title, sections)


# -- comparison + regression gating -----------------------------------------

#: Metrics a comparison diffs: (name, better direction, gated by default).
#: Wall time is always *reported* but only *gated* on request — it is
#: hardware-dependent, so gating it by default would make the CI check
#: flaky in exactly the place it must be trustworthy.
COMPARED_METRICS: Tuple[Tuple[str, str, bool], ...] = (
    ("mean_max_utilization", "lower", True),
    ("prob_max_below_098", "higher", True),
    ("dns_control_fraction", "higher", True),
    ("wall_time", "lower", False),
)


@dataclass(frozen=True)
class MetricDelta:
    """One compared metric between baseline (a) and candidate (b)."""

    name: str
    direction: str  # "lower" or "higher" is better
    baseline: Optional[float]
    candidate: Optional[float]
    #: Percent change of the candidate relative to the baseline
    #: (``None`` when either side is missing).
    delta_pct: Optional[float]
    #: Worsened beyond the threshold, in the metric's bad direction.
    regressed: bool
    #: Whether this metric participates in the exit-status gate.
    gated: bool


@dataclass
class BundleComparison:
    """The diff of two bundles, plus environment drift."""

    baseline: RunBundle
    candidate: RunBundle
    threshold_pct: float
    deltas: List[MetricDelta]
    environment_drift: List[str]

    def regressions(self) -> List[MetricDelta]:
        """Gated metrics that worsened beyond the threshold."""
        return [d for d in self.deltas if d.regressed and d.gated]

    @property
    def passed(self) -> bool:
        return not self.regressions()

    def sections(self) -> List[ReportSection]:
        table = ReportSection(
            "Metric deltas",
            headers=["metric", "baseline", "candidate", "delta %",
                     "better", "verdict"],
        )
        for delta in self.deltas:
            if delta.delta_pct is None:
                rendered_delta = "n/a"
            elif math.isinf(delta.delta_pct):
                rendered_delta = "inf"
            else:
                rendered_delta = f"{delta.delta_pct:+.2f}%"
            verdict = "REGRESSED" if delta.regressed else "ok"
            if not delta.gated:
                verdict += " (not gated)"
            table.rows.append([
                delta.name,
                _format_value(delta.baseline) if delta.baseline is not None
                else "n/a",
                _format_value(delta.candidate) if delta.candidate is not None
                else "n/a",
                rendered_delta,
                delta.direction,
                verdict,
            ])
        drift = ReportSection("Environment drift")
        if self.environment_drift:
            drift.lines = [
                "warning: the bundles ran in different environments — "
                "deltas may reflect the environment, not the code:"
            ] + [f"  {line}" for line in self.environment_drift]
        else:
            drift.lines = ["none: both bundles ran in the same environment"]
        summary = ReportSection("Verdict")
        regressions = self.regressions()
        if regressions:
            summary.lines = [
                f"warning: {len(regressions)} regression(s) beyond "
                f"{self.threshold_pct:g}%: "
                + ", ".join(d.name for d in regressions)
            ]
        else:
            summary.lines = [
                f"no gated metric regressed beyond {self.threshold_pct:g}%"
            ]
        return [table, drift, summary]

    def render(self, fmt: str = "markdown") -> str:
        title = (
            f"Bundle comparison: {self.baseline.label} (baseline) vs "
            f"{self.candidate.label} (candidate)"
        )
        if fmt == "html":
            return _render_html(title, self.sections())
        if fmt == "markdown":
            return _render_markdown(title, self.sections())
        raise ConfigurationError(f"unknown report format {fmt!r}")


def _delta_pct(baseline: float, candidate: float) -> float:
    if baseline == 0:
        return 0.0 if candidate == 0 else math.inf * (1 if candidate > 0 else -1)
    return (candidate - baseline) / abs(baseline) * 100.0


def compare_bundles(
    baseline: RunBundle,
    candidate: RunBundle,
    threshold_pct: float = 5.0,
    gate_wall_time: bool = False,
) -> BundleComparison:
    """Diff ``candidate`` against ``baseline`` with a regression gate.

    A metric regresses when it moves beyond ``threshold_pct`` percent in
    its bad direction (up for ``lower``-is-better metrics, down for
    ``higher``-is-better ones). Wall time joins the gate only with
    ``gate_wall_time=True``; it is reported regardless.
    """
    if threshold_pct < 0:
        raise ConfigurationError(
            f"threshold must be >= 0, got {threshold_pct!r}"
        )
    a_scalars = baseline.scalars()
    b_scalars = candidate.scalars()
    deltas: List[MetricDelta] = []
    for name, direction, gated_default in COMPARED_METRICS:
        gated = gated_default or (name == "wall_time" and gate_wall_time)
        a_value = a_scalars.get(name)
        b_value = b_scalars.get(name)
        if a_value is None or b_value is None:
            deltas.append(MetricDelta(
                name, direction, a_value, b_value,
                delta_pct=None, regressed=False, gated=gated,
            ))
            continue
        pct = _delta_pct(a_value, b_value)
        worsened = pct > threshold_pct if direction == "lower" else (
            pct < -threshold_pct
        )
        deltas.append(MetricDelta(
            name, direction, a_value, b_value,
            delta_pct=pct, regressed=worsened, gated=gated,
        ))

    drift: List[str] = []
    a_env = (baseline.manifest or {}).get("environment") or {}
    b_env = (candidate.manifest or {}).get("environment") or {}
    for key in sorted(set(a_env) | set(b_env)):
        a_item, b_item = a_env.get(key), b_env.get(key)
        if a_item != b_item:
            drift.append(f"{key}: {a_item!r} -> {b_item!r}")

    return BundleComparison(
        baseline=baseline,
        candidate=candidate,
        threshold_pct=float(threshold_pct),
        deltas=deltas,
        environment_drift=drift,
    )
