"""Causally-correlated cell-lifecycle spans for the dispatch fabric.

A distributed batch (``--backend remote``) scatters the life of one
experiment cell across processes and hosts: the coordinator *submits*
and *leases* it, a worker *executes* it, heartbeats keep the lease
alive, and a crash turns into an *expiry* followed by a *re-lease* to
another worker. This module gives every one of those transitions a
structured **span event** — JSONL, one object per line, stamped with
both wall-clock and monotonic time and correlated by
``(run, cell, attempt, worker)`` — plus the reconstructor that merges
coordinator and worker logs back into one per-cell timeline and
*reconciles* them: every completed cell has exactly one winning
attempt, every expiry is followed by a matching re-lease (or was
resolved by a completion), and attempt numbers are gapless.

Three deliberate design points:

* **Zero cost when disabled.** Nothing here is imported on the
  simulation hot path; dispatch call sites guard every emission with
  ``if spans is not None`` and no recorder exists unless an operator
  asked for one. Span events never touch simulation state, seeds or
  results — the dispatch layer's bit-identical-results guarantee holds
  with spans on or off (proven in ``tests/integration/test_fabric_obs.py``).
* **Two clocks per event.** ``wall`` (``time.time()``) is for humans
  and cross-host correlation; ``mono`` (``time.monotonic()``) is for
  arithmetic. All duration math in the reconstructor subtracts
  monotonic stamps *from the same source process only*, so an NTP step
  mid-run cannot produce negative queue times or phantom stragglers.
* **Crash forensics without the network.** A :class:`SpanRecorder` can
  keep its last-N events in a bounded ring buffer; a dying worker
  flushes the ring to ``crash-<worker>.jsonl`` on the way down, so the
  postmortem of a dead worker does not depend on it having streamed
  everything to the coordinator first.

Like progress logs, span logs are written live by killable processes:
always read them with :func:`salvage_span_jsonl` (torn lines are
normal operation, not corruption).
"""

from __future__ import annotations

import json
import pathlib
import re
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import (
    IO,
    Any,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..errors import ConfigurationError

PathLike = Union[str, pathlib.Path]

#: Coordinator-side span event kinds.
BATCH_BEGIN = "batch-begin"
BATCH_END = "batch-end"
SUBMIT = "submit"
LEASE = "lease"
HEARTBEAT = "heartbeat"
COMPLETE = "complete"
EXPIRE = "expire"
RELEASE = "release"
WORKER_JOIN = "worker-join"
WORKER_LEAVE = "worker-leave"

#: Worker-side span event kinds.
EXECUTE = "execute"
FINISH = "finish"
RESULT_SENT = "result-sent"
ERROR = "error"
SESSION = "session"
CRASH = "crash"

#: Default ring-buffer capacity of a worker's crash-forensics recorder.
DEFAULT_RING_SIZE = 512


@dataclass(frozen=True)
class SpanEvent:
    """One structured fabric event.

    ``source`` names the emitting process (``"coordinator"`` or a
    worker id); ``worker`` names the worker the event is *about* (for a
    coordinator-side ``lease``, the lease holder). ``wall`` is
    ``time.time()`` at emission, ``mono`` is ``time.monotonic()`` —
    monotonic stamps are only comparable between events of the same
    ``source``. ``extra`` carries kind-specific detail (labels, elapsed
    times, winner flags, remote timestamps).
    """

    kind: str
    source: str
    wall: float
    mono: float
    run: Optional[str] = None
    cell: Optional[int] = None
    attempt: Optional[int] = None
    worker: Optional[str] = None
    extra: Dict[str, Any] = field(default_factory=dict)


def span_to_dict(event: SpanEvent) -> Dict[str, Any]:
    """The JSONL object for one span event (``None`` fields omitted)."""
    record: Dict[str, Any] = {
        "kind": event.kind,
        "source": event.source,
        "wall": event.wall,
        "mono": event.mono,
    }
    if event.run is not None:
        record["run"] = event.run
    if event.cell is not None:
        record["cell"] = event.cell
    if event.attempt is not None:
        record["attempt"] = event.attempt
    if event.worker is not None:
        record["worker"] = event.worker
    if event.extra:
        record["extra"] = event.extra
    return record


def span_from_dict(data: Dict[str, Any]) -> SpanEvent:
    """Rebuild a :class:`SpanEvent`; raises on a malformed record."""
    try:
        cell = data.get("cell")
        attempt = data.get("attempt")
        extra = data.get("extra") or {}
        if not isinstance(extra, dict):
            raise TypeError("extra must be an object")
        return SpanEvent(
            kind=str(data["kind"]),
            source=str(data["source"]),
            wall=float(data["wall"]),
            mono=float(data["mono"]),
            run=data.get("run"),
            cell=int(cell) if cell is not None else None,
            attempt=int(attempt) if attempt is not None else None,
            worker=data.get("worker"),
            extra=extra,
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigurationError(f"malformed span record {data!r}") from exc


class SpanRecorder:
    """Emit span events to a JSONL file and/or an in-memory ring buffer.

    Parameters
    ----------
    path:
        JSONL file to append events to (opened lazily, flushed per
        event so the log can be tailed and survives a kill up to the
        last complete line). ``None`` writes no file.
    source:
        Name stamped on every event (``"coordinator"`` or a worker id).
    ring_size:
        Keep the last N events in memory for :meth:`flush_ring` crash
        forensics; ``0`` keeps none.

    A recorder with neither a path nor a ring is never constructed by
    the dispatch layer — call sites guard with ``if spans is not None``
    so the disabled configuration pays nothing at all. :meth:`emit` is
    thread-safe (the coordinator emits from per-connection handler
    threads).
    """

    def __init__(
        self,
        path: Optional[PathLike] = None,
        *,
        source: str,
        ring_size: int = 0,
    ):
        if ring_size < 0:
            raise ConfigurationError(
                f"ring_size must be >= 0, got {ring_size!r}"
            )
        self.path = pathlib.Path(path) if path is not None else None
        self.source = source
        self.ring: Optional[deque] = (
            deque(maxlen=ring_size) if ring_size > 0 else None
        )
        self._stream: Optional[IO[str]] = None
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        """Whether emitted events go anywhere at all."""
        return self.path is not None or self.ring is not None

    def emit(
        self,
        kind: str,
        *,
        run: Optional[str] = None,
        cell: Optional[int] = None,
        attempt: Optional[int] = None,
        worker: Optional[str] = None,
        **extra: Any,
    ) -> SpanEvent:
        """Record one event, stamped with both clocks; returns it."""
        event = SpanEvent(
            kind=kind,
            source=self.source,
            wall=time.time(),
            mono=time.monotonic(),
            run=run,
            cell=cell,
            attempt=attempt,
            worker=worker,
            extra=extra,
        )
        with self._lock:
            if self.ring is not None:
                self.ring.append(event)
            if self.path is not None:
                if self._stream is None:
                    self.path.parent.mkdir(parents=True, exist_ok=True)
                    self._stream = self.path.open("a", encoding="utf-8")
                self._stream.write(
                    json.dumps(span_to_dict(event), sort_keys=True) + "\n"
                )
                self._stream.flush()
        return event

    def flush_ring(self, path: PathLike) -> Optional[pathlib.Path]:
        """Write the ring buffer to ``path`` as JSONL (crash forensics).

        Returns the path written, or ``None`` when there is no ring (or
        it is empty). Safe to call from a signal handler or an
        ``except`` block on the way down; events stay in the ring, so a
        second flush (e.g. SIGTERM racing an excepthook) rewrites the
        same content instead of losing it.
        """
        with self._lock:
            if self.ring is None or not self.ring:
                return None
            events = list(self.ring)
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as stream:
            for event in events:
                stream.write(
                    json.dumps(span_to_dict(event), sort_keys=True) + "\n"
                )
        return path

    def close(self) -> None:
        """Close the JSONL stream (the ring stays readable)."""
        with self._lock:
            if self._stream is not None:
                self._stream.close()
                self._stream = None

    def __repr__(self) -> str:
        ring = len(self.ring) if self.ring is not None else 0
        return (
            f"<SpanRecorder source={self.source!r} path={self.path} "
            f"ring={ring}>"
        )


def crash_file_name(worker_id: str) -> str:
    """``crash-<worker>.jsonl`` with filesystem-hostile characters mapped.

    Worker ids default to ``host:pid``; the colon (and anything else
    outside ``[A-Za-z0-9._-]``) becomes ``-`` so the name is portable.
    """
    safe = re.sub(r"[^A-Za-z0-9._-]", "-", worker_id)
    return f"crash-{safe}.jsonl"


# -- reading span logs back ---------------------------------------------------


def salvage_span_jsonl(path: PathLike) -> Tuple[List[SpanEvent], int]:
    """Load a span log, skipping torn lines; returns ``(events, skipped)``.

    Span logs are written live by processes that may be killed
    mid-write (that is the whole point of the crash ring), so torn
    trailing — or interior, when a log was concatenated from several
    partial captures — lines are normal. Every line that parses as a
    well-formed span record is kept in file order; everything else is
    counted, never raised.
    """
    events: List[SpanEvent] = []
    skipped = 0
    with pathlib.Path(path).open(
        "r", encoding="utf-8", errors="replace"
    ) as stream:
        for line in stream:
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except ValueError:
                skipped += 1
                continue
            if not isinstance(data, dict):
                skipped += 1
                continue
            try:
                events.append(span_from_dict(data))
            except ConfigurationError:
                skipped += 1
    return events, skipped


def read_span_jsonl(path: PathLike, *, strict: bool = True) -> List[SpanEvent]:
    """Load every span event; ``strict=False`` delegates to salvage.

    ``strict=True`` raises :class:`~repro.errors.ConfigurationError` on
    the first malformed line (use for logs you wrote atomically
    yourself; anything captured from a live or killed process should be
    read with ``strict=False``).
    """
    if not strict:
        return salvage_span_jsonl(path)[0]
    events: List[SpanEvent] = []
    with pathlib.Path(path).open("r", encoding="utf-8") as stream:
        for line_number, line in enumerate(stream, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except ValueError as exc:
                raise ConfigurationError(
                    f"{path}:{line_number}: not valid JSON"
                ) from exc
            events.append(span_from_dict(data))
    return events


def load_span_logs(paths: Iterable[PathLike]) -> Tuple[List[SpanEvent], int]:
    """Salvage-read and concatenate several span logs.

    The natural input of the reconstructor: the coordinator's log plus
    any worker logs and ``crash-*.jsonl`` ring flushes that survived.
    Event order across files does not matter — the reconstructor keys
    everything by ``(run, cell, attempt)`` and compares monotonic
    stamps per source only.
    """
    events: List[SpanEvent] = []
    skipped = 0
    for path in paths:
        part, torn = salvage_span_jsonl(path)
        events.extend(part)
        skipped += torn
    return events, skipped


# -- reconstruction -----------------------------------------------------------


@dataclass
class AttemptRecord:
    """One lease of one cell: who held it and how it ended."""

    cell: int
    attempt: int
    worker: Optional[str] = None
    leased: Optional[SpanEvent] = None
    executed: Optional[SpanEvent] = None
    finished: Optional[SpanEvent] = None
    completed: Optional[SpanEvent] = None
    expired: Optional[SpanEvent] = None
    released: Optional[SpanEvent] = None
    errored: Optional[SpanEvent] = None
    heartbeats: int = 0

    @property
    def winner(self) -> bool:
        """Whether this attempt's completion was the cell's first."""
        return (
            self.completed is not None
            and bool(self.completed.extra.get("winner"))
        )

    @property
    def execute_seconds(self) -> Optional[float]:
        """Worker-measured execution time (worker monotonic clock)."""
        if self.finished is not None:
            elapsed = self.finished.extra.get("elapsed")
            if elapsed is not None:
                return float(elapsed)
        if self.executed is not None and self.finished is not None:
            return self.finished.mono - self.executed.mono
        return None

    @property
    def remote_seconds(self) -> Optional[float]:
        """Lease-to-outcome time as the coordinator saw it."""
        terminal = self.completed or self.expired or self.released
        if self.leased is None or terminal is None:
            return None
        return terminal.mono - self.leased.mono


@dataclass
class CellTimeline:
    """Every attempt of one cell, plus its submission event."""

    cell: int
    submitted: Optional[SpanEvent] = None
    attempts: Dict[int, AttemptRecord] = field(default_factory=dict)

    @property
    def label(self) -> Optional[str]:
        if self.submitted is not None:
            return self.submitted.extra.get("label")
        return None

    def attempt(self, number: int, worker: Optional[str] = None) -> AttemptRecord:
        """The attempt record for ``number``, created on first sight."""
        record = self.attempts.get(number)
        if record is None:
            record = AttemptRecord(cell=self.cell, attempt=number, worker=worker)
            self.attempts[number] = record
        if record.worker is None and worker is not None:
            record.worker = worker
        return record

    def winning_attempt(self) -> Optional[AttemptRecord]:
        """The attempt whose completion won (first), if reconstructable."""
        for record in sorted(self.attempts.values(), key=lambda a: a.attempt):
            if record.winner:
                return record
        return None

    def phases(self) -> Optional[Dict[str, float]]:
        """Wall-time decomposition of the winning attempt, in seconds.

        ``queue``: submission to winning lease (coordinator clock);
        ``execute``: the simulation itself (worker clock when worker
        events are available, otherwise folded into ``stream``);
        ``stream``: everything else between lease grant and the
        coordinator recording the result — lease delivery, result
        serialization, the TCP hop; ``total``: submission to recorded
        completion. All differences are same-source monotonic.
        """
        winner = self.winning_attempt()
        if (
            winner is None
            or winner.leased is None
            or winner.completed is None
            or self.submitted is None
        ):
            return None
        queue = winner.leased.mono - self.submitted.mono
        remote = winner.completed.mono - winner.leased.mono
        execute = winner.execute_seconds
        if execute is None or execute > remote:
            execute = remote
        return {
            "queue": max(0.0, queue),
            "execute": max(0.0, execute),
            "stream": max(0.0, remote - execute),
            "total": max(0.0, winner.completed.mono - self.submitted.mono),
        }


@dataclass
class Reconciliation:
    """Outcome of cross-checking a reconstructed fabric timeline."""

    cells: int
    attempts: int
    releases: int
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def __str__(self) -> str:
        status = "OK" if self.ok else f"{len(self.problems)} problem(s)"
        return (
            f"reconciliation: {status} ({self.cells} cells, "
            f"{self.attempts} attempts, {self.releases} re-lease(s))"
        )


class FabricTimeline:
    """Per-cell timelines of one dispatched batch, rebuilt from spans."""

    def __init__(self, run: Optional[str] = None):
        self.run = run
        self.cells: Dict[int, CellTimeline] = {}
        self.batch_begin: Optional[SpanEvent] = None
        self.batch_end: Optional[SpanEvent] = None
        self.workers: Dict[str, Dict[str, Any]] = {}

    # -- construction --------------------------------------------------------

    @classmethod
    def runs(cls, events: Sequence[SpanEvent]) -> List[str]:
        """Run ids seen in ``events``, in first-appearance order."""
        seen: List[str] = []
        for event in events:
            if event.run is not None and event.run not in seen:
                seen.append(event.run)
        return seen

    @classmethod
    def from_events(
        cls, events: Sequence[SpanEvent], run: Optional[str] = None
    ) -> "FabricTimeline":
        """Reconstruct one run's timeline from merged span events.

        ``run=None`` picks the *last* run that appears (multi-batch
        commands append several runs to one coordinator log; the last
        is usually the one being debugged). Events without a run id —
        worker session chatter — are ignored.
        """
        if run is None:
            known = cls.runs(events)
            run = known[-1] if known else None
        timeline = cls(run)
        for event in events:
            if event.run != run or event.run is None:
                continue
            timeline._absorb(event)
        return timeline

    def _absorb(self, event: SpanEvent) -> None:
        kind = event.kind
        if kind == BATCH_BEGIN:
            self.batch_begin = event
            return
        if kind == BATCH_END:
            self.batch_end = event
            return
        if kind in (WORKER_JOIN, WORKER_LEAVE):
            if event.worker is not None:
                entry = self.workers.setdefault(event.worker, {})
                entry["left" if kind == WORKER_LEAVE else "joined"] = event
            return
        if event.cell is None:
            return
        cell = self.cells.setdefault(event.cell, CellTimeline(event.cell))
        if kind == SUBMIT:
            cell.submitted = event
            return
        attempt = cell.attempt(
            event.attempt if event.attempt is not None else 0, event.worker
        )
        if event.worker is not None:
            self.workers.setdefault(event.worker, {})
        if kind == LEASE:
            attempt.leased = event
        elif kind == HEARTBEAT:
            attempt.heartbeats += 1
        elif kind == COMPLETE:
            attempt.completed = event
        elif kind == EXPIRE:
            attempt.expired = event
        elif kind == RELEASE:
            attempt.released = event
        elif kind == EXECUTE:
            attempt.executed = event
        elif kind == FINISH:
            attempt.finished = event
        elif kind == RESULT_SENT:
            if attempt.finished is None:
                attempt.finished = event
        elif kind == ERROR:
            attempt.errored = event

    # -- queries -------------------------------------------------------------

    @property
    def attempt_count(self) -> int:
        return sum(len(cell.attempts) for cell in self.cells.values())

    @property
    def release_count(self) -> int:
        """Attempts that ended in an expiry or a dead-worker release."""
        return sum(
            1
            for cell in self.cells.values()
            for attempt in cell.attempts.values()
            if attempt.expired is not None or attempt.released is not None
        )

    def wall_seconds(self) -> Optional[float]:
        """Batch duration on the coordinator's monotonic clock."""
        if self.batch_begin is None or self.batch_end is None:
            return None
        return self.batch_end.mono - self.batch_begin.mono

    def worker_lanes(self) -> Dict[str, List[AttemptRecord]]:
        """Attempts grouped per worker, ordered by lease time."""
        lanes: Dict[str, List[AttemptRecord]] = {}
        for cell in self.cells.values():
            for attempt in cell.attempts.values():
                if attempt.worker is None:
                    continue
                lanes.setdefault(attempt.worker, []).append(attempt)
        for attempts in lanes.values():
            attempts.sort(
                key=lambda a: a.leased.mono if a.leased is not None else -1.0
            )
        return lanes

    # -- reconciliation ------------------------------------------------------

    def reconcile(self) -> Reconciliation:
        """Cross-check the timeline's causal invariants.

        * the batch declares N cells and all N (exactly) appear;
        * every cell was submitted, attempted, and completed by
          **exactly one** winning attempt (no orphan winners, no
          double-counts);
        * attempt numbers are gapless from 0 — a re-lease is attempt
          k+1 of the same cell, so a gap means a lost lease record;
        * every expiry/release is *matched*: a later re-lease exists,
          or the cell's winning completion resolved it (a completion
          racing the expiry sweep legitimately swallows the re-lease);
        * a non-winning attempt without an expiry, release, or
          duplicate completion is only legal when the cell was won by
          another attempt (its lease was superseded by that
          completion).
        """
        report = Reconciliation(
            cells=len(self.cells),
            attempts=self.attempt_count,
            releases=self.release_count,
        )
        problems = report.problems
        declared = (
            self.batch_begin.extra.get("cells")
            if self.batch_begin is not None
            else None
        )
        if declared is not None:
            expected = set(range(int(declared)))
            missing = expected - set(self.cells)
            unexpected = set(self.cells) - expected
            if missing:
                problems.append(f"cells never seen: {sorted(missing)}")
            if unexpected:
                problems.append(
                    f"cells outside the declared batch: {sorted(unexpected)}"
                )
        for index in sorted(self.cells):
            cell = self.cells[index]
            if cell.submitted is None:
                problems.append(f"cell {index}: no submit event")
            if not cell.attempts:
                problems.append(f"cell {index}: never attempted")
                continue
            numbers = sorted(cell.attempts)
            if numbers != list(range(len(numbers))):
                problems.append(
                    f"cell {index}: attempt numbers {numbers} are not "
                    f"gapless from 0"
                )
            winners = [
                a for a in cell.attempts.values() if a.winner
            ]
            if len(winners) != 1:
                problems.append(
                    f"cell {index}: {len(winners)} winning attempts "
                    f"(expected exactly 1)"
                )
            winner = winners[0] if len(winners) == 1 else None
            for attempt in cell.attempts.values():
                ended = attempt.expired or attempt.released
                if ended is not None and not attempt.winner:
                    released_later = any(
                        other > attempt.attempt for other in cell.attempts
                    )
                    if not released_later and winner is None:
                        problems.append(
                            f"cell {index} attempt {attempt.attempt}: "
                            f"expired/released but never re-leased or "
                            f"completed"
                        )
                if (
                    ended is None
                    and attempt.completed is None
                    and winner is None
                ):
                    problems.append(
                        f"cell {index} attempt {attempt.attempt}: no "
                        f"terminal event (still leased?)"
                    )
                if (
                    attempt.leased is not None
                    and attempt.executed is not None
                    and attempt.executed.source != attempt.leased.worker
                ):
                    problems.append(
                        f"cell {index} attempt {attempt.attempt}: executed "
                        f"by {attempt.executed.source!r} but leased to "
                        f"{attempt.leased.worker!r}"
                    )
        return report

    def __repr__(self) -> str:
        return (
            f"<FabricTimeline run={self.run!r} cells={len(self.cells)} "
            f"attempts={self.attempt_count}>"
        )


# -- rendering ----------------------------------------------------------------


def _fmt_seconds(value: Optional[float]) -> str:
    return f"{value:.2f}s" if value is not None else "?"


def render_fabric_timeline(
    timeline: FabricTimeline,
    reconciliation: Optional[Reconciliation] = None,
    *,
    stragglers: int = 5,
) -> str:
    """A post-hoc text report of one dispatched batch.

    Sections: headline (run, cells, workers, wall time), the
    reconciliation verdict, aggregate phase decomposition
    (queue/execute/stream over winning attempts), per-worker lanes
    (cells served, busy time, share of the batch wall), re-lease
    annotations, and the slowest cells with their phase split.
    """
    if reconciliation is None:
        reconciliation = timeline.reconcile()
    lines: List[str] = []
    wall = timeline.wall_seconds()
    lines.append(
        f"fabric run {timeline.run or '?'}: {len(timeline.cells)} cells, "
        f"{len(timeline.workers)} worker(s), wall {_fmt_seconds(wall)}"
    )
    lines.append(str(reconciliation))
    for problem in reconciliation.problems:
        lines.append(f"  ! {problem}")

    phased = [
        (index, cell.phases())
        for index, cell in sorted(timeline.cells.items())
    ]
    phased = [(index, p) for index, p in phased if p is not None]
    if phased:
        totals = {key: 0.0 for key in ("queue", "execute", "stream", "total")}
        for _, p in phased:
            for key in totals:
                totals[key] += p[key]
        denominator = totals["total"] or 1.0
        lines.append(
            "phase totals (winning attempts): "
            + " | ".join(
                f"{key} {totals[key]:.2f}s "
                f"({100.0 * totals[key] / denominator:.0f}%)"
                for key in ("queue", "execute", "stream")
            )
        )

    lanes = timeline.worker_lanes()
    if lanes:
        lines.append("per-worker lanes:")
        for worker in sorted(lanes):
            attempts = lanes[worker]
            won = [a for a in attempts if a.winner]
            busy = sum(
                a.remote_seconds or 0.0 for a in attempts
            )
            share = (
                f", {100.0 * busy / wall:.0f}% of batch wall"
                if wall else ""
            )
            cells = ", ".join(
                f"{a.cell}" + (f"(a{a.attempt})" if a.attempt else "")
                for a in attempts
            )
            died = (
                "left" in timeline.workers.get(worker, {})
                and any(a.released is not None for a in attempts)
            )
            note = "  [connection died holding leases]" if died else ""
            lines.append(
                f"  {worker}: {len(won)}/{len(attempts)} attempts won, "
                f"busy {busy:.2f}s{share}  cells: {cells or '-'}{note}"
            )

    releases = [
        (cell.cell, attempt)
        for cell in timeline.cells.values()
        for attempt in sorted(cell.attempts.values(), key=lambda a: a.attempt)
        if attempt.expired is not None or attempt.released is not None
    ]
    if releases:
        lines.append("re-leases:")
        for index, attempt in releases:
            how = "expired" if attempt.expired is not None else "released"
            succ = timeline.cells[index].attempts.get(attempt.attempt + 1)
            if succ is not None:
                resolution = (
                    f"-> attempt {succ.attempt} ({succ.worker or '?'}"
                    f"{', won' if succ.winner else ''})"
                )
            else:
                resolution = "-> resolved by a racing completion"
            lines.append(
                f"  cell {index}: attempt {attempt.attempt} "
                f"({attempt.worker or '?'}) {how} {resolution}"
            )

    if phased:
        slowest = sorted(phased, key=lambda item: -item[1]["total"])
        lines.append(f"stragglers (slowest {min(stragglers, len(slowest))}):")
        for index, p in slowest[:stragglers]:
            label = timeline.cells[index].label
            name = f"cell {index}" + (f" ({label})" if label else "")
            lines.append(
                f"  {name}: total {p['total']:.2f}s = queue {p['queue']:.2f}s "
                f"+ execute {p['execute']:.2f}s + stream {p['stream']:.2f}s"
            )
    return "\n".join(lines)
