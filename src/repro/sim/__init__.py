"""Discrete-event simulation substrate (the CSIM replacement).

The paper's simulators were written on top of the proprietary CSIM
package; this subpackage provides an equivalent process-oriented engine:

* :class:`Environment` — clock, event queue, ``run(until)``.
* :class:`Event`, :class:`Timeout`, :class:`AllOf`, :class:`AnyOf` —
  waitable occurrences.
* :class:`Process`, :class:`Interrupt` — generator-based concurrency.
* :class:`Resource`, :class:`Store` — queued shared resources.
* :class:`RandomStreams` and the distribution classes — reproducible
  workload randomness.
* :class:`RunningStats`, :class:`TimeWeightedStats`,
  :class:`EmpiricalCdf`, :func:`batch_means_ci` — output analysis.
* :class:`Checkpoint`, :func:`state_digest`, :func:`canonical_state` —
  deterministic run snapshots (see :mod:`repro.experiments.checkpointing`
  for the model-aware driver).
* :class:`FastForwardEnvironment`, :class:`FluidTask` — the hybrid
  fluid/event fast-forward engine mode, bit-identical to the reference
  engine (see :mod:`repro.sim.fastforward`).
"""

from .checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    Checkpoint,
    canonical_state,
    latest_checkpoint,
    list_checkpoints,
    read_checkpoint,
    state_digest,
    write_checkpoint,
)
from .distributions import (
    Constant,
    DiscreteUniform,
    Distribution,
    Empirical,
    Exponential,
    Geometric,
    Uniform,
    Zipf,
    zipf_weights,
)
from .containers import (
    Container,
    Preempted,
    PreemptiveResource,
    PriorityResource,
)
from .engine import EmptySchedule, Environment
from .fastforward import FastForwardEnvironment, FluidTask
from .events import (
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    PRIORITY_URGENT,
    AllOf,
    AnyOf,
    Event,
    Timeout,
)
from .process import Interrupt, Process
from .resources import Resource, Store
from .rng import RandomStreams, derive_seed
from .stats import (
    EmpiricalCdf,
    RunningStats,
    TimeWeightedStats,
    batch_means_ci,
    relative_ci_width,
)
from .tracing import NullTracer, TraceRecord, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "CHECKPOINT_FORMAT_VERSION",
    "Checkpoint",
    "Constant",
    "Container",
    "DiscreteUniform",
    "Distribution",
    "Empirical",
    "EmpiricalCdf",
    "EmptySchedule",
    "Environment",
    "Event",
    "Exponential",
    "FastForwardEnvironment",
    "FluidTask",
    "Geometric",
    "Interrupt",
    "NullTracer",
    "PRIORITY_LOW",
    "PRIORITY_NORMAL",
    "PRIORITY_URGENT",
    "Preempted",
    "PreemptiveResource",
    "PriorityResource",
    "Process",
    "RandomStreams",
    "Resource",
    "RunningStats",
    "Store",
    "Timeout",
    "TimeWeightedStats",
    "TraceRecord",
    "Tracer",
    "Uniform",
    "Zipf",
    "batch_means_ci",
    "canonical_state",
    "derive_seed",
    "latest_checkpoint",
    "list_checkpoints",
    "read_checkpoint",
    "relative_ci_width",
    "state_digest",
    "write_checkpoint",
    "zipf_weights",
]
