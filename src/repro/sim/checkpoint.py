"""Deterministic run checkpoints: snapshot format, digests and file IO.

A checkpoint is a *replay marker with a proof obligation*. Simulation
processes are live Python generator frames, which CPython cannot
serialize — so a snapshot does not try to freeze the event heap's
continuations. Instead it records everything needed to reconstruct the
cut point *exactly* by deterministic replay:

* the full simulation configuration and master seed (the run is a pure
  function of these),
* the cut position — simulation time and the number of dispatched
  events,
* a canonical snapshot of every piece of serializable model state (RNG
  substream positions, cache contents and clocks, streaming statistics,
  alarm/monitor state, workload counters, the metrics registry), and
* a SHA-256 digest over that snapshot.

Resuming rebuilds the simulation from the recorded config, replays to
the recorded cut and then *verifies* that the replayed state reproduces
the digest bit-for-bit before continuing
(:class:`~repro.errors.CheckpointMismatchError` otherwise). The result
is that a resumed run either is provably the interrupted run — same
trajectory, same metrics, same trace stream — or fails loudly; see
``docs/CHECKPOINTING.md`` for the format and the determinism argument.

This module is engine-level and generic: it digests plain state
structures and moves checkpoint files around. The model-aware half —
walking a wired :class:`~repro.experiments.simulation.Simulation` and
driving segmented runs — lives in
:mod:`repro.experiments.checkpointing`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
import pathlib
import re
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Union

from ..errors import CheckpointError

PathLike = Union[str, pathlib.Path]

#: On-disk format version; bumped whenever the snapshot layout changes
#: so that old checkpoints fail loudly instead of verifying vacuously.
CHECKPOINT_FORMAT_VERSION = 1

CHECKPOINT_KIND = "simulation_checkpoint"

#: Checkpoint files are ``checkpoint-000042.json`` — zero-padded so
#: lexicographic order is sequence order on any filesystem.
_CHECKPOINT_NAME = "checkpoint-{sequence:06d}.json"
_CHECKPOINT_PATTERN = re.compile(r"^checkpoint-(\d{6})\.json$")


def canonical_state(obj: Any) -> Any:
    """Reduce ``obj`` to a canonical JSON-safe structure.

    Canonical means: tuples become lists, mapping entries are sorted by
    their serialized key (so dict construction order cannot leak into
    the digest), non-string keys are stringified via ``repr``, and only
    JSON-representable leaves survive. Floats pass through unchanged —
    ``json.dumps`` serializes them via ``repr``, which is exact for
    finite doubles, so digest equality is bit-equality of every float
    in the state. Non-finite floats are rejected: NaN never compares
    equal, so a state containing one could not honestly claim
    reproducibility.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        if not math.isfinite(obj):
            raise CheckpointError(
                f"non-finite float {obj!r} cannot appear in checkpoint state"
            )
        return obj
    if isinstance(obj, (list, tuple)):
        return [canonical_state(item) for item in obj]
    if isinstance(obj, dict):
        items = []
        for key, value in obj.items():
            if not isinstance(key, str):
                key = repr(key)
            items.append((key, canonical_state(value)))
        items.sort(key=lambda pair: pair[0])
        return dict(items)
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return canonical_state(dataclasses.asdict(obj))
    raise CheckpointError(
        f"cannot canonicalize {type(obj).__name__!r} for a checkpoint"
    )


def state_digest(state: Any) -> str:
    """SHA-256 hex digest of the canonical serialization of ``state``."""
    payload = json.dumps(
        canonical_state(state), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def config_digest(config_dict: Dict[str, Any]) -> str:
    """Digest of a serialized configuration (for manifest cross-checks)."""
    return state_digest(config_dict)


@dataclass
class Checkpoint:
    """One on-disk snapshot of an interrupted (or interruptible) run."""

    #: Monotonic sequence number within the run (0, 1, 2, ...).
    sequence: int
    #: Simulation time of the cut (a ``run(until=...)`` boundary).
    time: float
    #: Events dispatched when the cut was taken (the replay position).
    dispatched: int
    #: Serialized :class:`~repro.experiments.config.SimulationConfig`.
    config: Dict[str, Any]
    #: Digest of :attr:`config` — quick staleness check for resumes.
    config_hash: str
    #: Master seed (duplicated out of the config for greppability).
    seed: int
    #: Checkpoint cadence the run was started with (simulated seconds).
    every: float
    #: Canonical model-state snapshot at the cut (see module docstring).
    state: Dict[str, Any]
    #: Digest of :attr:`state` — what a resume must reproduce.
    digest: str
    #: ``repro.__version__`` that wrote the checkpoint.
    engine_version: str
    #: Snapshot layout version.
    format_version: int = CHECKPOINT_FORMAT_VERSION
    #: Dispatch engine mode the run was started with (``"event"`` or
    #: ``"fastforward"``). Both modes produce bit-identical state
    #: digests, so this field is provenance, not digested state: resumes
    #: default to the recorded mode, and an *explicitly requested*
    #: different mode is refused by name instead of surfacing as a
    #: digest mystery. Defaulted for checkpoints written before the
    #: fast-forward engine existed.
    engine_mode: str = "event"

    def to_dict(self) -> Dict[str, Any]:
        """The checkpoint as a JSON-ready dict, stamped with ``kind``."""
        data = dataclasses.asdict(self)
        data["kind"] = CHECKPOINT_KIND
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Checkpoint":
        """Rebuild from :meth:`to_dict` output, refusing foreign layouts."""
        if data.get("kind") != CHECKPOINT_KIND:
            raise CheckpointError(
                f"not a checkpoint: kind={data.get('kind')!r}"
            )
        if data.get("format_version") != CHECKPOINT_FORMAT_VERSION:
            raise CheckpointError(
                f"unsupported checkpoint format version "
                f"{data.get('format_version')!r} "
                f"(this build reads version {CHECKPOINT_FORMAT_VERSION})"
            )
        fields = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in fields})


def checkpoint_path(directory: PathLike, sequence: int) -> pathlib.Path:
    """The canonical file path of checkpoint ``sequence`` under ``directory``."""
    return pathlib.Path(directory) / _CHECKPOINT_NAME.format(sequence=sequence)


def write_checkpoint(checkpoint: Checkpoint, directory: PathLike) -> pathlib.Path:
    """Atomically write ``checkpoint`` into ``directory``.

    Written to a temp name then renamed, so a crash mid-write can never
    leave a truncated file that a later resume would trip over.
    """
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = checkpoint_path(directory, checkpoint.sequence)
    tmp = path.with_suffix(".json.tmp")
    tmp.write_text(
        json.dumps(checkpoint.to_dict(), indent=1, sort_keys=True) + "\n"
    )
    tmp.replace(path)
    return path


def read_checkpoint(path: PathLike) -> Checkpoint:
    """Load one checkpoint file."""
    path = pathlib.Path(path)
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError) as error:
        raise CheckpointError(f"cannot read checkpoint {path}: {error}") from error
    return Checkpoint.from_dict(data)


def list_checkpoints(directory: PathLike) -> List[pathlib.Path]:
    """All checkpoint files under ``directory``, in sequence order."""
    directory = pathlib.Path(directory)
    if not directory.is_dir():
        return []
    return sorted(
        entry
        for entry in directory.iterdir()
        if _CHECKPOINT_PATTERN.match(entry.name)
    )


def latest_checkpoint(directory: PathLike) -> Optional[Checkpoint]:
    """The highest-sequence checkpoint under ``directory``, or ``None``."""
    paths = list_checkpoints(directory)
    if not paths:
        return None
    return read_checkpoint(paths[-1])
