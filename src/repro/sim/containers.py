"""Level-based and priority-aware resource primitives.

Extends the queued primitives of :mod:`repro.sim.resources`:

:class:`Container`
    A continuous reservoir (fuel, tokens, budget): ``put(amount)`` and
    ``get(amount)`` block until the level permits. Useful for token-
    bucket style rate limiting in user models built on this engine.
:class:`PriorityResource`
    A counted resource whose queue is ordered by ``(priority, FIFO)``;
    lower priority values are served first.
:class:`PreemptiveResource`
    A priority resource where sufficiently urgent requests evict the
    weakest current holder (the victim learns through a ``preempted``
    event failing with :class:`Preempted`).
"""

from __future__ import annotations

import heapq
from typing import Any, Deque, List, Optional, Tuple

from collections import deque

from ..errors import SimulationError
from .events import Event


class ContainerPut(Event):
    """Pending deposit of ``amount`` into a :class:`Container`."""

    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float):
        if amount <= 0:
            raise SimulationError(f"amount must be > 0, got {amount!r}")
        super().__init__(container.env)
        self.amount = float(amount)
        container._putters.append(self)
        container._dispatch()


class ContainerGet(Event):
    """Pending withdrawal of ``amount`` from a :class:`Container`."""

    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float):
        if amount <= 0:
            raise SimulationError(f"amount must be > 0, got {amount!r}")
        super().__init__(container.env)
        self.amount = float(amount)
        container._getters.append(self)
        container._dispatch()


class Container:
    """A continuous reservoir with blocking put/get (see module doc)."""

    def __init__(self, env, capacity: float = float("inf"), init: float = 0.0):
        if capacity <= 0:
            raise SimulationError(f"capacity must be > 0, got {capacity!r}")
        if not 0 <= init <= capacity:
            raise SimulationError(
                f"init must be in [0, capacity], got {init!r}"
            )
        self.env = env
        self.capacity = float(capacity)
        self._level = float(init)
        self._putters: Deque[ContainerPut] = deque()
        self._getters: Deque[ContainerGet] = deque()

    @property
    def level(self) -> float:
        """Current amount stored."""
        return self._level

    def put(self, amount: float) -> ContainerPut:
        """Deposit ``amount``; triggers once it fits under ``capacity``."""
        return ContainerPut(self, amount)

    def get(self, amount: float) -> ContainerGet:
        """Withdraw ``amount``; triggers once the level suffices."""
        return ContainerGet(self, amount)

    def _dispatch(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if (
                self._putters
                and self._level + self._putters[0].amount <= self.capacity
            ):
                put = self._putters.popleft()
                self._level += put.amount
                put.succeed()
                progressed = True
            if self._getters and self._getters[0].amount <= self._level:
                get = self._getters.popleft()
                self._level -= get.amount
                get.succeed(get.amount)
                progressed = True

    def __repr__(self) -> str:
        return f"<Container level={self._level:.4g}/{self.capacity:.4g}>"


class PriorityRequest(Event):
    """Pending acquisition of a :class:`PriorityResource` slot."""

    __slots__ = ("resource", "priority")

    def __init__(self, resource: "PriorityResource", priority: int):
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority
        resource._push(self)
        resource._dispatch()

    def __enter__(self) -> "PriorityRequest":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        if self.triggered:
            self.resource.release(self)


class PriorityResource:
    """A counted resource served in ``(priority, FIFO)`` order."""

    def __init__(self, env, capacity: int = 1):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity!r}")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._sequence = 0
        self._queue: List[Tuple[int, int, PriorityRequest]] = []

    @property
    def count(self) -> int:
        """Number of capacity slots currently held."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._queue)

    def request(self, priority: int = 0) -> PriorityRequest:
        """Ask for a slot; lower ``priority`` values are granted first."""
        return PriorityRequest(self, priority)

    def release(self, request: PriorityRequest) -> None:
        """Return the slot held by ``request``."""
        if request.resource is not self:
            raise SimulationError("request was issued against a different resource")
        if not request.triggered:
            raise SimulationError("cannot release an ungranted request")
        self._in_use -= 1
        self._dispatch()

    def _push(self, request: PriorityRequest) -> None:
        self._sequence += 1
        heapq.heappush(self._queue, (request.priority, self._sequence, request))

    def _dispatch(self) -> None:
        while self._queue and self._in_use < self.capacity:
            _, _, request = heapq.heappop(self._queue)
            self._in_use += 1
            request.succeed(self)

    def __repr__(self) -> str:
        return (
            f"<PriorityResource capacity={self.capacity} "
            f"in_use={self._in_use} queued={len(self._queue)}>"
        )


class PreemptiveRequest(PriorityRequest):
    """Pending acquisition of a :class:`PreemptiveResource` slot."""

    __slots__ = ()


class Preempted(Exception):
    """Raised (via event failure) in a process whose slot was preempted.

    ``by`` is the preempting request; ``usage_since`` the time the victim
    acquired the slot.
    """

    def __init__(self, by, usage_since: float):
        super().__init__(by, usage_since)
        self.by = by
        self.usage_since = usage_since


class PreemptiveResource:
    """A priority resource where urgent requests evict weaker holders.

    A request with a strictly lower priority value than the
    weakest current holder preempts it: the holder's original request
    event is *failed* with :class:`Preempted` (delivered to any process
    waiting on an event derived from it via the ``preempted`` event
    returned by :meth:`request`), the slot transfers, and the victim
    must re-request if it still needs the resource.
    """

    def __init__(self, env, capacity: int = 1):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity!r}")
        self.env = env
        self.capacity = capacity
        self._sequence = 0
        #: (priority, sequence, request, acquired_at, preempted_event)
        self._holders: List[list] = []
        self._queue: List[Tuple[int, int, "PreemptiveRequest"]] = []
        self.preemptions = 0

    @property
    def count(self) -> int:
        """Number of capacity slots currently held."""
        return len(self._holders)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._queue)

    def request(self, priority: int = 0):
        """Ask for a slot; returns ``(request_event, preempted_event)``.

        ``request_event`` triggers when the slot is granted;
        ``preempted_event`` fails with :class:`Preempted` if the slot is
        later taken away. Processes typically wait on the request, then
        on ``env.any_of([work_timeout, preempted_event])``.
        """
        request = PreemptiveRequest.__new__(PreemptiveRequest)
        Event.__init__(request, self.env)
        request.resource = self
        request.priority = priority
        preempted_event = Event(self.env)
        self._sequence += 1
        if len(self._holders) < self.capacity:
            self._holders.append(
                [priority, self._sequence, request, self.env.now,
                 preempted_event]
            )
            request.succeed(self)
        else:
            weakest = max(self._holders, key=lambda h: (h[0], h[1]))
            if priority < weakest[0]:
                self._holders.remove(weakest)
                self.preemptions += 1
                weakest[4].fail(Preempted(by=request, usage_since=weakest[3]))
                self._holders.append(
                    [priority, self._sequence, request, self.env.now,
                     preempted_event]
                )
                request.succeed(self)
            else:
                heapq.heappush(self._queue, (priority, self._sequence, request))
        return request, preempted_event

    def release(self, request) -> None:
        """Return the slot held by ``request`` (no-op if preempted away)."""
        for holder in self._holders:
            if holder[2] is request:
                self._holders.remove(holder)
                break
        else:
            return  # preempted earlier: nothing to release
        if self._queue:
            priority, sequence, queued = heapq.heappop(self._queue)
            self._holders.append(
                [priority, sequence, queued, self.env.now, Event(self.env)]
            )
            queued.succeed(self)

    def __repr__(self) -> str:
        return (
            f"<PreemptiveResource capacity={self.capacity} "
            f"in_use={len(self._holders)} queued={len(self._queue)} "
            f"preemptions={self.preemptions}>"
        )
