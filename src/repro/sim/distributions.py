"""Random-variate distributions used by the workload model.

Each distribution is a small immutable object with a ``sample(rng)``
method drawing one variate from a supplied :class:`random.Random` and a
``mean`` property used for load calculations and calibration. Keeping the
generator external lets one distribution object be shared across streams.
"""

from __future__ import annotations

import bisect
import functools
import itertools
import math
import random
from typing import Callable, List, Sequence

from ..errors import ConfigurationError


class Distribution:
    """Base class for scalar random-variate distributions."""

    def sample(self, rng: random.Random) -> float:
        """Draw one variate using ``rng``."""
        raise NotImplementedError

    def sampler(self, rng: random.Random) -> Callable[[], float]:
        """A zero-argument sampler bound to ``rng`` for hot loops.

        Draws the exact same variate sequence as repeated
        ``sample(rng)`` calls. Subclasses whose sampling is a single
        ``rng`` method call override this with a ``functools.partial``
        on the bound method, which removes one Python stack frame per
        draw — per-page draws are among the most frequent calls in a
        full run.
        """
        return functools.partial(self.sample, rng)

    @property
    def mean(self) -> float:
        """Expected value of the distribution."""
        raise NotImplementedError


class Constant(Distribution):
    """A degenerate distribution returning ``value`` every time."""

    def __init__(self, value: float):
        self.value = float(value)

    def sample(self, rng: random.Random) -> float:
        """Return ``value``; consumes no randomness from ``rng``."""
        return self.value

    @property
    def mean(self) -> float:
        """The constant itself."""
        return self.value

    def __repr__(self) -> str:
        return f"Constant({self.value!r})"


class Exponential(Distribution):
    """Exponential distribution with the given ``mean`` (not rate)."""

    def __init__(self, mean: float):
        if mean <= 0:
            raise ConfigurationError(f"exponential mean must be > 0, got {mean!r}")
        self._mean = float(mean)

    def sample(self, rng: random.Random) -> float:
        """Draw one exponential variate via ``rng.expovariate``."""
        return rng.expovariate(1.0 / self._mean)

    def sampler(self, rng: random.Random) -> Callable[[], float]:
        """Zero-arg sampler bound directly to ``rng.expovariate``."""
        return functools.partial(rng.expovariate, 1.0 / self._mean)

    @property
    def mean(self) -> float:
        """The configured mean (reciprocal of the rate)."""
        return self._mean

    def __repr__(self) -> str:
        return f"Exponential(mean={self._mean!r})"


class Uniform(Distribution):
    """Continuous uniform distribution on ``[low, high]``."""

    def __init__(self, low: float, high: float):
        if high < low:
            raise ConfigurationError(f"uniform bounds reversed: [{low!r}, {high!r}]")
        self.low = float(low)
        self.high = float(high)

    def sample(self, rng: random.Random) -> float:
        """Draw one uniform variate via ``rng.uniform``."""
        return rng.uniform(self.low, self.high)

    def sampler(self, rng: random.Random) -> Callable[[], float]:
        """Zero-arg sampler bound directly to ``rng.uniform``."""
        return functools.partial(rng.uniform, self.low, self.high)

    @property
    def mean(self) -> float:
        """Midpoint of ``[low, high]``."""
        return (self.low + self.high) / 2.0

    def __repr__(self) -> str:
        return f"Uniform({self.low!r}, {self.high!r})"


class DiscreteUniform(Distribution):
    """Integer uniform distribution on ``{low, ..., high}`` inclusive.

    The paper draws the number of hits per page from the discrete
    interval (5, 15).
    """

    def __init__(self, low: int, high: int):
        if high < low:
            raise ConfigurationError(f"bounds reversed: [{low!r}, {high!r}]")
        self.low = int(low)
        self.high = int(high)

    def sample(self, rng: random.Random) -> int:
        """Draw one integer via ``rng.randint`` (both bounds inclusive)."""
        return rng.randint(self.low, self.high)

    def sampler(self, rng: random.Random) -> Callable[[], int]:
        """Zero-arg sampler bound directly to ``rng.randint``."""
        return functools.partial(rng.randint, self.low, self.high)

    @property
    def mean(self) -> float:
        """Midpoint of ``{low, ..., high}``."""
        return (self.low + self.high) / 2.0

    def __repr__(self) -> str:
        return f"DiscreteUniform({self.low!r}, {self.high!r})"


class Geometric(Distribution):
    """Geometric distribution on ``{1, 2, ...}`` with the given mean.

    The discrete analogue of the paper's "exponentially distributed"
    number of page requests per session: memoryless, strictly positive,
    integer-valued.
    """

    def __init__(self, mean: float):
        if mean < 1:
            raise ConfigurationError(f"geometric mean must be >= 1, got {mean!r}")
        self._mean = float(mean)
        self._p = 1.0 / self._mean

    def sample(self, rng: random.Random) -> int:
        """Draw one geometric variate (>= 1) by CDF inversion."""
        # Inversion: ceil(log(U) / log(1 - p)) for U in (0, 1).
        if self._p >= 1.0:
            return 1
        u = rng.random()
        while u <= 0.0:  # pragma: no cover - random() is in [0, 1)
            u = rng.random()
        return max(1, math.ceil(math.log(u) / math.log(1.0 - self._p)))

    @property
    def mean(self) -> float:
        """The configured mean (``1 / p``)."""
        return self._mean

    def __repr__(self) -> str:
        return f"Geometric(mean={self._mean!r})"


class Empirical(Distribution):
    """Discrete distribution over arbitrary ``values`` with ``weights``."""

    def __init__(self, values: Sequence[float], weights: Sequence[float]):
        if len(values) != len(weights):
            raise ConfigurationError("values and weights must have equal length")
        if not values:
            raise ConfigurationError("empirical distribution needs at least one value")
        if any(w < 0 for w in weights):
            raise ConfigurationError("weights must be non-negative")
        total = float(sum(weights))
        if total <= 0:
            raise ConfigurationError("weights must not all be zero")
        self.values: List[float] = list(values)
        self.probabilities: List[float] = [w / total for w in weights]
        self._cumulative: List[float] = list(
            itertools.accumulate(self.probabilities)
        )
        self._cumulative[-1] = 1.0  # guard against float drift

    def sample(self, rng: random.Random):
        """Draw one value by binary search over the cumulative weights."""
        index = bisect.bisect_right(self._cumulative, rng.random())
        return self.values[min(index, len(self.values) - 1)]

    @property
    def mean(self) -> float:
        """Probability-weighted average of ``values``."""
        return sum(v * p for v, p in zip(self.values, self.probabilities))

    def __repr__(self) -> str:
        return f"Empirical(n={len(self.values)})"


def zipf_weights(count: int, exponent: float = 1.0) -> List[float]:
    """Normalized pure-Zipf popularity weights for ranks ``1..count``.

    The i-th element is ``(1 / i**exponent) / H`` where ``H`` is the
    generalized harmonic number, so the list sums to 1. The paper
    partitions clients among domains with ``exponent = 1`` ("pure Zipf").
    """
    if count < 1:
        raise ConfigurationError(f"count must be >= 1, got {count!r}")
    if exponent < 0:
        raise ConfigurationError(f"exponent must be >= 0, got {exponent!r}")
    raw = [1.0 / (rank**exponent) for rank in range(1, count + 1)]
    total = sum(raw)
    return [value / total for value in raw]


class Zipf(Distribution):
    """Zipf-distributed rank on ``{0, ..., count-1}`` (0 = most popular)."""

    def __init__(self, count: int, exponent: float = 1.0):
        self.count = int(count)
        self.exponent = float(exponent)
        self._empirical = Empirical(
            list(range(self.count)), zipf_weights(self.count, self.exponent)
        )

    @property
    def probabilities(self) -> List[float]:
        """Per-rank selection probabilities (descending)."""
        return list(self._empirical.probabilities)

    def sample(self, rng: random.Random) -> int:
        """Draw one rank from the underlying :class:`Empirical`."""
        return self._empirical.sample(rng)

    @property
    def mean(self) -> float:
        """Expected rank under the Zipf weights."""
        return self._empirical.mean

    def __repr__(self) -> str:
        return f"Zipf(count={self.count}, exponent={self.exponent})"
