"""The discrete-event simulation engine.

:class:`Environment` owns the simulation clock and the event queue and is
the factory for all simulation primitives (events, timeouts, processes).
It replaces the proprietary CSIM package the paper used: the model code
only relies on process-oriented semantics (spawn a process, sleep for a
simulated delay, wait for an event), which this engine provides.

Determinism
-----------
Events scheduled for the same simulation time are processed in
(priority, insertion order), so two runs of the same seeded model produce
identical trajectories — a property the test suite verifies and the
experiment harness relies on.
"""

from __future__ import annotations

import heapq
from typing import Any, Generator, Iterable, List, Optional, Tuple

from ..errors import SimulationError
from .events import PRIORITY_NORMAL, AllOf, AnyOf, Event, Timeout
from .process import Process


class EmptySchedule(SimulationError):
    """Raised by :meth:`Environment.step` when no events remain."""


class Environment:
    """A discrete-event simulation environment.

    Parameters
    ----------
    initial_time:
        Starting value of the simulation clock (default ``0.0``).
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._eid = 0
        self._active_process: Optional[Process] = None

    # -- clock and queue -------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    def schedule(
        self, event: Event, delay: float = 0.0, priority: int = PRIORITY_NORMAL
    ) -> None:
        """Enqueue ``event`` to be processed after ``delay`` time units."""
        self._eid += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._eid, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none remain."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the next scheduled event.

        Raises
        ------
        EmptySchedule
            If no events remain.
        """
        try:
            self._now, _, _, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule("no scheduled events left") from None
        callbacks, event.callbacks = event.callbacks, None
        event._processed = True
        for callback in callbacks:
            callback(event)

    def run(self, until: Optional[float] = None) -> None:
        """Run the simulation.

        Parameters
        ----------
        until:
            Stop once the clock would pass this time (the clock is then set
            exactly to ``until``). ``None`` runs until the event queue
            drains.
        """
        if until is None:
            try:
                while True:
                    self.step()
            except EmptySchedule:
                return
        target = float(until)
        if target < self._now:
            raise SimulationError(
                f"cannot run until {target!r}: already at {self._now!r}"
            )
        while self._queue and self._queue[0][0] <= target:
            self.step()
        self._now = target

    # -- factories --------------------------------------------------------

    def event(self) -> Event:
        """Create a new pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` that triggers after ``delay``."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Spawn ``generator`` as a simulation :class:`Process`."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that triggers when all of ``events`` have succeeded."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that triggers when any of ``events`` has succeeded."""
        return AnyOf(self, events)

    def __repr__(self) -> str:
        return f"<Environment now={self._now!r} queued={len(self._queue)}>"
