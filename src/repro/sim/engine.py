"""The discrete-event simulation engine.

:class:`Environment` owns the simulation clock and the event queue and is
the factory for all simulation primitives (events, timeouts, processes).
It replaces the proprietary CSIM package the paper used: the model code
only relies on process-oriented semantics (spawn a process, sleep for a
simulated delay, wait for an event), which this engine provides.

Determinism
-----------
Events scheduled for the same simulation time are processed in
(priority, insertion order), so two runs of the same seeded model produce
identical trajectories — a property the test suite verifies, the
experiment harness relies on, and the golden-trajectory regression test
(``tests/integration/test_golden_trajectory.py``) pins bit-for-bit
across engine rewrites.

Performance
-----------
:meth:`Environment.run` is an inlined pop-and-dispatch loop over local
bindings of the heap and clock, with the dominant event shape — a
process sleeping on a :class:`~repro.sim.events.Timeout` nothing else
waits on — resumed inline without allocating a callbacks list or paying
a :meth:`~repro.sim.process.Process._resume` call. :meth:`step` remains
the single-stepping entry point for tests and interactive use and
performs the exact same dispatch in the exact same order. See
``docs/PERFORMANCE.md``, *Engine internals*.
"""

from __future__ import annotations

import heapq
from typing import Generator, Iterable, List, Optional, Tuple

from ..errors import SimulationError
from .events import (
    _PRIORITY_SHIFT,
    PRIORITY_NORMAL,
    AllOf,
    AnyOf,
    Event,
    Timeout,
    timeout_factory,
)
from .process import Process

_INFINITY = float("inf")


class EmptySchedule(SimulationError):
    """Raised by :meth:`Environment.step` when no events remain."""


class Environment:
    """A discrete-event simulation environment.

    Parameters
    ----------
    initial_time:
        Starting value of the simulation clock (default ``0.0``).

    Attributes
    ----------
    timeout:
        Factory for :class:`~repro.sim.events.Timeout` events —
        ``env.timeout(delay, value=None)``. Bound per instance to the
        closure built by :func:`~repro.sim.events.timeout_factory`,
        which constructs the identical event without the
        ``type.__call__`` dispatch — the hottest allocation site in any
        run.
    """

    __slots__ = ("_now", "_queue", "_eid", "_active_process", "timeout")

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        if not -_INFINITY < self._now < _INFINITY:
            raise SimulationError(
                f"initial_time must be finite, got {initial_time!r}"
            )
        #: Heap of ``(time, priority << shift | eid, event)`` entries.
        self._queue: List[Tuple[float, int, Event]] = []
        self._eid = 0
        self._active_process: Optional[Process] = None
        # One sleep per client think time makes `timeout` the
        # most-called factory in a run; see timeout_factory.
        self.timeout = timeout_factory(self)

    # -- clock and queue -------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    def schedule(
        self, event: Event, delay: float = 0.0, priority: int = PRIORITY_NORMAL
    ) -> None:
        """Enqueue ``event`` to be processed after ``delay`` time units.

        ``delay`` must produce a finite time: a NaN-timed entry would
        poison the heap's ordering (every comparison against NaN is
        false), silently corrupting dispatch order for *all* events.
        """
        time = self._now + delay
        if not -_INFINITY < time < _INFINITY:
            raise SimulationError(
                f"cannot schedule {event!r} at non-finite time {time!r} "
                f"(delay {delay!r})"
            )
        self._eid += 1
        heapq.heappush(
            self._queue, (time, (priority << _PRIORITY_SHIFT) | self._eid, event)
        )

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none remain."""
        return self._queue[0][0] if self._queue else _INFINITY

    @property
    def dispatched(self) -> int:
        """Number of events dispatched so far.

        Derived as *scheduled minus still-queued*: events only ever
        leave the heap by being dispatched (there is no cancellation
        path — interrupted timeouts stay queued and are dispatched as
        no-ops), so this needs no counter on the hot dispatch loop.
        Checkpoints record it as the exact replay position of a cut.
        """
        return self._eid - len(self._queue)

    def step(self) -> None:
        """Process the next scheduled event.

        Raises
        ------
        EmptySchedule
            If no events remain.
        """
        try:
            self._now, _, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule("no scheduled events left") from None
        event._processed = True
        # The waiter (if any) registered before any callback could be
        # appended, so resuming it first preserves registration order.
        waiter = event._waiter
        if waiter is not None:
            event._waiter = None
            waiter._resume(event)
        callbacks = event._callbacks
        if callbacks is not None:
            event._callbacks = None
            for callback in callbacks:
                callback(event)

    def run_events(self, count: int, until: Optional[float] = None) -> int:
        """Dispatch at most ``count`` events through :meth:`step`.

        Stops early when the queue drains or (with ``until``) when the
        next event lies beyond ``until`` — the clock is then *not*
        advanced to ``until``, so a later ``run(until=...)`` continues
        the exact same trajectory. Returns the number of events
        dispatched. This is the cut primitive of the checkpoint/resume
        test harness: ``run_events(n)`` followed by ``run(until=T)``
        must be bit-identical to ``run(until=T)`` alone, for every n
        (:meth:`step` is the reference dispatch the inlined ``run`` loop
        mirrors).
        """
        if count < 0:
            raise SimulationError(f"count must be >= 0, got {count!r}")
        target = _INFINITY if until is None else float(until)
        dispatched = 0
        queue = self._queue
        while dispatched < count and queue and queue[0][0] <= target:
            self.step()
            dispatched += 1
        return dispatched

    def run(self, until: Optional[float] = None) -> None:
        """Run the simulation.

        Parameters
        ----------
        until:
            Stop once the clock would pass this time (the clock is then
            set exactly to ``until``). ``None`` runs until the event
            queue drains.

        This is the engine's hot loop: it performs the same dispatch as
        :meth:`step` in the same order, but inline over local bindings,
        and resumes a sole-waiting process directly — for the dominant
        sleep-on-a-Timeout shape that means one generator ``send`` with
        no intermediate Python frame and no allocation beyond the
        Timeout and its heap entry. :meth:`Process._resume` remains the
        reference implementation; every branch here mirrors it exactly.
        """
        if until is None:
            target = _INFINITY
        else:
            target = float(until)
            if target < self._now:
                raise SimulationError(
                    f"cannot run until {target!r}: already at {self._now!r}"
                )
        queue = self._queue
        pop = heapq.heappop
        while queue and queue[0][0] <= target:
            now, _, event = pop(queue)
            self._now = now
            event._processed = True
            waiter = event._waiter
            if waiter is not None:
                event._waiter = None
                if waiter._target is event and event._ok:
                    # Inlined sole-waiter resume (the sleep fast path).
                    waiter._target = None
                    self._active_process = waiter
                    try:
                        next_event = waiter._generator.send(event._value)
                    except BaseException as error:  # incl. StopIteration
                        waiter._terminate(error)
                    else:
                        if (
                            type(next_event) is Timeout
                            and next_event._waiter is None
                            and next_event._callbacks is None
                            and not next_event._processed
                        ):
                            # Fresh sole-waiter sleep: park directly.
                            next_event._waiter = waiter
                            waiter._target = next_event
                            self._active_process = None
                        else:
                            waiter._after_yield(next_event)
                else:
                    # Stale target (interrupt) or failed event: the full
                    # resume handles detaching and the throw path.
                    waiter._resume(event)
            callbacks = event._callbacks
            if callbacks is not None:
                event._callbacks = None
                for callback in callbacks:
                    callback(event)
        if until is not None:
            self._now = target

    # -- factories --------------------------------------------------------

    def event(self) -> Event:
        """Create a new pending :class:`Event`."""
        return Event(self)

    def process(self, generator: Generator) -> Process:
        """Spawn ``generator`` as a simulation :class:`Process`."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that triggers when all of ``events`` have succeeded."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that triggers when any of ``events`` has succeeded."""
        return AnyOf(self, events)

    def __repr__(self) -> str:
        return f"<Environment now={self._now!r} queued={len(self._queue)}>"
