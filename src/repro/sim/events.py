"""Core event primitives for the discrete-event simulation engine.

The engine follows the classic process-interaction style popularized by
CSIM and simpy: an :class:`Event` is a one-shot occurrence that carries a
value (or an exception) and a list of callbacks; a :class:`Timeout` is an
event scheduled to trigger after a simulated delay; condition events
(:class:`AnyOf`, :class:`AllOf`) compose other events.

Events move through three states:

``pending``
    Created but not yet scheduled to occur.
``triggered``
    Scheduled on the event queue with a definite value; it will be
    processed when the simulation clock reaches its time.
``processed``
    Its callbacks have run.

Hot-path layout
---------------
The dominant event shape in every paper-length run is a process sleeping
on a :class:`Timeout` nothing else waits on. Two layout decisions keep
that shape allocation-free (see ``docs/PERFORMANCE.md``, *Engine
internals*):

* ``callbacks`` lists are **lazy** — ``_callbacks`` stays ``None`` until
  somebody actually appends a callback (the public :attr:`Event.callbacks`
  property allocates on first access).
* the first waiting :class:`~repro.sim.process.Process` is stored in the
  dedicated ``_waiter`` slot instead of a callbacks list; the dispatch
  loop resumes it directly. Because ``_waiter`` is only ever claimed
  while no callback list exists, dispatching the waiter *before* the
  callbacks list preserves exact registration order.
"""

from __future__ import annotations

from heapq import heappush
from typing import Any, Callable, List, Optional

from ..errors import SimulationError

#: Scheduling priorities. Lower values are processed first among events
#: scheduled for the same simulation time.
PRIORITY_URGENT = 0
PRIORITY_NORMAL = 1
PRIORITY_LOW = 2

_PENDING = object()
_INFINITY = float("inf")

#: Heap entries are ``(time, priority << _PRIORITY_SHIFT | eid, event)``:
#: fusing (priority, eid) into one integer keeps the tuple one element
#: shorter and resolves same-time ties with a single comparison, while
#: ordering exactly as the separate (priority, eid) pair would (eids are
#: sequential and never approach 2**48).
_PRIORITY_SHIFT = 48
_NORMAL_KEY = PRIORITY_NORMAL << _PRIORITY_SHIFT


class Event:
    """A one-shot occurrence that processes may wait for.

    Parameters
    ----------
    env:
        The :class:`~repro.sim.engine.Environment` the event belongs to.
    """

    __slots__ = ("env", "_callbacks", "_waiter", "_value", "_ok", "_processed")

    def __init__(self, env):
        self.env = env
        #: Lazily allocated callback list (``None`` until first use).
        self._callbacks: Optional[List[Callable[["Event"], None]]] = None
        #: Sole-waiter fast path: the process parked on this event, when
        #: it registered before any callback list existed.
        self._waiter = None
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self._processed = False

    # -- state ---------------------------------------------------------

    @property
    def callbacks(self) -> Optional[List[Callable[["Event"], None]]]:
        """Callables invoked with this event once it is processed.

        Allocated on first access; ``None`` after processing (appending
        then raises, catching late adds).
        """
        if self._processed:
            return None
        cbs = self._callbacks
        if cbs is None:
            cbs = self._callbacks = []
        return cbs

    @property
    def triggered(self) -> bool:
        """``True`` once the event has been scheduled with a value."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """``True`` once the event's callbacks have been executed."""
        return self._processed

    @property
    def ok(self) -> bool:
        """``True`` if the event succeeded, ``False`` if it failed.

        Raises :class:`SimulationError` when the event is still pending.
        """
        if self._ok is None:
            raise SimulationError(f"{self!r} has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or failure exception), once triggered."""
        if self._value is _PENDING:
            raise SimulationError(f"{self!r} has not been triggered yet")
        return self._value

    # -- triggering ----------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``.

        Waiting processes will see the exception re-raised at their
        ``yield`` statement.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another event.

        Useful as a callback: ``other.callbacks.append(this.trigger)``.
        """
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = event._ok
        self._value = event._value
        self.env.schedule(self)

    def __repr__(self) -> str:
        state = (
            "processed"
            if self._processed
            else "triggered"
            if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers after a fixed simulated ``delay``."""

    __slots__ = ("delay",)

    def __init__(self, env, delay: float, value: Any = None):
        # One comparison rejects negative, NaN (fails both bounds) and
        # infinite delays — a NaN-timed entry would poison heap ordering.
        if not 0.0 <= delay < _INFINITY:
            raise SimulationError(
                f"timeout delay must be finite and >= 0, got {delay!r}"
            )
        self.env = env
        self._callbacks = None
        self._waiter = None
        self._ok = True
        self._value = value
        self._processed = False
        self.delay = delay
        # Inlined Environment.schedule — one sleep per client think time
        # makes this the single most executed constructor in a run.
        env._eid = eid = env._eid + 1
        heappush(env._queue, (env._now + delay, _NORMAL_KEY | eid, self))

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay!r}>"


def timeout_factory(env) -> Callable[..., Timeout]:
    """Build the ``env.timeout`` fast factory for ``env``.

    The returned closure constructs a :class:`Timeout` exactly as
    ``Timeout(env, delay, value)`` would — same validation, same field
    values, same eid sequence, same heap entry — but via
    ``Timeout.__new__`` plus direct slot stores, skipping the
    ``type.__call__``/``__init__`` dispatch that costs a measurable
    slice of the busiest allocation site in any run. Lives here, next to
    :class:`Timeout`, so the two construction paths cannot drift apart
    unnoticed.
    """
    queue = env._queue
    new = Timeout.__new__

    def timeout(delay: float, value: Any = None) -> Timeout:
        """Schedule a :class:`Timeout` firing ``delay`` from now."""
        if not 0.0 <= delay < _INFINITY:
            raise SimulationError(
                f"timeout delay must be finite and >= 0, got {delay!r}"
            )
        event = new(Timeout)
        event.env = env
        event._callbacks = None
        event._waiter = None
        event._ok = True
        event._value = value
        event._processed = False
        event.delay = delay
        env._eid = eid = env._eid + 1
        heappush(queue, (env._now + delay, _NORMAL_KEY | eid, event))
        return event

    return timeout


class ConditionEvent(Event):
    """Base class for events composed of several sub-events."""

    __slots__ = ("events", "_outstanding")

    def __init__(self, env, events):
        super().__init__(env)
        self.events = tuple(events)
        for event in self.events:
            if event.env is not env:
                raise SimulationError("cannot mix events from different environments")
        self._outstanding = len(self.events)
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            if event._processed:
                self._check(event)
            else:
                cbs = event._callbacks
                if cbs is None:
                    cbs = event._callbacks = []
                cbs.append(self._check)

    def _collect(self) -> dict:
        """Values of all triggered sub-events, keyed by event."""
        return {
            event: event._value
            for event in self.events
            if event.triggered and event._ok
        }

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(ConditionEvent):
    """Triggers once *all* sub-events have triggered successfully."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._outstanding -= 1
        if self._outstanding == 0:
            self.succeed(self._collect())


class AnyOf(ConditionEvent):
    """Triggers as soon as *any* sub-event triggers successfully."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self.succeed(self._collect())
