"""Core event primitives for the discrete-event simulation engine.

The engine follows the classic process-interaction style popularized by
CSIM and simpy: an :class:`Event` is a one-shot occurrence that carries a
value (or an exception) and a list of callbacks; a :class:`Timeout` is an
event scheduled to trigger after a simulated delay; condition events
(:class:`AnyOf`, :class:`AllOf`) compose other events.

Events move through three states:

``pending``
    Created but not yet scheduled to occur.
``triggered``
    Scheduled on the event queue with a definite value; it will be
    processed when the simulation clock reaches its time.
``processed``
    Its callbacks have run.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from ..errors import SimulationError

#: Scheduling priorities. Lower values are processed first among events
#: scheduled for the same simulation time.
PRIORITY_URGENT = 0
PRIORITY_NORMAL = 1
PRIORITY_LOW = 2

_PENDING = object()


class Event:
    """A one-shot occurrence that processes may wait for.

    Parameters
    ----------
    env:
        The :class:`~repro.sim.engine.Environment` the event belongs to.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_processed")

    def __init__(self, env):
        self.env = env
        #: Callables invoked with this event once it is processed. ``None``
        #: after processing (appending then raises, catching late adds).
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self._processed = False

    # -- state ---------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """``True`` once the event has been scheduled with a value."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """``True`` once the event's callbacks have been executed."""
        return self._processed

    @property
    def ok(self) -> bool:
        """``True`` if the event succeeded, ``False`` if it failed.

        Raises :class:`SimulationError` when the event is still pending.
        """
        if self._ok is None:
            raise SimulationError(f"{self!r} has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or failure exception), once triggered."""
        if self._value is _PENDING:
            raise SimulationError(f"{self!r} has not been triggered yet")
        return self._value

    # -- triggering ----------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``.

        Waiting processes will see the exception re-raised at their
        ``yield`` statement.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another event.

        Useful as a callback: ``other.callbacks.append(this.trigger)``.
        """
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = event._ok
        self._value = event._value
        self.env.schedule(self)

    def __repr__(self) -> str:
        state = (
            "processed"
            if self._processed
            else "triggered"
            if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers after a fixed simulated ``delay``."""

    __slots__ = ("delay",)

    def __init__(self, env, delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay!r}>"


class ConditionEvent(Event):
    """Base class for events composed of several sub-events."""

    __slots__ = ("events", "_outstanding")

    def __init__(self, env, events):
        super().__init__(env)
        self.events = tuple(events)
        for event in self.events:
            if event.env is not env:
                raise SimulationError("cannot mix events from different environments")
        self._outstanding = len(self.events)
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            if event.processed or (event.triggered and event.callbacks is None):
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _collect(self) -> dict:
        """Values of all triggered sub-events, keyed by event."""
        return {
            event: event._value
            for event in self.events
            if event.triggered and event._ok
        }

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(ConditionEvent):
    """Triggers once *all* sub-events have triggered successfully."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._outstanding -= 1
        if self._outstanding == 0:
            self.succeed(self._collect())


class AnyOf(ConditionEvent):
    """Triggers as soon as *any* sub-event triggers successfully."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self.succeed(self._collect())
