"""The hybrid fluid/event fast-forward engine mode.

:class:`FastForwardEnvironment` is a drop-in :class:`~repro.sim.engine.
Environment` that batch-advances *quiescent* stretches of a run without
pumping every sleep through the generator machinery. The observation it
exploits: between scheduler decision points (monitor windows, estimator
collections, alarms) the web-server model is already fluid, so a client's
think-sleep/page-burst cycle is a pure function of the heap time, the
workload RNG streams and the per-server fluid state — none of which any
*pending* event can change out from under it.

Quiescence criterion
--------------------
A heap entry is quiescent exactly when it is a registered *fluid task*
(see :class:`FluidTask`): a native stepper whose dispatch (a) only
mutates state through the same synchronous calls the reference generator
would make, in the same order, and (b) cannot observe or mutate
scheduler/alarm/DNS decision state asynchronously — every such mutation
in this codebase happens *inside* some dispatch, never between them.
Model code opts a client shape in only when its whole per-wake body can
be mirrored exactly (see :mod:`repro.workload.fluid` for the eligibility
gate); everything else — monitor and estimator processes, condition
events, interrupts — takes the reference dispatch path of
:meth:`~repro.sim.engine.Environment.run`, verbatim.

Equivalence guarantee
---------------------
The fast mode is **bit-identical** to the reference engine: same eid
allocation order, same heap keys, same RNG consumption (stream and draw
order), same float operation order — therefore the same trajectory, the
same checkpoint digests and the same results. The proof obligations are
pinned by the golden-trajectory fixture and the Hypothesis equivalence
harness (``tests/property/test_prop_fastforward_equivalence.py``): any
drift between a fluid task and the generator it mirrors fails those
suites as a trajectory diff.

Fallback
--------
Configurations a fluid task cannot mirror exactly (dynamic domain
remapping, client-side address caching, geographic RTT accounting,
non-standard session distributions) *fall back* to reference
event-stepping inside the same environment: the model simply spawns its
usual generator processes, and each fallback reason is counted in
:attr:`FastForwardEnvironment.fallback_reasons`. The counters are
surfaced through the run's provenance manifest — deliberately **not**
through the digested metrics registry, so checkpoint digests and
``repro report --compare`` stay mode-agnostic.
"""

from __future__ import annotations

import heapq
from typing import Dict, Optional, Type

from ..errors import SimulationError
from .engine import EmptySchedule, Environment
from .events import Timeout


class FluidTask:
    """Base class for native fast-forward steppers (quiescent entries).

    A fluid task sits directly on the environment's heap (third tuple
    element, where the reference engine keeps an
    :class:`~repro.sim.events.Event`) and is dispatched by calling
    :meth:`step` instead of resuming a generator. Subclasses carry the
    determinism contract of this module: :meth:`step` must perform the
    byte-exact work of the generator wake it replaces — same eid
    allocations, same RNG draws, same float operations, in the same
    order — which the golden-trajectory and Hypothesis equivalence
    suites enforce.
    """

    __slots__ = ()

    #: Fluid tasks model endless client loops; they never terminate, so
    #: liveness censuses (checkpoint digests) see the same count the
    #: reference generators report.
    is_alive = True

    @classmethod
    def drain(cls, env, queue, target: float, budget: int = -1) -> None:
        """Dispatch consecutive ``cls`` heap-top entries natively.

        The whole quiescent-window drain lives in this one classmethod
        so the per-wake cost is straight-line loop body, not a function
        call per event. Must process heap-top entries while they are
        instances of ``cls`` with time ``<= target`` (and while
        ``budget`` wakes remain; negative = unlimited), performing for
        each the byte-exact work of the generator wake it replaces and
        swapping the task's next entry in with ``heapreplace`` — built
        with the exact eid/heap-key arithmetic of
        :func:`~repro.sim.events.timeout_factory`. One sift where
        pop-then-push pays two; heap pop order is a pure function of
        the entry keys (totally ordered by the unique eid tiebreak), so
        the internal array-layout difference can never reorder
        dispatches. Returns when the top entry is foreign, late, or the
        budget is spent.
        """
        raise NotImplementedError


class _NoTask:
    """Placeholder task class: matches no heap entry.

    ``type(event) is self._task_class`` must be a single pointer
    comparison on the hot path, so "no tasks registered" is expressed as
    a class no event can be an instance of rather than ``None``.
    """

    __slots__ = ()

    @classmethod
    def drain(cls, env, queue, target, budget=-1):  # pragma: no cover
        """Never called: no heap entry can match the placeholder class."""
        raise AssertionError("placeholder task class is never dispatched")


class FastForwardEnvironment(Environment):
    """An :class:`~repro.sim.engine.Environment` with a fast-forward lane.

    Determinism contract: identical to the base environment, bit for
    bit. :meth:`step` remains the reference single-event semantics
    (tests and checkpoint cuts use it); :meth:`run` performs the same
    dispatch inline. Registered fluid-task entries are stepped natively;
    every other entry takes the reference path unchanged, so an
    environment with no registered tasks *is* the reference engine.
    """

    __slots__ = ("_task_class", "fallback_reasons")

    def __init__(self, initial_time: float = 0.0):
        super().__init__(initial_time)
        #: The registered fluid-task class (pointer-compared on dispatch).
        self._task_class: Type = _NoTask
        #: Counted reasons why model components declined the fast lane
        #: (``reason -> count``). Surfaced via the provenance manifest,
        #: never via the digested metrics registry — digests must be
        #: mode-agnostic.
        self.fallback_reasons: Dict[str, int] = {}

    # -- fast-lane registration -------------------------------------------

    def register_task_class(self, task_class: Type[FluidTask]) -> None:
        """Register the concrete :class:`FluidTask` subclass to dispatch.

        One task class per environment: the dispatch check must stay a
        single pointer comparison. Registering the same class twice is a
        no-op; registering a second class is an error.
        """
        if self._task_class is task_class:
            return
        if self._task_class is not _NoTask:
            raise ValueError(
                f"a fluid task class is already registered "
                f"({self._task_class.__name__}); cannot also register "
                f"{task_class.__name__}"
            )
        self._task_class = task_class

    def count_fallback(self, reason: str) -> None:
        """Record one occurrence of a fast-forward fallback ``reason``."""
        self.fallback_reasons[reason] = self.fallback_reasons.get(reason, 0) + 1

    @property
    def fast_forward_active(self) -> bool:
        """``True`` once a fluid task class has been registered."""
        return self._task_class is not _NoTask

    # -- dispatch ----------------------------------------------------------

    def step(self) -> None:
        """Process the next scheduled entry (reference semantics).

        Identical to :meth:`Environment.step` except that a registered
        fluid-task entry is stepped natively (a budget-1
        :meth:`FluidTask.drain`) — which is, by the :class:`FluidTask`
        contract, the same work the reference generator dispatch would
        have performed.
        """
        queue = self._queue
        if not queue:
            raise EmptySchedule("no scheduled events left")
        item = queue[0]
        event = item[2]
        if type(event) is self._task_class:
            self._now = item[0]
            self._task_class.drain(self, queue, item[0], 1)
            return
        self._now, _, event = heapq.heappop(queue)
        event._processed = True
        waiter = event._waiter
        if waiter is not None:
            event._waiter = None
            waiter._resume(event)
        callbacks = event._callbacks
        if callbacks is not None:
            event._callbacks = None
            for callback in callbacks:
                callback(event)

    def run(self, until: Optional[float] = None) -> None:
        """Run the simulation (see :meth:`Environment.run`).

        The quiescent-window drain: successive fluid-task entries are
        stepped natively with one type check each — no Timeout
        allocation, no generator frame, no waiter bookkeeping — until a
        non-task entry (a scheduler decision point) surfaces, which is
        dispatched through the reference branches below, verbatim from
        :meth:`Environment.run`. Dispatch order, eid allocation and all
        float arithmetic are bit-identical to the reference engine.
        """
        if until is None:
            target = float("inf")
        else:
            target = float(until)
            if target < self._now:
                raise SimulationError(
                    f"cannot run until {target!r}: already at {self._now!r}"
                )
        queue = self._queue
        pop = heapq.heappop
        task_class = self._task_class
        task_drain = task_class.drain
        while queue:
            item = queue[0]
            now = item[0]
            if now > target:
                break
            event = item[2]
            if type(event) is task_class:
                # Hand the heap to the task class until the top entry
                # is foreign or late: the whole quiescent window drains
                # inside one call, with no per-wake function call. The
                # drain loop heapreplaces each task's next wake against
                # its just-dispatched top entry (see FluidTask.drain
                # for the parity argument). env._now is NOT updated per
                # wake — provably nothing inside a fluid wake reads the
                # clock (every callee takes `now` as a parameter), every
                # reference dispatch below still sets it, and the loop
                # exit sets it to `target`.
                task_drain(self, queue, target)
                continue
            now, _, event = pop(queue)
            self._now = now
            # -- reference dispatch (verbatim from Environment.run) -------
            event._processed = True
            waiter = event._waiter
            if waiter is not None:
                event._waiter = None
                if waiter._target is event and event._ok:
                    waiter._target = None
                    self._active_process = waiter
                    try:
                        next_event = waiter._generator.send(event._value)
                    except BaseException as error:  # incl. StopIteration
                        waiter._terminate(error)
                    else:
                        if (
                            type(next_event) is Timeout
                            and next_event._waiter is None
                            and next_event._callbacks is None
                            and not next_event._processed
                        ):
                            next_event._waiter = waiter
                            waiter._target = next_event
                            self._active_process = None
                        else:
                            waiter._after_yield(next_event)
                else:
                    waiter._resume(event)
            callbacks = event._callbacks
            if callbacks is not None:
                event._callbacks = None
                for callback in callbacks:
                    callback(event)
        if until is not None:
            self._now = target

    def __repr__(self) -> str:
        task = (
            self._task_class.__name__ if self.fast_forward_active else None
        )
        return (
            f"<FastForwardEnvironment now={self._now!r} "
            f"queued={len(self._queue)} task={task}>"
        )
