"""Generator-based simulation processes.

A :class:`Process` wraps a Python generator. The generator models a
concurrent activity by ``yield``-ing events; the process suspends until
the yielded event is processed and is then resumed with the event's value
(or, for failed events, with the failure exception raised at the
``yield``). A process is itself an :class:`~repro.sim.events.Event` that
triggers when its generator returns, so processes can wait for each other.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..errors import SimulationError, StopProcess
from .events import PRIORITY_URGENT, Event, _PENDING


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it."""

    @property
    def cause(self):
        """The cause passed to :meth:`Process.interrupt`."""
        return self.args[0]


class _Initialize(Event):
    """Internal event used to start a freshly created process."""

    __slots__ = ()

    def __init__(self, env, process: "Process"):
        super().__init__(env)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        env.schedule(self, priority=PRIORITY_URGENT)


class Process(Event):
    """A running simulation process (see module docstring)."""

    __slots__ = ("_generator", "_target")

    def __init__(self, env, generator: Generator):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        #: The event this process is currently waiting on.
        self._target: Optional[Event] = _Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """``True`` while the underlying generator has not exited."""
        return self._value is _PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event this process is waiting for (``None`` if running)."""
        return self._target

    def interrupt(self, cause=None) -> None:
        """Interrupt the process, raising :class:`Interrupt` inside it.

        The process stops waiting for its current target event and is
        resumed immediately (at the current simulation time). Interrupting
        a dead process is an error.
        """
        if not self.is_alive:
            raise SimulationError(f"{self!r} has terminated and cannot be interrupted")
        if self is self.env.active_process:
            raise SimulationError("a process is not allowed to interrupt itself")
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        # Jump the queue so the interrupt lands before same-time events.
        event.callbacks.append(self._resume)
        self.env.schedule(event, priority=PRIORITY_URGENT)

    # -- internal ---------------------------------------------------------

    def _resume(self, event: Event) -> None:
        """Resume the generator with the triggered ``event``."""
        env = self.env
        env._active_process = self
        # Detach from the old target: if we were interrupted while waiting,
        # the stale target must no longer resume us when it fires.
        if self._target is not None and self._target is not event:
            if self._target.callbacks is not None:
                try:
                    self._target.callbacks.remove(self._resume)
                except ValueError:
                    pass
        self._target = None
        while True:
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    next_event = self._generator.throw(event._value)
            except StopIteration as stop:
                env._active_process = None
                self.succeed(getattr(stop, "value", None))
                return
            except StopProcess as stop:
                env._active_process = None
                self.succeed(stop.value)
                return
            except BaseException as error:
                env._active_process = None
                self.fail(error)
                return
            if not isinstance(next_event, Event):
                env._active_process = None
                error = SimulationError(
                    f"process yielded a non-event: {next_event!r}"
                )
                self._generator.close()
                self.fail(error)
                return
            if next_event.callbacks is not None:
                # Still pending or queued: wait for it.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                env._active_process = None
                return
            # Already processed: feed its value straight back in.
            event = next_event

    def __repr__(self) -> str:
        name = getattr(self._generator, "__name__", str(self._generator))
        return f"<Process {name} at {id(self):#x}>"
