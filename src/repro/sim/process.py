"""Generator-based simulation processes.

A :class:`Process` wraps a Python generator. The generator models a
concurrent activity by ``yield``-ing events; the process suspends until
the yielded event is processed and is then resumed with the event's value
(or, for failed events, with the failure exception raised at the
``yield``). A process is itself an :class:`~repro.sim.events.Event` that
triggers when its generator returns, so processes can wait for each other.

The resume path is the engine's inner loop: for the dominant
sleep-on-a-:class:`~repro.sim.events.Timeout` pattern a process parks
itself in the event's ``_waiter`` slot (no callbacks-list allocation)
and the dispatch loop in :meth:`~repro.sim.engine.Environment.run`
resumes it directly.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..errors import SimulationError, StopProcess
from .events import PRIORITY_URGENT, Event, _PENDING


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it."""

    @property
    def cause(self):
        """The cause passed to :meth:`Process.interrupt`."""
        return self.args[0]


class _Initialize(Event):
    """Internal event used to start a freshly created process."""

    __slots__ = ()

    def __init__(self, env, process: "Process"):
        super().__init__(env)
        self._ok = True
        self._value = None
        self._waiter = process
        env.schedule(self, priority=PRIORITY_URGENT)


class Process(Event):
    """A running simulation process (see module docstring)."""

    __slots__ = ("_generator", "_target")

    def __init__(self, env, generator: Generator):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        #: The event this process is currently waiting on.
        self._target: Optional[Event] = _Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """``True`` while the underlying generator has not exited."""
        return self._value is _PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event this process is waiting for (``None`` if running)."""
        return self._target

    def interrupt(self, cause=None) -> None:
        """Interrupt the process, raising :class:`Interrupt` inside it.

        The process stops waiting for its current target event and is
        resumed immediately (at the current simulation time). Interrupting
        a dead process is an error.
        """
        if not self.is_alive:
            raise SimulationError(f"{self!r} has terminated and cannot be interrupted")
        if self is self.env.active_process:
            raise SimulationError("a process is not allowed to interrupt itself")
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event._waiter = self
        # Jump the queue so the interrupt lands before same-time events.
        self.env.schedule(event, priority=PRIORITY_URGENT)

    # -- internal ---------------------------------------------------------

    def _resume(self, event: Event) -> None:
        """Resume the generator with the triggered ``event``."""
        if self._value is not _PENDING:
            # Already terminated. Only an interrupt can still reach a dead
            # process: it was scheduled while the victim was alive, but the
            # victim handled an earlier interrupt and finished before this
            # one fired. Dropping it matches SimPy — an interrupt for a
            # completed process is moot.
            return
        env = self.env
        env._active_process = self
        # Detach from the old target: if we were interrupted while waiting,
        # the stale target must no longer resume us when it fires — whether
        # we were parked in its waiter slot or on its callbacks list.
        target = self._target
        if target is not None and target is not event:
            if target._waiter is self:
                target._waiter = None
            else:
                callbacks = target._callbacks
                if callbacks is not None:
                    try:
                        callbacks.remove(self._resume)
                    except ValueError:
                        pass
        self._target = None
        while True:
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    next_event = self._generator.throw(event._value)
            except StopIteration as stop:
                env._active_process = None
                self.succeed(getattr(stop, "value", None))
                return
            except StopProcess as stop:
                env._active_process = None
                self.succeed(stop.value)
                return
            except BaseException as error:
                env._active_process = None
                self.fail(error)
                return
            if not isinstance(next_event, Event):
                env._active_process = None
                error = SimulationError(
                    f"process yielded a non-event: {next_event!r}"
                )
                self._generator.close()
                self.fail(error)
                return
            if not next_event._processed:
                # Still pending or queued: wait for it. Claim the waiter
                # slot when no registration exists yet (the common case:
                # a Timeout nothing else waits on) — zero allocations.
                if next_event._waiter is None and next_event._callbacks is None:
                    next_event._waiter = self
                else:
                    callbacks = next_event._callbacks
                    if callbacks is None:
                        callbacks = next_event._callbacks = []
                    callbacks.append(self._resume)
                self._target = next_event
                env._active_process = None
                return
            # Already processed: feed its value straight back in.
            event = next_event

    def _after_yield(self, next_event) -> None:
        """Slow tail of the resume inlined in :meth:`Environment.run`.

        The inlined fast path has already sent into the generator and
        received ``next_event``, but it was not a fresh sole-waiter
        Timeout. Register on it — or, if it is already processed, keep
        pumping the generator exactly as :meth:`_resume` would.
        ``env._active_process`` is still this process on entry.
        """
        env = self.env
        while True:
            if not isinstance(next_event, Event):
                env._active_process = None
                error = SimulationError(
                    f"process yielded a non-event: {next_event!r}"
                )
                self._generator.close()
                self.fail(error)
                return
            if not next_event._processed:
                if next_event._waiter is None and next_event._callbacks is None:
                    next_event._waiter = self
                else:
                    callbacks = next_event._callbacks
                    if callbacks is None:
                        callbacks = next_event._callbacks = []
                    callbacks.append(self._resume)
                self._target = next_event
                env._active_process = None
                return
            event = next_event
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    next_event = self._generator.throw(event._value)
            except StopIteration as stop:
                env._active_process = None
                self.succeed(getattr(stop, "value", None))
                return
            except StopProcess as stop:
                env._active_process = None
                self.succeed(stop.value)
                return
            except BaseException as error:
                env._active_process = None
                self.fail(error)
                return

    def _terminate(self, error: BaseException) -> None:
        """Classify an exception out of ``generator.send`` and finish.

        Counterpart of :meth:`_resume`'s except clauses for the resume
        inlined in :meth:`Environment.run`.
        """
        self.env._active_process = None
        if isinstance(error, StopIteration):
            self.succeed(getattr(error, "value", None))
        elif isinstance(error, StopProcess):
            self.succeed(error.value)
        else:
            self.fail(error)

    def __repr__(self) -> str:
        name = getattr(self._generator, "__name__", str(self._generator))
        return f"<Process {name} at {id(self):#x}>"
