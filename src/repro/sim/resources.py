"""Shared-resource primitives built on the event engine.

The paper's model itself needs no queued resources (servers are modelled
as fluid accumulators), but a general DES substrate without resources
would be crippled for downstream users, and the example applications and
tests use them. Two primitives are provided:

:class:`Resource`
    A counted resource with FIFO queueing, in the style of
    ``simpy.Resource`` — ``request()`` yields an event that triggers when
    a slot is granted, ``release()`` frees it.
:class:`Store`
    An unbounded-or-bounded FIFO buffer of Python objects with blocking
    ``get``/``put``.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from ..errors import SimulationError
from .events import Event


class Request(Event):
    """Pending acquisition of one :class:`Resource` slot."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource
        resource._queue.append(self)
        resource._dispatch()

    def cancel(self) -> None:
        """Withdraw a request that has not been granted yet."""
        if self.triggered:
            raise SimulationError("cannot cancel a granted request; release instead")
        self.resource._queue.remove(self)

    # Context-manager support: ``with resource.request() as req: yield req``
    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        if self.triggered:
            self.resource.release(self)
        else:
            self.cancel()


class Resource:
    """A resource with ``capacity`` identical slots and a FIFO queue."""

    __slots__ = ("env", "capacity", "_in_use", "_queue")

    def __init__(self, env, capacity: int = 1):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity!r}")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._queue: Deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._queue)

    def request(self) -> Request:
        """Ask for a slot; the returned event triggers when granted."""
        return Request(self)

    def release(self, request: Request) -> None:
        """Return the slot held by ``request`` to the pool."""
        if request.resource is not self:
            raise SimulationError("request was issued against a different resource")
        if not request.triggered:
            raise SimulationError("cannot release an ungranted request")
        self._in_use -= 1
        self._dispatch()

    def _dispatch(self) -> None:
        while self._queue and self._in_use < self.capacity:
            request = self._queue.popleft()
            self._in_use += 1
            request.succeed(self)

    def __repr__(self) -> str:
        return (
            f"<Resource capacity={self.capacity} in_use={self._in_use} "
            f"queued={len(self._queue)}>"
        )


class StorePut(Event):
    """Pending insertion of ``item`` into a :class:`Store`."""

    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any):
        super().__init__(store.env)
        self.item = item
        store._putters.append(self)
        store._dispatch()


class StoreGet(Event):
    """Pending removal of the oldest item from a :class:`Store`."""

    __slots__ = ()

    def __init__(self, store: "Store"):
        super().__init__(store.env)
        store._getters.append(self)
        store._dispatch()


class Store:
    """A FIFO object buffer with optional bounded capacity."""

    __slots__ = ("env", "capacity", "items", "_putters", "_getters")

    def __init__(self, env, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity!r}")
        self.env = env
        self.capacity = capacity if capacity is not None else float("inf")
        self.items: Deque[Any] = deque()
        self._putters: Deque[StorePut] = deque()
        self._getters: Deque[StoreGet] = deque()

    def put(self, item: Any) -> StorePut:
        """Insert ``item``; the event triggers once there is room."""
        return StorePut(self, item)

    def get(self) -> StoreGet:
        """Remove the oldest item; the event triggers with that item."""
        return StoreGet(self)

    def _dispatch(self) -> None:
        items = self.items
        putters = self._putters
        getters = self._getters
        capacity = self.capacity
        progressed = True
        while progressed:
            progressed = False
            if putters and len(items) < capacity:
                put = putters.popleft()
                items.append(put.item)
                put.succeed()
                progressed = True
            if getters and items:
                get = getters.popleft()
                get.succeed(items.popleft())
                progressed = True

    def __repr__(self) -> str:
        return f"<Store items={len(self.items)} capacity={self.capacity}>"
