"""Deterministic named random-number streams.

Simulation quality depends on *independent* random streams: think times,
session lengths, and scheduler coin flips must not share a generator, or
changing one model component perturbs every other draw (the classic
common-random-numbers pitfall in reverse). :class:`RandomStreams` derives
one :class:`random.Random` per name from a master seed using SHA-256, so

* the same (seed, name) pair always yields the same stream, on any
  platform and Python version;
* distinct names yield statistically independent streams;
* adding a new stream never changes the draws of existing ones.
"""

from __future__ import annotations

import hashlib
import random
from typing import Any, Dict

from ..errors import CheckpointError


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``master_seed`` and ``name``."""
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def encode_random_state(state) -> Dict[str, Any]:
    """A JSON-safe encoding of ``random.Random.getstate()``.

    CPython's Mersenne Twister state is ``(version, (624 words + index),
    gauss_next)`` and has used version 3 with platform-independent word
    values since Python 2.6, so the encoding round-trips across
    interpreters and Python versions (a property the RNG test suite
    pins). Unknown future versions are rejected rather than guessed at.
    """
    version, internal, gauss_next = state
    if version != 3:
        raise CheckpointError(
            f"unsupported random state version {version!r} (expected 3)"
        )
    return {
        "version": version,
        "words": list(internal),
        "gauss_next": gauss_next,
    }


def decode_random_state(data: Dict[str, Any]):
    """Rebuild a ``random.Random.setstate()`` tuple from the encoding."""
    try:
        version = data["version"]
        words = tuple(data["words"])
        gauss_next = data["gauss_next"]
    except (TypeError, KeyError) as error:
        raise CheckpointError(f"malformed random state: {data!r}") from error
    if version != 3:
        raise CheckpointError(
            f"unsupported random state version {version!r} (expected 3)"
        )
    return (version, words, gauss_next)


class RandomStreams:
    """A factory of named, independent, reproducible random streams."""

    def __init__(self, master_seed: int = 0):
        self.master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(derive_seed(self.master_seed, name))
            self._streams[name] = stream
        return stream

    def spawn(self, name: str) -> "RandomStreams":
        """Return a child factory whose streams are independent of ours."""
        return RandomStreams(derive_seed(self.master_seed, f"spawn:{name}"))

    def state_dict(self) -> Dict[str, object]:
        """JSON-safe snapshot of every materialized stream's state.

        Captures the master seed plus, per named stream, the full
        Mersenne Twister state — enough to both fingerprint a run's RNG
        position (checkpoint digests) and to :meth:`restore_state` it
        exactly. Streams never drawn from are included once created;
        streams not yet created are absent (creating them later from the
        restored factory derives the same seed as always).
        """
        return {
            "master_seed": self.master_seed,
            "streams": {
                name: encode_random_state(stream.getstate())
                for name, stream in sorted(self._streams.items())
            },
        }

    def restore_state(self, data: Dict[str, object]) -> None:
        """Restore the exact state captured by :meth:`state_dict`.

        Streams present in ``data`` are (re)created and rewound to the
        recorded position; materialized streams missing from ``data``
        are discarded (they did not exist at capture time, and a later
        ``stream(name)`` call recreates them from the derived seed —
        spawn order never matters).
        """
        master_seed = data.get("master_seed")
        if master_seed != self.master_seed:
            raise CheckpointError(
                f"state was captured under master seed {master_seed!r}, "
                f"cannot restore into a factory seeded {self.master_seed!r}"
            )
        streams: Dict[str, random.Random] = {}
        for name, encoded in data["streams"].items():
            stream = random.Random()
            stream.setstate(decode_random_state(encoded))
            streams[name] = stream
        self._streams = streams

    @classmethod
    def from_state_dict(cls, data: Dict[str, object]) -> "RandomStreams":
        """A new factory rewound to a :meth:`state_dict` snapshot."""
        streams = cls(int(data["master_seed"]))
        streams.restore_state(data)
        return streams

    def __repr__(self) -> str:
        return (
            f"<RandomStreams seed={self.master_seed} "
            f"streams={sorted(self._streams)}>"
        )
