"""Deterministic named random-number streams.

Simulation quality depends on *independent* random streams: think times,
session lengths, and scheduler coin flips must not share a generator, or
changing one model component perturbs every other draw (the classic
common-random-numbers pitfall in reverse). :class:`RandomStreams` derives
one :class:`random.Random` per name from a master seed using SHA-256, so

* the same (seed, name) pair always yields the same stream, on any
  platform and Python version;
* distinct names yield statistically independent streams;
* adding a new stream never changes the draws of existing ones.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``master_seed`` and ``name``."""
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStreams:
    """A factory of named, independent, reproducible random streams."""

    def __init__(self, master_seed: int = 0):
        self.master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(derive_seed(self.master_seed, name))
            self._streams[name] = stream
        return stream

    def spawn(self, name: str) -> "RandomStreams":
        """Return a child factory whose streams are independent of ours."""
        return RandomStreams(derive_seed(self.master_seed, f"spawn:{name}"))

    def __repr__(self) -> str:
        return (
            f"<RandomStreams seed={self.master_seed} "
            f"streams={sorted(self._streams)}>"
        )
