"""Statistics collection for simulation outputs.

Provides the accumulators the experiment harness relies on:

* :class:`RunningStats` — numerically stable (Welford) moments of a
  sample stream.
* :class:`TimeWeightedStats` — time-integrated average of a piecewise
  constant signal (e.g. queue length, utilization between samples).
* :class:`EmpiricalCdf` — the paper's headline metric is the cumulative
  frequency of the per-interval maximum server utilization; this class
  turns a sample series into that curve.
* :func:`batch_means_ci` — confidence intervals for steady-state series
  with autocorrelation, via the classic batch-means method (the paper
  reports 95% intervals within 4% of the mean).
"""

from __future__ import annotations

import bisect
import math
from typing import Iterable, List, Optional, Sequence, Tuple

from ..errors import SimulationError

try:  # scipy gives exact Student-t quantiles; fall back to normal z.
    from scipy.stats import t as _student_t
except ImportError:  # pragma: no cover - scipy is installed in CI
    _student_t = None


class RunningStats:
    """Streaming mean/variance/extremes via Welford's algorithm."""

    __slots__ = ("count", "_mean", "_m2", "minimum", "maximum")

    def __init__(self):
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        """Fold one observation into the accumulator."""
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def extend(self, values: Iterable[float]) -> None:
        """Fold many observations into the accumulator."""
        for value in values:
            self.add(value)

    @property
    def mean(self) -> float:
        """Running mean (requires at least one observation)."""
        if self.count == 0:
            raise SimulationError("no observations recorded")
        return self._mean

    @property
    def variance(self) -> float:
        """Unbiased sample variance (requires >= 2 observations)."""
        if self.count < 2:
            raise SimulationError("variance needs at least two observations")
        return self._m2 / (self.count - 1)

    @property
    def stddev(self) -> float:
        """Square root of :attr:`variance`."""
        return math.sqrt(self.variance)

    def snapshot_state(self) -> dict:
        """The full accumulator as JSON-safe data (for checkpoints).

        The infinite pre-first-observation extremes are mapped to
        ``None``: checkpoint digests reject non-finite floats, and with
        ``count == 0`` the extremes carry no information anyway.
        """
        empty = self.count == 0
        return {
            "count": self.count,
            "mean": self._mean,
            "m2": self._m2,
            "minimum": None if empty else self.minimum,
            "maximum": None if empty else self.maximum,
        }

    def __repr__(self) -> str:
        if self.count == 0:
            return "<RunningStats empty>"
        return f"<RunningStats n={self.count} mean={self._mean:.6g}>"


class TimeWeightedStats:
    """Time-average of a piecewise-constant signal.

    Call :meth:`update` whenever the signal changes; the previous value is
    weighted by the elapsed simulated time.
    """

    __slots__ = ("_last_time", "_last_value", "_area", "_start", "maximum")

    def __init__(self, initial_time: float = 0.0, initial_value: float = 0.0):
        self._start = float(initial_time)
        self._last_time = float(initial_time)
        self._last_value = float(initial_value)
        self._area = 0.0
        self.maximum = float(initial_value)

    def update(self, now: float, value: float) -> None:
        """Record that the signal takes ``value`` from time ``now`` on."""
        if now < self._last_time:
            raise SimulationError(
                f"time went backwards: {now!r} < {self._last_time!r}"
            )
        self._area += self._last_value * (now - self._last_time)
        self._last_time = now
        self._last_value = float(value)
        if value > self.maximum:
            self.maximum = float(value)

    def mean(self, now: float) -> float:
        """Time-average of the signal over ``[start, now]``."""
        if now < self._last_time:
            raise SimulationError(
                f"time went backwards: {now!r} < {self._last_time!r}"
            )
        elapsed = now - self._start
        if elapsed <= 0:
            return self._last_value
        area = self._area + self._last_value * (now - self._last_time)
        return area / elapsed


class EmpiricalCdf:
    """Empirical cumulative distribution of a finite sample."""

    def __init__(self, samples: Sequence[float]):
        if not samples:
            raise SimulationError("cannot build a CDF from zero samples")
        self._sorted: List[float] = sorted(samples)
        self._n = len(self._sorted)

    @property
    def sample_count(self) -> int:
        """Number of samples backing the CDF."""
        return self._n

    def probability_below(self, threshold: float) -> float:
        """Fraction of samples strictly below ``threshold``.

        For the paper's metric this is ``Prob(MaxUtilization < x)``.
        """
        return bisect.bisect_left(self._sorted, threshold) / self._n

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (0 <= q <= 1) of the sample."""
        if not 0.0 <= q <= 1.0:
            raise SimulationError(f"quantile must be in [0, 1], got {q!r}")
        if q == 1.0:
            return self._sorted[-1]
        return self._sorted[int(q * self._n)]

    def evaluate(self, grid: Sequence[float]) -> List[Tuple[float, float]]:
        """CDF values at each point of ``grid`` as ``(x, P(X < x))``."""
        return [(x, self.probability_below(x)) for x in grid]

    def __repr__(self) -> str:
        return (
            f"<EmpiricalCdf n={self._n} min={self._sorted[0]:.4g} "
            f"max={self._sorted[-1]:.4g}>"
        )


def _t_quantile(confidence: float, dof: int) -> float:
    """Two-sided Student-t critical value for ``confidence`` level."""
    if _student_t is not None:
        return float(_student_t.ppf(0.5 + confidence / 2.0, dof))
    # Normal approximation for the (untested) no-scipy fallback.
    return {0.90: 1.645, 0.95: 1.960, 0.99: 2.576}.get(round(confidence, 2), 1.960)


def batch_means_ci(
    samples: Sequence[float],
    batches: int = 20,
    confidence: float = 0.95,
) -> Tuple[float, float]:
    """Mean and confidence-interval half-width via batch means.

    The sample series is split into ``batches`` contiguous batches; the
    batch means are (approximately) independent, so a Student-t interval
    over them is valid even when consecutive samples are autocorrelated —
    exactly the situation for per-interval utilization samples from one
    long run.

    Returns
    -------
    (mean, half_width):
        Point estimate and 95% (by default) half-width. ``half_width`` is
        0 when the series is too short to batch.
    """
    n = len(samples)
    if n == 0:
        raise SimulationError("cannot form a confidence interval from no samples")
    mean = sum(samples) / n
    if n < 2 * batches:
        return mean, 0.0
    batch_size = n // batches
    usable = batch_size * batches
    means = [
        sum(samples[i : i + batch_size]) / batch_size
        for i in range(0, usable, batch_size)
    ]
    grand = sum(means) / batches
    variance = sum((m - grand) ** 2 for m in means) / (batches - 1)
    half = _t_quantile(confidence, batches - 1) * math.sqrt(variance / batches)
    return mean, half


def relative_ci_width(samples: Sequence[float], **kwargs) -> Optional[float]:
    """Half-width of the batch-means CI relative to the mean.

    Returns ``None`` when the mean is zero (the ratio is undefined).
    """
    mean, half = batch_means_ci(samples, **kwargs)
    if mean == 0:
        return None
    return half / abs(mean)
