"""Lightweight event tracing for simulations.

A :class:`Tracer` collects ``(time, category, payload)`` records. Model
components call :meth:`Tracer.record` at interesting moments (DNS
resolutions, alarms, cache refreshes); analysis code filters by category
afterwards. Tracing is off by default — a :class:`NullTracer` swallows
records with near-zero overhead — so the hot path stays fast for the
full-length paper runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List

#: The category catalogue of the built-in instrumentation (see
#: ``docs/OBSERVABILITY.md`` for each category's payload schema):
#:
#: ``session``
#:     One record per client session start (client, domain, server,
#:     pages, whether the resolution reached the authoritative DNS).
#: ``dns``
#:     One record per authoritative DNS decision (policy, domain, chosen
#:     server, recommended TTL, domain hidden-load weight).
#: ``ns``
#:     One record per local-name-server resolution (domain, cache
#:     hit/miss, effective TTL, whether the NS overrode the
#:     recommendation).
#: ``alarm``
#:     One record per alarm-state transition (server, alarmed flag, the
#:     utilization that crossed the threshold).
#: ``util``
#:     One record per utilization window (the per-server utilization
#:     vector, its max and argmax).
#: ``sched``
#:     One record per change of the scheduler's eligible-server set
#:     (server, excluded flag, resulting eligible set).
TRACE_CATEGORIES = ("session", "dns", "ns", "alarm", "util", "sched")


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence."""

    time: float
    category: str
    payload: Any = None


class NullTracer:
    """A tracer that drops every record (the default)."""

    enabled = False

    def record(self, time: float, category: str, payload: Any = None) -> None:
        """Discard the record."""

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(())

    def __len__(self) -> int:
        return 0


class Tracer(NullTracer):
    """A tracer that retains records, optionally filtered by category."""

    enabled = True

    def __init__(self, categories=None):
        #: Categories to keep; ``None`` keeps everything.
        self.categories = set(categories) if categories is not None else None
        self.records: List[TraceRecord] = []

    def record(self, time: float, category: str, payload: Any = None) -> None:
        """Retain the record (if its category is selected)."""
        if self.categories is None or category in self.categories:
            self.records.append(TraceRecord(time, category, payload))

    def by_category(self) -> Dict[str, List[TraceRecord]]:
        """Records grouped by category."""
        grouped: Dict[str, List[TraceRecord]] = {}
        for record in self.records:
            grouped.setdefault(record.category, []).append(record)
        return grouped

    def category_counts(self) -> Dict[str, int]:
        """Record counts per category, name-sorted (the run fingerprint)."""
        counts: Dict[str, int] = {}
        for record in self.records:
            counts[record.category] = counts.get(record.category, 0) + 1
        return dict(sorted(counts.items()))

    def filter(self, category: str) -> List[TraceRecord]:
        """All records with the given ``category``, in time order."""
        return [record for record in self.records if record.category == category]

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)
