"""Web-server substrate: fluid servers, clusters, monitoring, alarms."""

from .cluster import (
    DEFAULT_TOTAL_CAPACITY,
    HETEROGENEITY_LEVELS,
    ServerCluster,
)
from .monitor import AlarmProtocol, UtilizationMonitor
from .queueing import QueueingWebServer
from .requests import PageRequest, SessionRecord
from .server import WebServer

__all__ = [
    "AlarmProtocol",
    "DEFAULT_TOTAL_CAPACITY",
    "HETEROGENEITY_LEVELS",
    "PageRequest",
    "QueueingWebServer",
    "ServerCluster",
    "SessionRecord",
    "UtilizationMonitor",
    "WebServer",
]
