"""Server clusters and the paper's heterogeneity presets (Table 2).

A cluster is a set of web servers numbered in *decreasing* processing
capacity (``S_1`` the most powerful), characterized by relative capacities
``alpha_i = C_i / C_1`` and the *processor power ratio*
``rho = C_1 / C_N`` (from Menasce et al. [7]), which the deterministic
TTL/S policies use. Table 2 of the paper fixes four heterogeneity levels
for a 7-server site; total capacity is held at 500 hits/s across levels so
results are comparable.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..errors import ConfigurationError
from .server import WebServer

#: Table 2 — relative server capacities per heterogeneity level
#: (maximum difference among relative capacities, in percent).
HETEROGENEITY_LEVELS: Dict[int, List[float]] = {
    0: [1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0],
    20: [1.0, 1.0, 1.0, 0.8, 0.8, 0.8, 0.8],
    35: [1.0, 1.0, 0.8, 0.8, 0.65, 0.65, 0.65],
    50: [1.0, 1.0, 0.8, 0.8, 0.5, 0.5, 0.5],
    65: [1.0, 1.0, 0.8, 0.8, 0.35, 0.35, 0.35],
}

#: Table 1 — total site capacity in hits per second.
DEFAULT_TOTAL_CAPACITY = 500.0


class ServerCluster:
    """A heterogeneous multi-server web site.

    Parameters
    ----------
    relative_capacities:
        ``alpha_i`` values in non-increasing order with ``alpha_1 = 1``.
    total_capacity:
        Sum of absolute capacities in hits/s (the paper keeps this at 500
        across heterogeneity levels for fair comparison).
    """

    def __init__(
        self,
        relative_capacities: Sequence[float],
        total_capacity: float = DEFAULT_TOTAL_CAPACITY,
    ):
        alphas = [float(a) for a in relative_capacities]
        if not alphas:
            raise ConfigurationError("a cluster needs at least one server")
        if abs(alphas[0] - 1.0) > 1e-12:
            raise ConfigurationError(
                f"alpha_1 must be 1 (most powerful server first), got {alphas[0]!r}"
            )
        if any(a <= 0 for a in alphas):
            raise ConfigurationError("relative capacities must be positive")
        if any(alphas[i] < alphas[i + 1] for i in range(len(alphas) - 1)):
            raise ConfigurationError(
                "servers must be numbered in non-increasing capacity order"
            )
        if total_capacity <= 0:
            raise ConfigurationError(
                f"total capacity must be > 0, got {total_capacity!r}"
            )
        self.relative_capacities = alphas
        self.total_capacity = float(total_capacity)
        scale = self.total_capacity / sum(alphas)
        self.servers: List[WebServer] = [
            WebServer(server_id=i, capacity=alpha * scale)
            for i, alpha in enumerate(alphas)
        ]

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_heterogeneity(
        cls,
        level: int,
        total_capacity: float = DEFAULT_TOTAL_CAPACITY,
    ) -> "ServerCluster":
        """Build the Table 2 cluster for a heterogeneity ``level`` (%)."""
        try:
            alphas = HETEROGENEITY_LEVELS[level]
        except KeyError:
            known = ", ".join(str(k) for k in sorted(HETEROGENEITY_LEVELS))
            raise ConfigurationError(
                f"unknown heterogeneity level {level!r}; known levels: {known}"
            ) from None
        return cls(alphas, total_capacity)

    @classmethod
    def homogeneous(
        cls,
        server_count: int,
        total_capacity: float = DEFAULT_TOTAL_CAPACITY,
    ) -> "ServerCluster":
        """Build a homogeneous cluster of ``server_count`` servers."""
        if server_count < 1:
            raise ConfigurationError(
                f"server_count must be >= 1, got {server_count!r}"
            )
        return cls([1.0] * server_count, total_capacity)

    # -- derived properties --------------------------------------------------

    @property
    def server_count(self) -> int:
        return len(self.servers)

    @property
    def capacities(self) -> List[float]:
        """Absolute capacities ``C_i`` in hits per second."""
        return [server.capacity for server in self.servers]

    @property
    def power_ratio(self) -> float:
        """``rho = C_1 / C_N``, the degree of heterogeneity (>= 1)."""
        return self.relative_capacities[0] / self.relative_capacities[-1]

    @property
    def heterogeneity_percent(self) -> float:
        """Maximum difference among relative capacities, in percent."""
        return 100.0 * (
            self.relative_capacities[0] - self.relative_capacities[-1]
        )

    def __iter__(self):
        return iter(self.servers)

    def __len__(self) -> int:
        return len(self.servers)

    def __getitem__(self, index: int) -> WebServer:
        return self.servers[index]

    def __repr__(self) -> str:
        return (
            f"<ServerCluster n={self.server_count} "
            f"heterogeneity={self.heterogeneity_percent:.0f}% "
            f"total={self.total_capacity:.4g} hits/s>"
        )
