"""Utilization monitoring and the asynchronous alarm feedback protocol.

Paper, Section 2: "Each server periodically calculates its utilization
and checks whether it has exceeded a given alarm threshold theta. When
this occurs, the server sends an alarm signal to the DNS, while a normal
signal is sent when its utilization level returns below the threshold."

:class:`UtilizationMonitor` is the simulation process doing exactly that:
every ``interval`` seconds it closes each server's measurement window,
feeds the per-server utilizations to an :class:`AlarmProtocol` (which
pushes alarm/normal transitions into the scheduler state), and hands the
*maximum* utilization — the paper's performance metric — to a sample sink.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from ..errors import ConfigurationError
from ..sim.tracing import NullTracer
from .server import WebServer

#: Called with (now, server_id, alarmed) on each alarm state transition.
AlarmListener = Callable[[float, int, bool], None]


class AlarmProtocol:
    """Tracks per-server alarm state against a utilization threshold.

    Optionally observable: a ``tracer`` receives one ``"alarm"`` record
    per state transition (the paper's alarm/normal signals), and a
    ``metrics`` registry receives pull callbacks for the signal counters.
    """

    def __init__(
        self,
        server_count: int,
        threshold: float,
        listener: Optional[AlarmListener] = None,
        tracer=None,
        metrics=None,
    ):
        if not 0.0 < threshold <= 1.0:
            raise ConfigurationError(
                f"alarm threshold must be in (0, 1], got {threshold!r}"
            )
        self.threshold = float(threshold)
        self.listener = listener
        self.tracer = tracer if tracer is not None else NullTracer()
        self._alarmed = [False] * server_count
        #: Total alarm signals sent (transitions into the alarmed state).
        self.alarm_signals = 0
        #: Total normal signals sent (transitions out of the alarmed state).
        self.normal_signals = 0
        self._active_series = None
        if metrics is not None:
            metrics.register("alarm.signals", lambda: self.alarm_signals)
            metrics.register(
                "alarm.normal_signals", lambda: self.normal_signals
            )
            metrics.register(
                "alarm.currently_alarmed", lambda: sum(self._alarmed)
            )
            # Timeline of the alarmed-server count, one point per
            # transition — the paper's alarm/normal signal stream as a
            # bounded series.
            self._active_series = metrics.timeseries("alarm.active")

    @property
    def alarmed_servers(self) -> List[int]:
        """Indices of servers currently above the threshold."""
        return [i for i, alarmed in enumerate(self._alarmed) if alarmed]

    def is_alarmed(self, server_id: int) -> bool:
        return self._alarmed[server_id]

    def observe(self, now: float, server_id: int, utilization: float) -> None:
        """Process one periodic utilization report from a server."""
        alarmed = utilization > self.threshold
        if alarmed == self._alarmed[server_id]:
            return
        self._alarmed[server_id] = alarmed
        if alarmed:
            self.alarm_signals += 1
        else:
            self.normal_signals += 1
        if self._active_series is not None:
            self._active_series.record(now, sum(self._alarmed))
        if self.tracer.enabled:
            self.tracer.record(
                now,
                "alarm",
                {
                    "server": server_id,
                    "alarmed": alarmed,
                    "utilization": utilization,
                },
            )
        if self.listener is not None:
            self.listener(now, server_id, alarmed)

    def snapshot_state(self) -> dict:
        """Alarm flags and signal counters (for checkpoints)."""
        return {
            "alarmed": list(self._alarmed),
            "alarm_signals": self.alarm_signals,
            "normal_signals": self.normal_signals,
        }


class UtilizationMonitor:
    """Periodic sampling process over a set of servers.

    Parameters
    ----------
    env:
        Simulation environment; the monitor spawns its own process.
    servers:
        The cluster's servers.
    interval:
        Sampling period in seconds (Table 1: 8 s).
    alarm_protocol:
        Receiver of per-server utilization reports (may be ``None`` for
        pure measurement runs).
    sample_sink:
        Called with ``(now, utilizations)`` after every interval; the
        experiment layer uses it to collect max-utilization samples.
    tracer:
        Optional tracer; emits one ``"util"`` record per closed window
        (the utilization vector, its max and argmax).
    metrics:
        Optional :class:`~repro.obs.MetricsRegistry`; the monitor
        registers its sample counter and feeds a time-weighted histogram
        of the per-window maximum utilization (``util.max_utilization``).
        Both cost one update per window — nothing on the per-request
        hot path.
    """

    def __init__(
        self,
        env,
        servers: Sequence[WebServer],
        interval: float,
        alarm_protocol: Optional[AlarmProtocol] = None,
        sample_sink: Optional[Callable[[float, List[float]], None]] = None,
        tracer=None,
        metrics=None,
    ):
        if interval <= 0:
            raise ConfigurationError(f"interval must be > 0, got {interval!r}")
        self.env = env
        self.servers = list(servers)
        self.interval = float(interval)
        self.alarm_protocol = alarm_protocol
        self.sample_sink = sample_sink
        self.tracer = tracer if tracer is not None else NullTracer()
        self._max_histogram = None
        self._max_series = None
        self._server_series = None
        if metrics is not None:
            metrics.register("util.windows", lambda: self.samples_taken)
            self._max_histogram = metrics.histogram("util.max_utilization")
            # Bounded timelines: the max-utilization signal (the paper's
            # metric over time) plus one series per server for the
            # drill-down views. One record per closed window each.
            self._max_series = metrics.timeseries("util.max")
            self._server_series = [
                metrics.timeseries(f"util.server.{server_id}")
                for server_id in range(len(self.servers))
            ]
        self.samples_taken = 0
        self.process = env.process(self._run())

    def snapshot_state(self) -> dict:
        """Window count (the monitor's only mutable state)."""
        return {"samples_taken": self.samples_taken}

    def _run(self):
        # One wakeup per window for the whole run: bind the
        # loop-invariant lookups (timeout factory, interval, receivers)
        # to locals once instead of re-resolving them every interval.
        env = self.env
        timeout = env.timeout
        interval = self.interval
        servers = self.servers
        tracer = self.tracer
        tracing = tracer.enabled
        alarm_protocol = self.alarm_protocol
        observe = alarm_protocol.observe if alarm_protocol is not None else None
        sample_sink = self.sample_sink
        max_histogram = self._max_histogram
        max_series = self._max_series
        server_series = self._server_series
        while True:
            yield timeout(interval)
            now = env.now
            utilizations = [server.end_window(now) for server in servers]
            self.samples_taken += 1
            peak = max(utilizations)
            if max_histogram is not None:
                max_histogram.observe(now, peak)
            if max_series is not None:
                max_series.record(now, peak)
                for series, utilization in zip(server_series, utilizations):
                    series.record(now, utilization)
            if tracing:
                tracer.record(
                    now,
                    "util",
                    {
                        "utilizations": list(utilizations),
                        "max": peak,
                        "argmax": utilizations.index(peak),
                    },
                )
            if observe is not None:
                for server_id, utilization in enumerate(utilizations):
                    observe(now, server_id, utilization)
            if sample_sink is not None:
                sample_sink(now, utilizations)
