"""An event-driven FIFO server — cross-validation of the fluid model.

:class:`~repro.web.server.WebServer` computes busy time analytically
(fluid backlog drained at unit rate). This module implements the same
single-server FIFO discipline the *expensive* way — a worker process
pulling page bursts from a queue and sleeping through each service time
— so the two implementations can be checked against each other on
identical arrival sequences (``tests/integration/test_model_cross_validation.py``).
For a work-conserving FIFO server both formulations are mathematically
identical; agreement here validates both the fluid arithmetic and the
engine's process semantics. The event-driven server is ~an order of
magnitude slower and is not used by the experiment harness.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..sim.resources import Store


class QueueingWebServer:
    """Process-based FIFO web server (see module docstring).

    Parameters
    ----------
    env:
        Simulation environment (a worker process is spawned).
    server_id, capacity:
        As for :class:`~repro.web.server.WebServer`.
    """

    def __init__(self, env, server_id: int, capacity: float):
        if capacity <= 0:
            raise ConfigurationError(f"capacity must be > 0, got {capacity!r}")
        self.env = env
        self.server_id = server_id
        self.capacity = float(capacity)
        self._jobs = Store(env)
        self.total_hits = 0
        self.total_pages = 0
        self.completed_pages = 0
        #: Accumulated busy seconds since t=0.
        self.busy_time = 0.0
        #: Sum of page sojourn times (wait + service).
        self.total_sojourn = 0.0
        self.process = env.process(self._worker())

    def offer(self, now: float, hits: int, domain_id: int) -> None:
        """Accept a page burst (mirrors the fluid server's signature).

        ``now`` must equal ``env.now`` — the argument exists only for
        interface parity with :class:`~repro.web.server.WebServer`.
        """
        if hits <= 0:
            raise ConfigurationError(f"a page burst needs >= 1 hit, got {hits!r}")
        self.total_hits += hits
        self.total_pages += 1
        self._jobs.put((self.env.now, hits))

    @property
    def queue_length(self) -> int:
        """Jobs waiting (not counting the one in service)."""
        return len(self._jobs.items)

    def utilization(self, now: float) -> float:
        """Busy fraction of ``[0, now]`` (single all-time window)."""
        if now <= 0:
            return 0.0
        return self.busy_time / now

    def _worker(self):
        # Two yields per page: hoist the per-iteration attribute chains
        # (timeout factory, queue get, capacity) to locals.
        env = self.env
        timeout = env.timeout
        get = self._jobs.get
        capacity = self.capacity
        while True:
            arrived_at, hits = yield get()
            service = hits / capacity
            yield timeout(service)
            self.busy_time += service
            self.completed_pages += 1
            self.total_sojourn += env.now - arrived_at
