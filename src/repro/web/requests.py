"""Value objects describing client traffic units.

The simulation's hot path passes plain integers for speed; these
dataclasses are the documented, user-facing representation used by traces,
tests, and examples.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError


@dataclass(frozen=True)
class PageRequest:
    """One page request: a burst of hits for an HTML page and its objects.

    Attributes
    ----------
    domain_id:
        Source client domain.
    client_id:
        Issuing client (unique across the population).
    server_id:
        Web server the page was routed to by the cached mapping.
    hits:
        Number of hits in the burst (paper: uniform on {5..15}).
    issued_at:
        Simulation time of the burst.
    """

    domain_id: int
    client_id: int
    server_id: int
    hits: int
    issued_at: float

    def __post_init__(self):
        if self.hits < 1:
            raise ConfigurationError(f"a page has >= 1 hit, got {self.hits!r}")


@dataclass(frozen=True)
class SessionRecord:
    """Summary of one completed client session (for traces/analysis)."""

    domain_id: int
    client_id: int
    server_id: int
    pages: int
    hits: int
    started_at: float
    ended_at: float
    resolved_by_dns: bool

    @property
    def duration(self) -> float:
        return self.ended_at - self.started_at
