"""The fluid web-server model.

The paper abstracts each web server to a capacity ``C_i`` expressed in
hits per second and evaluates policies by windowed server *utilization*.
We realize that abstraction with a work-conserving fluid queue:

* a page burst of ``h`` hits arriving at time ``t`` adds ``h / C_i``
  seconds of backlog;
* backlog drains at rate 1 (the server works whenever backlog > 0);
* the utilization of a measurement window is the fraction of the window
  the server was busy.

This gives O(1) work per page burst — essential for the paper's 5-hour
runs with hundreds of thousands of pages — while preserving exactly the
quantity the paper measures. The server also keeps per-domain hit
counters that feed the hidden-load estimator, mirroring the paper's
"servers keep track of the number of incoming requests from each domain".
"""

from __future__ import annotations

from typing import Dict

from ..errors import ConfigurationError, SimulationError
from ..sim.stats import RunningStats as _ResponseStats


class WebServer:
    """One heterogeneous web server (fluid model; see module docstring).

    Parameters
    ----------
    server_id:
        Index of the server within the cluster (0 = most powerful).
    capacity:
        Absolute capacity ``C_i`` in hits per second.
    """

    __slots__ = (
        "server_id",
        "capacity",
        "_backlog",
        "_last_update",
        "_busy_in_window",
        "_window_start",
        "_hits_in_window",
        "domain_hits",
        "total_hits",
        "total_pages",
        "response_times",
    )

    def __init__(self, server_id: int, capacity: float):
        if capacity <= 0:
            raise ConfigurationError(f"capacity must be > 0, got {capacity!r}")
        self.server_id = server_id
        self.capacity = float(capacity)
        self._backlog = 0.0  # seconds of work outstanding
        self._last_update = 0.0
        self._busy_in_window = 0.0
        self._window_start = 0.0
        self._hits_in_window = 0
        #: Hits received per source domain since the last estimator
        #: collection (drained by :meth:`drain_domain_hits`).
        self.domain_hits: Dict[int, int] = {}
        self.total_hits = 0
        self.total_pages = 0
        #: Streaming statistics over per-page response times (seconds):
        #: the fluid sojourn time of each page burst, i.e. the backlog
        #: found on arrival plus the burst's own service demand.
        self.response_times = _ResponseStats()

    # -- fluid dynamics --------------------------------------------------

    def _advance(self, now: float) -> None:
        """Drain backlog up to time ``now``, accruing busy time."""
        if now < self._last_update:
            raise SimulationError(
                f"time went backwards: {now!r} < {self._last_update!r}"
            )
        elapsed = now - self._last_update
        busy = min(self._backlog, elapsed)
        self._backlog -= busy
        self._busy_in_window += busy
        self._last_update = now

    def offer(self, now: float, hits: int, domain_id: int) -> None:
        """Accept a page burst of ``hits`` hits from ``domain_id``.

        Called once per page burst — the busiest method outside the
        engine — so :meth:`_advance` is inlined here (same arithmetic,
        same operation order) and the backlog is threaded through one
        local instead of repeated slot reads.
        """
        if hits <= 0:
            raise SimulationError(f"a page burst must have >= 1 hit, got {hits!r}")
        last = self._last_update
        if now < last:
            raise SimulationError(f"time went backwards: {now!r} < {last!r}")
        backlog = self._backlog
        elapsed = now - last
        busy = backlog if backlog <= elapsed else elapsed
        backlog -= busy
        self._busy_in_window += busy
        self._last_update = now
        service = hits / self.capacity
        # Fluid sojourn time: the work queued ahead of this burst plus its
        # own service demand (FIFO drain at unit rate). The accumulator
        # update is RunningStats.add verbatim (same operation order, so
        # identical floats) inlined to skip a method call per page.
        stats = self.response_times
        sojourn = backlog + service
        stats.count = count = stats.count + 1
        delta = sojourn - stats._mean
        stats._mean = mean = stats._mean + delta / count
        stats._m2 += delta * (sojourn - mean)
        if sojourn < stats.minimum:
            stats.minimum = sojourn
        if sojourn > stats.maximum:
            stats.maximum = sojourn
        self._backlog = backlog + service
        self._hits_in_window += hits
        self.total_hits += hits
        self.total_pages += 1
        domain_hits = self.domain_hits
        domain_hits[domain_id] = domain_hits.get(domain_id, 0) + hits

    # -- measurement -----------------------------------------------------

    @property
    def backlog_seconds(self) -> float:
        """Outstanding work, in seconds at full rate (as of last update)."""
        return self._backlog

    def utilization(self, now: float) -> float:
        """Busy fraction of the current window ``[window_start, now]``."""
        self._advance(now)
        width = now - self._window_start
        if width <= 0:
            return 1.0 if self._backlog > 0 else 0.0
        return self._busy_in_window / width

    def offered_load(self, now: float) -> float:
        """Arrived work / capacity over the current window (may exceed 1)."""
        width = now - self._window_start
        if width <= 0:
            return 0.0
        return self._hits_in_window / (self.capacity * width)

    def end_window(self, now: float) -> float:
        """Close the current measurement window and start a new one.

        Returns the utilization (busy fraction) of the closed window.
        """
        utilization = self.utilization(now)
        self._busy_in_window = 0.0
        self._hits_in_window = 0
        self._window_start = now
        return utilization

    def drain_domain_hits(self) -> Dict[int, int]:
        """Per-domain hit counts since last drain; resets the counters."""
        drained, self.domain_hits = self.domain_hits, {}
        return drained

    def snapshot_state(self) -> Dict:
        """Every mutable fluid/accounting field (for checkpoints)."""
        return {
            "server_id": self.server_id,
            "backlog": self._backlog,
            "last_update": self._last_update,
            "busy_in_window": self._busy_in_window,
            "window_start": self._window_start,
            "hits_in_window": self._hits_in_window,
            "domain_hits": {
                str(domain): hits
                for domain, hits in sorted(self.domain_hits.items())
            },
            "total_hits": self.total_hits,
            "total_pages": self.total_pages,
            "response_times": self.response_times.snapshot_state(),
        }

    def __repr__(self) -> str:
        return (
            f"<WebServer id={self.server_id} capacity={self.capacity:.4g} "
            f"backlog={self._backlog:.4g}s>"
        )
