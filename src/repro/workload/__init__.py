"""Workload substrate: domain popularity, session model, client processes."""

from .clients import ClientPopulation
from .domains import (
    LAZY_DOMAIN_THRESHOLD,
    DomainSet,
    LazyDomainSet,
    LazyUniformDomainSet,
    LazyZipfDomainSet,
)
from .dynamics import DomainDynamics, RotatingHotDomains, StaticDomains
from .sessions import (
    DEFAULT_MAX_HITS_PER_PAGE,
    DEFAULT_MEAN_THINK_TIME,
    DEFAULT_MIN_HITS_PER_PAGE,
    DEFAULT_PAGES_PER_SESSION,
    SessionModel,
)
from .shards import DEFAULT_SHARD_SIZE, ShardClientWake, ShardedClientPopulation
from .trace import ArrivalSchedule, TraceDrivenPopulation

__all__ = [
    "ArrivalSchedule",
    "ClientPopulation",
    "DEFAULT_MAX_HITS_PER_PAGE",
    "DEFAULT_MEAN_THINK_TIME",
    "DEFAULT_MIN_HITS_PER_PAGE",
    "DEFAULT_PAGES_PER_SESSION",
    "DEFAULT_SHARD_SIZE",
    "DomainDynamics",
    "DomainSet",
    "LAZY_DOMAIN_THRESHOLD",
    "LazyDomainSet",
    "LazyUniformDomainSet",
    "LazyZipfDomainSet",
    "RotatingHotDomains",
    "SessionModel",
    "ShardClientWake",
    "ShardedClientPopulation",
    "StaticDomains",
    "TraceDrivenPopulation",
]
