"""Workload substrate: domain popularity, session model, client processes."""

from .clients import ClientPopulation
from .domains import DomainSet
from .dynamics import DomainDynamics, RotatingHotDomains, StaticDomains
from .sessions import (
    DEFAULT_MAX_HITS_PER_PAGE,
    DEFAULT_MEAN_THINK_TIME,
    DEFAULT_MIN_HITS_PER_PAGE,
    DEFAULT_PAGES_PER_SESSION,
    SessionModel,
)

__all__ = [
    "ClientPopulation",
    "DEFAULT_MAX_HITS_PER_PAGE",
    "DEFAULT_MEAN_THINK_TIME",
    "DEFAULT_MIN_HITS_PER_PAGE",
    "DEFAULT_PAGES_PER_SESSION",
    "DomainDynamics",
    "DomainSet",
    "RotatingHotDomains",
    "SessionModel",
    "StaticDomains",
]
