"""Client processes driving the simulated web site.

Each client runs an endless loop of sessions. A session starts with one
address resolution through the client's domain name server (which may be
answered from the NS cache — then the DNS never sees it) and then issues
a geometric number of page bursts against the mapped server, separated by
exponential think times. The population is partitioned over domains per
the supplied :class:`~repro.workload.domains.DomainSet`.

The population also maintains the statistic the paper repeatedly cites:
the fraction of *data* requests the DNS directly controlled, i.e. hits
belonging to sessions whose resolution actually reached the authoritative
DNS (typically below a few percent — the crux of the scheduling problem).
"""

from __future__ import annotations

from typing import List, Optional

from ..dns.resolver import ResolutionChain
from ..errors import ConfigurationError
from ..sim.fastforward import FastForwardEnvironment
from ..sim.rng import RandomStreams
from .fluid import FluidClient, fluid_fallback_reasons
from ..sim.stats import RunningStats as _RttStats
from ..sim.tracing import NullTracer
from ..web.cluster import ServerCluster
from .domains import DomainSet
from .dynamics import StaticDomains
from .sessions import SessionModel


class ClientPopulation:
    """Spawns and tracks all client processes.

    Parameters
    ----------
    env:
        Simulation environment.
    cluster:
        The web-server cluster receiving page bursts.
    resolution_chain:
        The DNS resolution path (per-domain name servers + DNS).
    domains:
        Domain popularity used to partition clients. For the
        estimation-error experiments pass the *perturbed* set here while
        the scheduler keeps estimates from the unperturbed set.
    session_model:
        Traffic distributions.
    total_clients:
        Size of the client population (Table 1: 500).
    streams:
        Named random streams (keeps workload draws independent from
        scheduler coin flips).
    tracer:
        Optional tracer; records one ``"session"`` event per session start.
    dynamics:
        Optional :class:`~repro.workload.dynamics.DomainDynamics` that
        remaps each client's domain identity over time (non-stationary
        workloads). Default: static domains.
    client_address_caching:
        When ``True``, each client also caches its own address mapping
        and reuses it across sessions while the TTL is valid ("caching of
        the address mapping is typically done at Name Servers and also at
        the clients"). Default ``False`` — one NS lookup per session, the
        paper's base model.
    metrics:
        Optional :class:`~repro.obs.MetricsRegistry`; the population
        registers pull callbacks for its session/page/hit totals.
    """

    # The per-page counters below are incremented once per page for the
    # whole run; slot storage makes those the cheap kind of attribute.
    __slots__ = (
        "env",
        "cluster",
        "resolution_chain",
        "domains",
        "session_model",
        "total_clients",
        "tracer",
        "dynamics",
        "client_address_caching",
        "client_cache_hits",
        "layout",
        "network_rtt_stats",
        "_think_rng",
        "_pages_rng",
        "_hits_rng",
        "_stagger_rng",
        "dns_routed_hits",
        "total_hits",
        "total_pages",
        "total_sessions",
        "client_domains",
        "processes",
        "engine",
    )

    def __init__(
        self,
        env,
        cluster: ServerCluster,
        resolution_chain: ResolutionChain,
        domains: DomainSet,
        session_model: SessionModel,
        total_clients: int,
        streams: RandomStreams,
        tracer=None,
        dynamics=None,
        client_address_caching: bool = False,
        layout=None,
        metrics=None,
    ):
        if total_clients < 1:
            raise ConfigurationError(
                f"total_clients must be >= 1, got {total_clients!r}"
            )
        self.env = env
        self.cluster = cluster
        self.resolution_chain = resolution_chain
        self.domains = domains
        self.session_model = session_model
        self.total_clients = total_clients
        self.tracer = tracer if tracer is not None else NullTracer()
        self.dynamics = dynamics if dynamics is not None else StaticDomains()
        self.client_address_caching = bool(client_address_caching)
        #: Sessions served from a client's own cached mapping.
        self.client_cache_hits = 0
        #: Optional geographic layout; when present, per-page network
        #: RTTs are accumulated in :attr:`network_rtt_stats`.
        self.layout = layout
        self.network_rtt_stats = _RttStats()
        self._think_rng = streams.stream("workload.think")
        self._pages_rng = streams.stream("workload.pages")
        self._hits_rng = streams.stream("workload.hits")
        self._stagger_rng = streams.stream("workload.stagger")
        #: Hits issued in sessions resolved by the authoritative DNS.
        self.dns_routed_hits = 0
        self.total_hits = 0
        self.total_pages = 0
        self.total_sessions = 0
        if metrics is not None:
            metrics.register("workload.sessions", lambda: self.total_sessions)
            metrics.register("workload.pages", lambda: self.total_pages)
            metrics.register("workload.hits", lambda: self.total_hits)
            metrics.register(
                "workload.dns_routed_hits", lambda: self.dns_routed_hits
            )
            metrics.register(
                "workload.client_cache_hits", lambda: self.client_cache_hits
            )
        self.client_domains: List[int] = []
        for domain_id, count in enumerate(domains.client_counts(total_clients)):
            self.client_domains.extend([domain_id] * count)
        #: ``"fluid"`` when the clients run as native fast-forward
        #: steppers, ``"event"`` for reference generator processes.
        self.engine = "event"
        if isinstance(env, FastForwardEnvironment):
            reasons = fluid_fallback_reasons(self)
            if reasons:
                # Ineligible for the fluid lane: count each reason and
                # fall back to reference event-stepping (the fast-forward
                # environment dispatches generators verbatim).
                for reason in reasons:
                    env.count_fallback(reason)
            else:
                self.engine = "fluid"
        if self.engine == "fluid":
            # Same spawn order, same eid consumption (one urgent init
            # entry per client), same stagger/think/pages/hits draws —
            # bit-identical to the generator path below.
            env.register_task_class(FluidClient)
            self.processes = [
                FluidClient(env, self, client_id, domain_id)
                for client_id, domain_id in enumerate(self.client_domains)
            ]
        else:
            self.processes = [
                env.process(self._client(client_id, domain_id))
                for client_id, domain_id in enumerate(self.client_domains)
            ]

    @property
    def dns_control_fraction(self) -> float:
        """Fraction of hits in sessions the DNS directly routed."""
        return self.dns_routed_hits / self.total_hits if self.total_hits else 0.0

    def _client(self, client_id: int, home_domain: int):
        # This generator executes once per page across the whole run —
        # every attribute lookup in its loops is paid hundreds of
        # thousands of times, so bind everything loop-invariant to
        # locals up front (methods included: `timeout`, the distribution
        # `sample`s and `record` save a LOAD_ATTR per call). The running
        # totals stay on `self` — they must be externally visible at any
        # simulation cutoff, including mid-session.
        env = self.env
        timeout = env.timeout
        session_model = self.session_model
        chain = self.resolution_chain
        resolve = chain.resolve
        servers = self.cluster.servers
        think_rng = self._think_rng
        pages_rng = self._pages_rng
        hits_rng = self._hits_rng
        think = session_model.think_time
        think_sample = think.sampler(think_rng)
        pages_sample = session_model.pages_per_session.sampler(pages_rng)
        hits_sample = session_model.hits_per_page.sampler(hits_rng)
        dynamics = self.dynamics
        static = dynamics.is_static
        caching = self.client_address_caching
        layout = self.layout
        rtt_stats_add = self.network_rtt_stats.add
        tracer = self.tracer
        tracing = tracer.enabled
        trace_record = tracer.record
        cached_record = None
        cached_domain = -1
        # Stagger session starts across one mean think time so the whole
        # population does not resolve at t=0 in lockstep.
        yield timeout(self._stagger_rng.uniform(0.0, think.mean))
        # `now` mirrors env.now: the clock cannot move between a resume
        # and the next yield, so one read per wakeup suffices.
        now = env.now
        while True:
            domain_id = (
                home_domain
                if static
                else dynamics.current_domain(home_domain, now)
            )
            if (
                caching
                and cached_record is not None
                and cached_domain == domain_id
                and cached_record.is_valid(now)
            ):
                record = cached_record
                resolved_by_dns = False
                self.client_cache_hits += 1
            else:
                before = chain.authoritative_answers
                record = resolve(domain_id, now, client_id)
                resolved_by_dns = chain.authoritative_answers > before
                if caching:
                    cached_record = record
                    cached_domain = domain_id
            offer = servers[record.server_id].offer
            pages = int(pages_sample())
            self.total_sessions += 1
            if tracing:
                trace_record(
                    now,
                    "session",
                    {
                        "client": client_id,
                        "domain": domain_id,
                        "server": record.server_id,
                        "pages": pages,
                        "dns": resolved_by_dns,
                    },
                )
            if layout is not None:
                page_rtt = layout.rtt(domain_id, record.server_id)
            for _ in range(pages):
                hits = int(hits_sample())
                offer(now, hits, domain_id)
                self.total_pages += 1
                self.total_hits += hits
                if resolved_by_dns:
                    self.dns_routed_hits += hits
                if layout is not None:
                    rtt_stats_add(page_rtt)
                yield timeout(think_sample())
                now = env.now

    def snapshot_state(self) -> dict:
        """Workload counters and liveness census (for checkpoints).

        The per-client generator frames themselves cannot be serialized;
        what *is* captured — every running total plus how many client
        processes are still alive — changes whenever any client makes
        progress, so it pins the population's position in the trajectory
        for the resume digest.
        """
        return {
            "total_clients": self.total_clients,
            "total_sessions": self.total_sessions,
            "total_pages": self.total_pages,
            "total_hits": self.total_hits,
            "dns_routed_hits": self.dns_routed_hits,
            "client_cache_hits": self.client_cache_hits,
            "alive": sum(1 for process in self.processes if process.is_alive),
            "network_rtt_stats": self.network_rtt_stats.snapshot_state(),
        }

    def __repr__(self) -> str:
        return (
            f"<ClientPopulation clients={self.total_clients} "
            f"domains={self.domains.domain_count} hits={self.total_hits}>"
        )
