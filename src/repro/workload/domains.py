"""Client domains and their popularity distribution.

The paper partitions clients among ``K`` domains by a *pure Zipf*
distribution: the probability that a client belongs to the i-th most
popular domain is proportional to ``1/i`` (an analysis of academic and
commercial sites found ~75% of requests coming from 10% of domains).
:class:`DomainSet` captures the domain shares, derives the quantities the
schedulers need (relative hidden-load weights, hot/normal classes) and
implements the workload perturbation used by the estimation-error
experiments (Figs. 6-7).
"""

from __future__ import annotations

from typing import List, Sequence

from ..errors import ConfigurationError
from ..sim.distributions import zipf_weights


class DomainSet:
    """A set of client domains with normalized popularity shares.

    Parameters
    ----------
    shares:
        Fraction of the client population in each domain; must be positive
        and sum to 1 (within floating-point tolerance). Domains are indexed
        ``0..K-1`` in *descending* popularity.
    """

    def __init__(self, shares: Sequence[float]):
        values = [float(s) for s in shares]
        if not values:
            raise ConfigurationError("a domain set needs at least one domain")
        if any(s <= 0 for s in values):
            raise ConfigurationError("domain shares must be positive")
        total = sum(values)
        if abs(total - 1.0) > 1e-9:
            raise ConfigurationError(f"domain shares must sum to 1, got {total!r}")
        self.shares: List[float] = values

    # -- constructors ------------------------------------------------------

    @classmethod
    def pure_zipf(cls, domain_count: int, exponent: float = 1.0) -> "DomainSet":
        """The paper's client partition: shares proportional to 1/rank."""
        return cls(zipf_weights(domain_count, exponent))

    @classmethod
    def uniform(cls, domain_count: int) -> "DomainSet":
        """Equal shares — the hypothesis under which plain RR works and
        which defines the paper's *Ideal* envelope curve."""
        if domain_count < 1:
            raise ConfigurationError(
                f"domain_count must be >= 1, got {domain_count!r}"
            )
        return cls([1.0 / domain_count] * domain_count)

    # -- derived quantities --------------------------------------------------

    @property
    def domain_count(self) -> int:
        return len(self.shares)

    @property
    def relative_weights(self) -> List[float]:
        """Hidden-load weights relative to the most popular domain.

        ``w_j = lambda_j / lambda_max`` — the ratio the TTL/K formula uses
        (``TTL_j = TTL_min * lambda_max / lambda_j``).
        """
        peak = max(self.shares)
        return [share / peak for share in self.shares]

    def hottest_domain(self) -> int:
        """Index of the most popular domain."""
        return max(range(len(self.shares)), key=lambda j: self.shares[j])

    def client_counts(self, total_clients: int) -> List[int]:
        """Integer client counts per domain by largest-remainder rounding.

        Guarantees the counts sum exactly to ``total_clients`` and that
        rounding never starves a domain whose exact share is >= 0.5 client.
        """
        if total_clients < 1:
            raise ConfigurationError(
                f"total_clients must be >= 1, got {total_clients!r}"
            )
        exact = [share * total_clients for share in self.shares]
        counts = [int(x) for x in exact]
        remainder = total_clients - sum(counts)
        by_fraction = sorted(
            range(len(exact)), key=lambda j: exact[j] - counts[j], reverse=True
        )
        for j in by_fraction[:remainder]:
            counts[j] += 1
        return counts

    # -- perturbation (Figs. 6-7) ---------------------------------------------

    def perturb_hottest(self, error: float) -> "DomainSet":
        """Increase the busiest domain's share by ``error`` (e.g. 0.3 = 30%).

        Paper, Section 5.2: "the request rate of the busiest domain is
        increased by e% and the request rates of the other domains are
        proportionally decreased to maintain the same total request rate.
        This effectively increases the skew of the client rate
        distribution, hence represents a worst case."
        """
        if error < 0:
            raise ConfigurationError(f"error must be >= 0, got {error!r}")
        if error == 0:
            return DomainSet(self.shares)
        if len(self.shares) == 1:
            raise ConfigurationError("cannot perturb a single-domain set")
        hot = self.hottest_domain()
        new_hot_share = self.shares[hot] * (1.0 + error)
        if new_hot_share >= 1.0:
            raise ConfigurationError(
                f"perturbation {error!r} would give the hottest domain "
                f"share {new_hot_share!r} >= 1"
            )
        scale = (1.0 - new_hot_share) / (1.0 - self.shares[hot])
        shares = [share * scale for share in self.shares]
        shares[hot] = new_hot_share
        return DomainSet(shares)

    def __len__(self) -> int:
        return len(self.shares)

    def __iter__(self):
        return iter(self.shares)

    def __repr__(self) -> str:
        return f"<DomainSet K={self.domain_count} top={max(self.shares):.3f}>"
