"""Client domains and their popularity distribution.

The paper partitions clients among ``K`` domains by a *pure Zipf*
distribution: the probability that a client belongs to the i-th most
popular domain is proportional to ``1/i`` (an analysis of academic and
commercial sites found ~75% of requests coming from 10% of domains).
:class:`DomainSet` captures the domain shares, derives the quantities the
schedulers need (relative hidden-load weights, hot/normal classes) and
implements the workload perturbation used by the estimation-error
experiments (Figs. 6-7).

Scale
-----
The explicit :class:`DomainSet` stores one Python float per domain — the
right representation up to a few tens of thousands of domains, and the
one every paper-scale experiment uses. Million-domain workloads (the
regime where TTL/K policies get interesting) instead use the lazy
subclasses :class:`LazyZipfDomainSet` / :class:`LazyUniformDomainSet`,
which compute ``share(j)`` on demand — bit-identical to the explicit
values — and stream derived quantities (client counts, cumulative
sampling) so no ``K``-element Python list is ever allocated on the hot
path. :meth:`SimulationConfig.build_domains
<repro.experiments.config.SimulationConfig.build_domains>` switches
representation at :data:`LAZY_DOMAIN_THRESHOLD`.
"""

from __future__ import annotations

import bisect
import heapq
import itertools
from array import array
from typing import Iterator, List, Sequence

from ..errors import ConfigurationError
from ..sim.distributions import zipf_weights

#: Domain counts at or above this use the lazy share representation when
#: built from a :class:`~repro.experiments.config.SimulationConfig`.
#: Below it, the explicit list-backed set is faster and every historical
#: trajectory is pinned to it.
LAZY_DOMAIN_THRESHOLD = 100_000


def _largest_remainder_counts(
    shares_factory, domain_count: int, total_clients: int
) -> Iterator[int]:
    """Stream integer client counts per domain (largest-remainder).

    ``shares_factory`` must return a fresh iterator over the (normalized)
    shares on each call; the algorithm makes a bounded number of passes
    over it and keeps only ``O(total_clients)``-bounded working state, so
    a million-domain set never materializes a ``K``-element list here.

    Contract (see :meth:`DomainSet.client_counts`): counts sum exactly to
    ``total_clients``; among equal fractional remainders the
    lower-indexed (more popular) domain wins; and a domain whose exact
    share is at least 0.5 client is never rounded to zero while any
    other domain holds a grant above its own exact share — the
    *starvation repair* pass below. Repair only triggers when plain
    largest-remainder rounding starved such a domain (only possible when
    ``domain_count`` is of the order of ``total_clients`` or larger), so
    every paper-scale configuration reproduces the historical counts
    bit-for-bit.
    """
    # Pass 1: floors and the remainder to distribute.
    floor_sum = 0
    for share in shares_factory():
        floor_sum += int(share * total_clients)
    remainder = total_clients - floor_sum

    # Pass 2: the `remainder` largest fractional parts win one extra
    # client each. A capped min-heap keyed (fraction, -index) selects
    # exactly the set `sorted(..., key=fraction, reverse=True)[:r]`
    # would (stable sort: equal fractions resolve to the lower index).
    winners = frozenset()
    if remainder > 0:
        heap: List = []
        push, replace = heapq.heappush, heapq.heapreplace
        for j, share in enumerate(shares_factory()):
            x = share * total_clients
            key = (x - int(x), -j)
            if len(heap) < remainder:
                push(heap, key)
            elif key > heap[0]:
                replace(heap, key)
        winners = frozenset(-neg_j for _, neg_j in heap)

    # Pass 3: find starved domains (exact share >= 0.5 client, count 0).
    # At most 2 * total_clients domains can have exact >= 0.5 (the exact
    # shares sum to total_clients), so this list is client-bounded.
    starved: List = []
    for j, share in enumerate(shares_factory()):
        exact = share * total_clients
        if exact >= 0.5 and int(exact) == 0 and j not in winners:
            starved.append((-exact, j))
    adjust = {}
    if starved:
        starved.sort()  # most deserving (largest exact share) first
        # Pass 3b: donor candidates — domains that can give a client up
        # without being starved themselves, keyed by how far above their
        # exact share the rounding put them. One donation per collected
        # donor is always legal, so capping at len(starved) suffices.
        donors: List = []
        cap = len(starved)
        for j, share in enumerate(shares_factory()):
            exact = share * total_clients
            count = int(exact) + (j in winners)
            if count >= 2 or (count == 1 and exact < 0.5):
                key = (count - exact, -j)
                if len(donors) < cap:
                    heapq.heappush(donors, (key, j, count, exact))
                elif key > donors[0][0]:
                    heapq.heapreplace(donors, (key, j, count, exact))
        # Re-key as a max-heap (largest surplus first, then lowest
        # index) and serve the starved in order. A donor may donate
        # again (count permitting) once everyone else with a larger
        # surplus has donated.
        pool = [
            (-surplus, j, count, exact)
            for (surplus, _), j, count, exact in donors
        ]
        heapq.heapify(pool)
        for _, starved_j in starved:
            if not pool:
                break  # infeasible: more >=0.5 domains than grantable clients
            neg_surplus, j, count, exact = heapq.heappop(pool)
            adjust[starved_j] = adjust.get(starved_j, 0) + 1
            adjust[j] = adjust.get(j, 0) - 1
            count -= 1
            if count >= 2 or (count == 1 and exact < 0.5):
                heapq.heappush(pool, (neg_surplus + 1.0, j, count, exact))

    # Final pass: emit the counts.
    if adjust:
        for j, share in enumerate(shares_factory()):
            yield int(share * total_clients) + (j in winners) + adjust.get(j, 0)
    else:
        for j, share in enumerate(shares_factory()):
            yield int(share * total_clients) + (j in winners)


class DomainSet:
    """A set of client domains with normalized popularity shares.

    Parameters
    ----------
    shares:
        Fraction of the client population in each domain; must be positive
        and sum to 1 (within floating-point tolerance). Domains are indexed
        ``0..K-1`` in *descending* popularity.
    """

    def __init__(self, shares: Sequence[float]):
        values = [float(s) for s in shares]
        if not values:
            raise ConfigurationError("a domain set needs at least one domain")
        if any(s <= 0 for s in values):
            raise ConfigurationError("domain shares must be positive")
        total = sum(values)
        if abs(total - 1.0) > 1e-9:
            raise ConfigurationError(f"domain shares must sum to 1, got {total!r}")
        self.shares: List[float] = values
        self._cumulative: List[float] = []

    # -- constructors ------------------------------------------------------

    @classmethod
    def pure_zipf(cls, domain_count: int, exponent: float = 1.0) -> "DomainSet":
        """The paper's client partition: shares proportional to 1/rank."""
        return cls(zipf_weights(domain_count, exponent))

    @classmethod
    def uniform(cls, domain_count: int) -> "DomainSet":
        """Equal shares — the hypothesis under which plain RR works and
        which defines the paper's *Ideal* envelope curve."""
        if domain_count < 1:
            raise ConfigurationError(
                f"domain_count must be >= 1, got {domain_count!r}"
            )
        return cls([1.0 / domain_count] * domain_count)

    # -- share access ------------------------------------------------------

    def share(self, domain_id: int) -> float:
        """Popularity share of one domain (O(1))."""
        return self.shares[domain_id]

    def iter_shares(self) -> Iterator[float]:
        """Iterate shares in domain order without copying."""
        return iter(self.shares)

    # -- derived quantities --------------------------------------------------

    @property
    def domain_count(self) -> int:
        return len(self.shares)

    @property
    def relative_weights(self) -> List[float]:
        """Hidden-load weights relative to the most popular domain.

        ``w_j = lambda_j / lambda_max`` — the ratio the TTL/K formula uses
        (``TTL_j = TTL_min * lambda_max / lambda_j``).
        """
        peak = max(self.shares)
        return [share / peak for share in self.shares]

    def hottest_domain(self) -> int:
        """Index of the most popular domain.

        Ties resolve to the lowest index (``max`` keeps the first
        maximum), so a perturbation applied to a flat region of the
        distribution is deterministic.
        """
        return max(range(len(self.shares)), key=lambda j: self.shares[j])

    def client_counts(self, total_clients: int) -> List[int]:
        """Integer client counts per domain by largest-remainder rounding.

        Guarantees the counts sum exactly to ``total_clients``, and that
        rounding never starves a domain whose exact share is >= 0.5
        client while any other domain holds more clients than its own
        exact share justifies (a repair pass demotes the largest
        over-allocations; with more such >= 0.5 domains than clients the
        largest exact shares win). Zero-count domains otherwise distort
        the hidden-load weights the schedulers see, so the guarantee is
        load-bearing for large-``K``/small-population configurations.
        """
        return list(self.iter_client_counts(total_clients))

    def iter_client_counts(self, total_clients: int) -> Iterator[int]:
        """Stream :meth:`client_counts` without materializing a list."""
        if total_clients < 1:
            raise ConfigurationError(
                f"total_clients must be >= 1, got {total_clients!r}"
            )
        return _largest_remainder_counts(
            self.iter_shares, self.domain_count, total_clients
        )

    def sample_domain(self, u: float) -> int:
        """Map a uniform variate ``u`` in [0, 1) to a domain index.

        Inverse-CDF sampling used by the trace-driven workload source to
        attribute arrivals to domains with the configured popularity.
        The cumulative table is built once on first use.
        """
        if not self._cumulative:
            self._cumulative = list(itertools.accumulate(self.shares))
            self._cumulative[-1] = 1.0  # guard against float drift
        index = bisect.bisect_right(self._cumulative, u)
        return min(index, len(self.shares) - 1)

    # -- perturbation (Figs. 6-7) ---------------------------------------------

    def perturb_hottest(self, error: float) -> "DomainSet":
        """Increase the busiest domain's share by ``error`` (e.g. 0.3 = 30%).

        Paper, Section 5.2: "the request rate of the busiest domain is
        increased by e% and the request rates of the other domains are
        proportionally decreased to maintain the same total request rate.
        This effectively increases the skew of the client rate
        distribution, hence represents a worst case."

        The rebuilt shares are explicitly renormalized: the analytic
        rescale contracts any unit-sum drift inherited from the input,
        but the ``K`` multiplications each round, and at large ``K`` the
        accumulated error could otherwise approach the constructor's
        ``1e-9`` tolerance and reject a perfectly valid perturbation.
        """
        if error < 0:
            raise ConfigurationError(f"error must be >= 0, got {error!r}")
        if error == 0:
            return DomainSet(self.shares)
        if self.domain_count == 1:
            raise ConfigurationError("cannot perturb a single-domain set")
        hot = self.hottest_domain()
        hot_share = self.share(hot)
        new_hot_share = hot_share * (1.0 + error)
        if new_hot_share >= 1.0:
            raise ConfigurationError(
                f"perturbation {error!r} would give the hottest domain "
                f"share {new_hot_share!r} >= 1"
            )
        scale = (1.0 - new_hot_share) / (1.0 - hot_share)
        shares = [share * scale for share in self.iter_shares()]
        shares[hot] = new_hot_share
        total = sum(shares)
        if total != 1.0:
            shares = [share / total for share in shares]
        return DomainSet(shares)

    def __len__(self) -> int:
        return self.domain_count

    def __iter__(self):
        return self.iter_shares()

    def __repr__(self) -> str:
        return f"<DomainSet K={self.domain_count} top={max(self.shares):.3f}>"


class LazyDomainSet(DomainSet):
    """Base for domain sets that compute shares on demand.

    Subclasses define :meth:`share` / :meth:`iter_shares` analytically
    and never store a per-domain list; the :attr:`shares` *property*
    materializes one (O(K) — for interop and small-scale tests only).
    Every computed value is bit-identical to the explicit representation
    of the same distribution, so swapping representations can never
    change a trajectory — the domain-set property suite pins this.
    """

    def __init__(self, domain_count: int):
        if domain_count < 1:
            raise ConfigurationError(
                f"domain_count must be >= 1, got {domain_count!r}"
            )
        self._count = int(domain_count)

    @classmethod
    def pure_zipf(cls, domain_count: int, exponent: float = 1.0) -> "DomainSet":
        """Lazy counterpart of :meth:`DomainSet.pure_zipf`."""
        return LazyZipfDomainSet(domain_count, exponent)

    @classmethod
    def uniform(cls, domain_count: int) -> "DomainSet":
        """Lazy counterpart of :meth:`DomainSet.uniform`."""
        return LazyUniformDomainSet(domain_count)

    @property
    def shares(self) -> List[float]:  # type: ignore[override]
        """Materialized share list (O(K); prefer :meth:`iter_shares`)."""
        return list(self.iter_shares())

    @property
    def domain_count(self) -> int:
        return self._count

    def share(self, domain_id: int) -> float:
        raise NotImplementedError

    def iter_shares(self) -> Iterator[float]:
        return (self.share(j) for j in range(self._count))

    def client_counts(self, total_clients: int) -> Sequence[int]:
        """Counts as a compact typed array (values match the base class)."""
        return array("q", self.iter_client_counts(total_clients))


class LazyZipfDomainSet(LazyDomainSet):
    """Pure-Zipf shares computed on demand (million-domain scale).

    ``share(j)`` reproduces ``zipf_weights(K, exponent)[j]`` bit-for-bit:
    the same raw weight expression divided by the same total, summed in
    the same rank order.
    """

    def __init__(self, domain_count: int, exponent: float = 1.0):
        super().__init__(domain_count)
        if exponent < 0:
            raise ConfigurationError(
                f"exponent must be >= 0, got {exponent!r}"
            )
        self.exponent = float(exponent)
        # Identical additions in identical order to `sum(raw)` inside
        # zipf_weights, so every derived share matches it bitwise.
        self._total = sum(
            1.0 / (rank**self.exponent)
            for rank in range(1, self._count + 1)
        )
        #: Block size of the cumulative-share checkpoints backing
        #: :meth:`sample_domain` (built lazily; K/64 doubles).
        self._block = 64
        self._block_cumulative: array = array("d")

    def share(self, domain_id: int) -> float:
        if not 0 <= domain_id < self._count:
            raise IndexError(domain_id)
        return (1.0 / ((domain_id + 1) ** self.exponent)) / self._total

    def iter_shares(self) -> Iterator[float]:
        total = self._total
        exponent = self.exponent
        return (
            (1.0 / (rank**exponent)) / total
            for rank in range(1, self._count + 1)
        )

    def hottest_domain(self) -> int:
        """Rank 0: Zipf shares are strictly descending."""
        return 0

    def sample_domain(self, u: float) -> int:
        """Inverse-CDF sample via block checkpoints + a short walk.

        Memory is ``K / block`` doubles instead of a ``K``-list; each
        sample costs one bisect plus at most ``block`` share
        evaluations.
        """
        blocks = self._block_cumulative
        if not blocks:
            running = 0.0
            block = self._block
            for j, share in enumerate(self.iter_shares()):
                running += share
                if (j + 1) % block == 0:
                    blocks.append(running)
        block = self._block
        b = bisect.bisect_right(blocks, u)
        j = b * block
        running = blocks[b - 1] if b else 0.0
        last = self._count - 1
        while j < last:
            running += self.share(j)
            if u < running:
                return j
            j += 1
        return last

    def __repr__(self) -> str:
        return (
            f"<LazyZipfDomainSet K={self._count} "
            f"exponent={self.exponent:g}>"
        )


class LazyUniformDomainSet(LazyDomainSet):
    """Equal shares computed on demand (million-domain scale)."""

    def __init__(self, domain_count: int):
        super().__init__(domain_count)
        self._share = 1.0 / self._count

    def share(self, domain_id: int) -> float:
        if not 0 <= domain_id < self._count:
            raise IndexError(domain_id)
        return self._share

    def iter_shares(self) -> Iterator[float]:
        return itertools.repeat(self._share, self._count)

    def hottest_domain(self) -> int:
        """Ties resolve to the lowest index, exactly as the base class."""
        return 0

    def sample_domain(self, u: float) -> int:
        index = int(u * self._count)
        return min(index, self._count - 1)

    def __repr__(self) -> str:
        return f"<LazyUniformDomainSet K={self._count}>"
