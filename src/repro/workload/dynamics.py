"""Time-varying domain popularity (the paper's "dynamic environment").

Section 5.2 motivates the robustness study with "a more dynamic
environment where client request rates from the domains may change
constantly". The perturbation experiments model a one-shot change; this
module models *continuous* change: the identities of the hottest domains
rotate over time, so a DNS clinging to stale estimates keeps mis-classing
exactly the domains that matter most.

:class:`RotatingHotDomains` applies a cyclic relabelling among the top
``rotate_count`` nominal domains every ``shift_interval`` seconds. The
multiset of domain request rates — and hence the total load and the Zipf
skew — is invariant; only *which* administrative domain is hot changes.
A static estimator (the oracle) therefore becomes progressively wrong
about individual domains while remaining right on aggregate, which is
precisely the failure mode measured/windowed estimators exist to fix.
"""

from __future__ import annotations

from ..errors import ConfigurationError


class DomainDynamics:
    """Maps a client's home domain to its current effective domain."""

    def current_domain(self, home_domain: int, now: float) -> int:
        """The domain identity of ``home_domain``'s clients at ``now``."""
        raise NotImplementedError

    @property
    def is_static(self) -> bool:
        return False


class StaticDomains(DomainDynamics):
    """No dynamics: every client keeps its home domain (the default)."""

    def current_domain(self, home_domain: int, now: float) -> int:
        return home_domain

    @property
    def is_static(self) -> bool:
        return True

    def __repr__(self) -> str:
        return "<StaticDomains>"


class RotatingHotDomains(DomainDynamics):
    """Cyclically rotate the identities of the hottest domains.

    Parameters
    ----------
    shift_interval:
        Seconds between rotation steps.
    rotate_count:
        How many of the top domains take part in the rotation (they
        exchange rates cyclically; domains beyond this count are
        untouched).
    """

    def __init__(self, shift_interval: float, rotate_count: int):
        if shift_interval <= 0:
            raise ConfigurationError(
                f"shift_interval must be > 0, got {shift_interval!r}"
            )
        if rotate_count < 2:
            raise ConfigurationError(
                f"rotate_count must be >= 2, got {rotate_count!r}"
            )
        self.shift_interval = float(shift_interval)
        self.rotate_count = int(rotate_count)

    def rotation_step(self, now: float) -> int:
        """How many cyclic shifts have been applied by time ``now``.

        Computed as the largest integer ``k`` with
        ``k * shift_interval <= now`` — an exact integer-interval count.
        Plain ``now // shift_interval`` drifts at boundaries whose times
        are not exactly representable (``0.3 // 0.1 == 2.0``), so a
        client waking exactly on a shift boundary could be mapped with
        the *previous* rotation; the correction loops below run at most
        one iteration each.
        """
        if now <= 0.0:
            return 0
        interval = self.shift_interval
        step = int(now / interval)
        while (step + 1) * interval <= now:
            step += 1
        while step and step * interval > now:
            step -= 1
        return step

    def current_domain(self, home_domain: int, now: float) -> int:
        if home_domain >= self.rotate_count:
            return home_domain
        step = self.rotation_step(now) % self.rotate_count
        return (home_domain + step) % self.rotate_count

    def __repr__(self) -> str:
        return (
            f"<RotatingHotDomains every {self.shift_interval:g}s "
            f"among top {self.rotate_count}>"
        )
