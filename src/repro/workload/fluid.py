"""Native fast-forward client stepper (the fluid lane of the workload).

:class:`FluidClient` is the :class:`~repro.sim.fastforward.FluidTask`
mirror of :meth:`ClientPopulation._client
<repro.workload.clients.ClientPopulation._client>`: one heap entry per
think-sleep, stepped natively instead of resuming a generator. Its
:meth:`~FluidClient.drain` loop performs the byte-exact work of each
generator wake — the same eid allocations, the same RNG draws from the same
streams, the same float operations in the same order — so a fast-forward
run is bit-identical to the reference engine (trajectory, checkpoint
digests, results). The golden-trajectory fixture and the Hypothesis
equivalence harness enforce that claim; any drift between this file and
the generator (or :meth:`WebServer.offer
<repro.web.server.WebServer.offer>`, inlined below) fails them as a
trajectory diff.

Where the speed comes from: per page cycle, the reference path pays a
generator resume, a :class:`~repro.sim.events.Timeout` allocation plus
factory frame, and three Python frames of ``random`` machinery
(``randint`` → ``randrange`` → ``_randbelow``) plus one for
``expovariate``. The native step replaces all of that with straight-line
code over bound C primitives (``Random.random``,
``Random.getrandbits``), replicating each wrapper's arithmetic exactly:

* ``Exponential`` think times: ``-log(1.0 - random()) / lambd`` — the
  body of ``random.Random.expovariate`` with the identical precomputed
  ``lambd``;
* ``DiscreteUniform`` hits: ``low + r`` with ``r`` drawn by the
  ``getrandbits(width.bit_length())`` rejection loop of
  ``Random._randbelow_with_getrandbits`` (consumption-exact, including
  rejections);
* ``Geometric`` pages: the inversion ``max(1, ceil(log(u) / log(1-p)))``
  with the same guard draws as :meth:`Geometric.sample
  <repro.sim.distributions.Geometric.sample>`.

Eligibility (the fallback gate): :func:`fluid_fallback_reasons` names
every feature of a population that the mirror above cannot express —
each reason is counted on the environment and the population falls back
to reference generator clients (inside the same fast-forward
environment, which dispatches them through the reference branches).
"""

from __future__ import annotations

from heapq import heappush, heapreplace
from math import ceil as _ceil, log as _log
from typing import List

from ..errors import SimulationError
from ..sim.distributions import DiscreteUniform, Exponential, Geometric
from ..sim.events import _NORMAL_KEY
from ..sim.fastforward import FluidTask

__all__ = ["FluidClient", "fluid_fallback_reasons"]


def fluid_fallback_reasons(population) -> List[str]:
    """Why ``population`` cannot take the fluid lane (empty = eligible).

    Each named feature would make :meth:`FluidClient.drain` diverge from
    the reference generator, so its presence forces event-stepping:

    ``dynamic-domains``
        Domain remapping over time (``dynamics.is_static`` false).
    ``client-address-caching``
        Per-client cached address mappings with TTL validity checks.
    ``geography``
        Geographic layouts accumulate per-page network RTTs.
    ``session-model``
        Session distributions other than the exact
        ``Geometric``/``DiscreteUniform``/``Exponential`` triple whose
        RNG arithmetic the stepper inlines.
    """
    reasons = []
    if not population.dynamics.is_static:
        reasons.append("dynamic-domains")
    if population.client_address_caching:
        reasons.append("client-address-caching")
    if population.layout is not None:
        reasons.append("geography")
    model = population.session_model
    if not (
        type(model.pages_per_session) is Geometric
        and type(model.hits_per_page) is DiscreteUniform
        and type(model.think_time) is Exponential
    ):
        reasons.append("session-model")
    return reasons


class FluidClient(FluidTask):
    """One client's session loop as a native fast-forward stepper.

    Mirrors ``ClientPopulation._client(client_id, home_domain)`` state
    for state: construction consumes one eid for an urgent init entry
    (exactly as :class:`~repro.sim.process._Initialize` does for a
    generator client), the first step draws the stagger delay, and every
    later step runs one page cycle — session start (DNS resolution,
    pages draw, trace record) when no pages remain, then one page burst
    and the next think-sleep.
    """

    __slots__ = (
        "env",
        "population",
        "client_id",
        "domain_id",
        "chain",
        "resolve",
        "servers",
        "tracing",
        "trace_record",
        "_stagger_rng",
        "_think_mean",
        "_think_random",
        "_think_lambd",
        "_hits_getrandbits",
        "_hits_low",
        "_hits_width",
        "_hits_bits",
        "_pages_random",
        "_pages_log_q",
        "_pages_degenerate",
        "_remaining",
        "_server",
        "_resolved_by_dns",
    )

    def __init__(self, env, population, client_id: int, home_domain: int):
        self.env = env
        self.population = population
        self.client_id = client_id
        self.domain_id = home_domain
        chain = population.resolution_chain
        self.chain = chain
        self.resolve = chain.resolve
        self.servers = population.cluster.servers
        tracer = population.tracer
        self.tracing = tracer.enabled
        self.trace_record = tracer.record
        model = population.session_model
        think = model.think_time
        self._stagger_rng = population._stagger_rng
        self._think_mean = think.mean
        # Exponential.sampler binds expovariate with lambd = 1.0 / mean;
        # the same division here keeps the inlined draw float-identical.
        self._think_random = population._think_rng.random
        self._think_lambd = 1.0 / think.mean
        hits = model.hits_per_page
        self._hits_getrandbits = population._hits_rng.getrandbits
        self._hits_low = hits.low
        self._hits_width = width = hits.high - hits.low + 1
        self._hits_bits = width.bit_length()
        pages = model.pages_per_session
        self._pages_random = population._pages_rng.random
        self._pages_degenerate = pages._p >= 1.0
        self._pages_log_q = (
            0.0 if self._pages_degenerate else _log(1.0 - pages._p)
        )
        # -1 = the init dispatch is still pending; 0 = session start due.
        self._remaining = -1
        self._server = None
        self._resolved_by_dns = False
        # Mirror _Initialize: one urgent entry at the current time,
        # consuming the eid a generator client's spawn would consume
        # (PRIORITY_URGENT is 0, so the fused heap key is the bare eid).
        env._eid = eid = env._eid + 1
        heappush(env._queue, (env._now + 0.0, eid, self))

    @classmethod
    def drain(cls, env, queue, target: float, budget: int = -1) -> None:
        """Dispatch consecutive client wakes natively (the fluid lane).

        Per wake: init, session start and/or one page cycle — every
        line shadows a line of the reference client generator (or of
        ``WebServer.offer``, inlined for the per-page fast path) — same
        call order, same operand order. Change them together or the
        equivalence suites fail. The loop keeps going while the heap
        top is a :class:`FluidClient` entry due by ``target`` (and
        ``budget`` wakes remain; see :meth:`FluidTask.drain` for the
        heapreplace parity argument).
        """
        replace = heapreplace
        ceil = _ceil
        log = _log
        # Population-shared state (RNG streams, session-model params,
        # resolution chain — identical on every client of a population)
        # is hoisted into locals on the first wake instead of loaded
        # from the task per wake. Population counters accumulate in
        # locals and flush on exit: within a drain window nothing else
        # runs (quiescence), so every observer — monitor windows,
        # checkpoint digests, results — sees the flushed values it
        # would have seen under per-wake increments. Integer-only, so
        # the deferred addition is parity-exact.
        population = None
        pages_acc = hits_acc = sessions_acc = routed_acc = 0
        try:
            while queue:
                item = queue[0]
                now = item[0]
                if now > target:
                    return
                task = item[2]
                if type(task) is not cls:
                    return
                p = task.population
                if p is not population:
                    if population is not None:  # pragma: no cover
                        # A second population mid-drain: flush the first
                        # one's counters before re-hoisting.
                        population.total_pages += pages_acc
                        population.total_hits += hits_acc
                        population.total_sessions += sessions_acc
                        population.dns_routed_hits += routed_acc
                        pages_acc = hits_acc = sessions_acc = routed_acc = 0
                    population = p
                    chain = task.chain
                    resolve = task.resolve
                    servers = task.servers
                    tracing = task.tracing
                    trace_record = task.trace_record
                    stagger_uniform = task._stagger_rng.uniform
                    think_mean = task._think_mean
                    think_random = task._think_random
                    think_lambd = task._think_lambd
                    hits_getrandbits = task._hits_getrandbits
                    hits_low = task._hits_low
                    hits_width = task._hits_width
                    hits_bits = task._hits_bits
                    pages_random = task._pages_random
                    pages_log_q = task._pages_log_q
                    pages_degenerate = task._pages_degenerate
                remaining = task._remaining
                if remaining > 0:
                    server = task._server
                    resolved_by_dns = task._resolved_by_dns
                elif remaining == 0:
                    # Session start: resolve, then draw the session length.
                    before = chain.authoritative_answers
                    record = resolve(task.domain_id, now, task.client_id)
                    resolved_by_dns = chain.authoritative_answers > before
                    server = servers[record.server_id]
                    if pages_degenerate:
                        remaining = 1
                    else:
                        u = pages_random()
                        while u <= 0.0:  # pragma: no cover - random() in [0, 1)
                            u = pages_random()
                        remaining = ceil(log(u) / pages_log_q)
                        if remaining < 1:
                            remaining = 1
                    sessions_acc += 1
                    if tracing:
                        trace_record(
                            now,
                            "session",
                            {
                                "client": task.client_id,
                                "domain": task.domain_id,
                                "server": record.server_id,
                                "pages": remaining,
                                "dns": resolved_by_dns,
                            },
                        )
                    task._server = server
                    task._resolved_by_dns = resolved_by_dns
                else:
                    # First dispatch (the _Initialize mirror): stagger the
                    # session start across one mean think time.
                    task._remaining = 0
                    delay = stagger_uniform(0.0, think_mean)
                    env._eid = eid = env._eid + 1
                    replace(queue, (now + delay, _NORMAL_KEY | eid, task))
                    budget -= 1
                    if budget == 0:
                        return
                    continue
                # One page cycle. Hits: randint(low, high) with the
                # rejection loop of Random._randbelow_with_getrandbits,
                # consumption-exact.
                r = hits_getrandbits(hits_bits)
                while r >= hits_width:
                    r = hits_getrandbits(hits_bits)
                hits = hits_low + r
                # WebServer.offer, inlined (same checks, same op order).
                if hits <= 0:
                    raise SimulationError(
                        f"a page burst must have >= 1 hit, got {hits!r}"
                    )
                last = server._last_update
                if now < last:
                    raise SimulationError(
                        f"time went backwards: {now!r} < {last!r}"
                    )
                backlog = server._backlog
                elapsed = now - last
                busy = backlog if backlog <= elapsed else elapsed
                backlog -= busy
                server._busy_in_window += busy
                server._last_update = now
                service = hits / server.capacity
                stats = server.response_times
                sojourn = backlog + service
                stats.count = count = stats.count + 1
                delta = sojourn - stats._mean
                stats._mean = mean = stats._mean + delta / count
                stats._m2 += delta * (sojourn - mean)
                if sojourn < stats.minimum:
                    stats.minimum = sojourn
                if sojourn > stats.maximum:
                    stats.maximum = sojourn
                server._backlog = backlog + service
                server._hits_in_window += hits
                server.total_hits += hits
                server.total_pages += 1
                domain_hits = server.domain_hits
                domain_id = task.domain_id
                # try/except beats dict.get on the hot path: the KeyError
                # fires once per (server, domain) pair, then never again.
                # Integer-only bookkeeping, so reordering vs the reference
                # `.get` is parity-safe (no RNG, no float arithmetic).
                try:
                    domain_hits[domain_id] += hits
                except KeyError:
                    domain_hits[domain_id] = hits
                # Population totals (the generator's per-page counter
                # block) — accumulated, flushed on exit.
                pages_acc += 1
                hits_acc += hits
                if resolved_by_dns:
                    routed_acc += hits
                task._remaining = remaining - 1
                # Think-sleep: expovariate(lambd) inlined, then the
                # timeout factory's eid/heap-key arithmetic.
                delay = -log(1.0 - think_random()) / think_lambd
                env._eid = eid = env._eid + 1
                replace(queue, (now + delay, _NORMAL_KEY | eid, task))
                budget -= 1
                if budget == 0:
                    return
        finally:
            if population is not None:
                population.total_pages += pages_acc
                population.total_hits += hits_acc
                population.total_sessions += sessions_acc
                population.dns_routed_hits += routed_acc

    def __repr__(self) -> str:
        return (
            f"<FluidClient client={self.client_id} "
            f"domain={self.domain_id} remaining={self._remaining}>"
        )
