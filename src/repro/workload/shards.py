"""Sharded lazy client population (flat-slot state, no generator frames).

:class:`ShardedClientPopulation` is the scale-oriented drop-in for
:class:`~repro.workload.clients.ClientPopulation`: instead of one live
generator process (frame + :class:`~repro.sim.process.Process` +
per-yield :class:`~repro.sim.events.Timeout`) per client, every client is
one reusable :class:`ShardClientWake` heap entry plus a handful of cells
in flat ``array`` shards on the population. At 10^6 clients that replaces
gigabytes of frame/process/event objects with a few hundred megabytes of
packed state, which is what lets million-domain configurations run at all
(see ``docs/PERFORMANCE.md``).

Bit-identical by construction
-----------------------------
The population mirrors the eager one draw for draw:

* construction consumes one eid per client for an urgent init entry, in
  the same client order (exactly as ``env.process`` spawning does);
* every wake draws from the *same* population-shared RNG streams through
  the *same* sampler partials, in the same order the generator body
  would — session start (resolve → pages draw → trace → layout RTT) and
  page cycle (hits draw → offer → counters → think draw);
* rescheduling uses the byte-exact eid/heap-key arithmetic of
  :func:`~repro.sim.events.timeout_factory`.

Since heap dispatch order is a pure function of the (time, key) entries
and every stream draw happens inside some dispatch, the trajectory — and
therefore results, metrics and checkpoint digests — is bit-identical to
the eager population for *any* configuration (dynamics, caching,
geography, arbitrary session models included). The eager-vs-lazy
equivalence suite (``tests/integration/test_population_equivalence.py``,
``tests/property/test_prop_population_equivalence.py``) enforces this.

Engine modes
------------
``event``
    Each wake re-arms a shared one-element callbacks list on itself; the
    reference engine dispatches it like any other event. This is the
    universal mirror described above.
``fluid``
    Under a :class:`~repro.sim.fastforward.FastForwardEnvironment`, when
    :func:`~repro.workload.fluid.fluid_fallback_reasons` is empty, the
    wake class registers as the fluid task and
    :meth:`ShardClientWake.drain` batch-steps quiescent windows with the
    same inlined RNG/offer arithmetic as
    :class:`~repro.workload.fluid.FluidClient` — state read from the
    flat shards instead of per-task slots. Ineligible configurations
    count their fallback reasons and take the ``event`` path inside the
    same environment.
"""

from __future__ import annotations

from array import array
from heapq import heappush, heapreplace
from math import ceil as _ceil, log as _log

from ..errors import ConfigurationError, SimulationError
from ..sim.events import Event, _NORMAL_KEY
from ..sim.fastforward import FastForwardEnvironment, FluidTask
from ..sim.rng import RandomStreams
from ..sim.stats import RunningStats as _RttStats
from ..sim.tracing import NullTracer
from .domains import DomainSet
from .dynamics import StaticDomains
from .fluid import fluid_fallback_reasons
from .sessions import SessionModel

__all__ = ["ShardClientWake", "ShardedClientPopulation", "DEFAULT_SHARD_SIZE"]

_INFINITY = float("inf")

#: Clients per accounting shard. Shards are *logical* slot ranges — they
#: bound the granularity of per-shard counters (sessions started), not
#: any hot-path data structure, so the default only needs to keep the
#: shard table small relative to the population.
DEFAULT_SHARD_SIZE = 4096


class ShardClientWake(FluidTask, Event):
    """One client's reusable heap entry in a sharded population.

    The wake is simultaneously an :class:`~repro.sim.events.Event` (so
    the reference engine dispatches it through its normal callback
    branch) and a :class:`~repro.sim.fastforward.FluidTask` (so the
    fast-forward drain can step it natively). It owns no session state —
    everything lives in the population's flat shards, indexed by
    :attr:`slot` — which keeps the per-client footprint at two slots
    plus the event plumbing.

    Construction mirrors :class:`~repro.sim.process._Initialize`: one
    urgent entry at the current time, consuming the eid a generator
    client's spawn would consume (``PRIORITY_URGENT`` is 0, so the fused
    heap key is the bare eid).
    """

    __slots__ = ("population", "slot")

    def __init__(self, env, population: "ShardedClientPopulation", slot: int):
        self.env = env
        self.population = population
        self.slot = slot
        self._callbacks = None
        self._waiter = None
        self._value = None
        self._ok = True
        self._processed = False
        env._eid = eid = env._eid + 1
        heappush(env._queue, (env._now + 0.0, eid, self))

    @classmethod
    def drain(cls, env, queue, target: float, budget: int = -1) -> None:
        """Dispatch consecutive shard-client wakes natively (fluid lane).

        The structural twin of :meth:`FluidClient.drain
        <repro.workload.fluid.FluidClient.drain>` — same inlined RNG
        arithmetic, same inlined ``WebServer.offer``, same heapreplace
        rescheduling — except client state is read from and written to
        the population's flat arrays through ``task.slot``. Only
        populations with no fallback reasons register this class, so the
        dynamic-domains / caching / geography / non-standard-model
        branches of the event-mode handler have no counterpart here.
        """
        replace = heapreplace
        ceil = _ceil
        log = _log
        # Population-shared state hoists and local counter accumulation:
        # see FluidClient.drain for the quiescence/parity argument. The
        # per-slot arrays are hoisted alongside the RNG state — one
        # attribute load per population change, then C-speed indexing.
        population = None
        pages_acc = hits_acc = sessions_acc = routed_acc = 0
        try:
            while queue:
                item = queue[0]
                now = item[0]
                if now > target:
                    return
                task = item[2]
                if type(task) is not cls:
                    return
                p = task.population
                if p is not population:
                    if population is not None:  # pragma: no cover
                        population.total_pages += pages_acc
                        population.total_hits += hits_acc
                        population.total_sessions += sessions_acc
                        population.dns_routed_hits += routed_acc
                        pages_acc = hits_acc = sessions_acc = routed_acc = 0
                    population = p
                    chain = p.resolution_chain
                    resolve = chain.resolve
                    servers = p.cluster.servers
                    tracer = p.tracer
                    tracing = tracer.enabled
                    trace_record = tracer.record
                    model = p.session_model
                    think = model.think_time
                    stagger_uniform = p._stagger_rng.uniform
                    think_mean = think.mean
                    # Exponential.sampler binds expovariate with
                    # lambd = 1.0 / mean; same division, float-identical.
                    think_random = p._think_rng.random
                    think_lambd = 1.0 / think.mean
                    hits_dist = model.hits_per_page
                    hits_getrandbits = p._hits_rng.getrandbits
                    hits_low = hits_dist.low
                    hits_width = hits_dist.high - hits_dist.low + 1
                    hits_bits = hits_width.bit_length()
                    pages_dist = model.pages_per_session
                    pages_random = p._pages_rng.random
                    pages_degenerate = pages_dist._p >= 1.0
                    pages_log_q = (
                        0.0 if pages_degenerate else log(1.0 - pages_dist._p)
                    )
                    remaining_arr = p._remaining
                    server_arr = p._server
                    resolved_arr = p._resolved
                    home_arr = p._home_domain
                    shard_sessions = p._shard_sessions
                    shard_size = p.shard_size
                slot = task.slot
                remaining = remaining_arr[slot]
                if remaining > 0:
                    server = servers[server_arr[slot]]
                    resolved_by_dns = resolved_arr[slot]
                    domain_id = home_arr[slot]
                elif remaining == 0:
                    # Session start: resolve, then draw the session
                    # length (drain runs only under static dynamics, so
                    # the session's domain is the home domain).
                    domain_id = home_arr[slot]
                    before = chain.authoritative_answers
                    record = resolve(domain_id, now, slot)
                    resolved_by_dns = chain.authoritative_answers > before
                    server = servers[record.server_id]
                    if pages_degenerate:
                        remaining = 1
                    else:
                        u = pages_random()
                        while u <= 0.0:  # pragma: no cover - random() in [0, 1)
                            u = pages_random()
                        remaining = ceil(log(u) / pages_log_q)
                        if remaining < 1:
                            remaining = 1
                    sessions_acc += 1
                    shard_sessions[slot // shard_size] += 1
                    if tracing:
                        trace_record(
                            now,
                            "session",
                            {
                                "client": slot,
                                "domain": domain_id,
                                "server": record.server_id,
                                "pages": remaining,
                                "dns": resolved_by_dns,
                            },
                        )
                    server_arr[slot] = record.server_id
                    resolved_arr[slot] = 1 if resolved_by_dns else 0
                else:
                    # First dispatch (the _Initialize mirror): stagger
                    # the session start across one mean think time.
                    remaining_arr[slot] = 0
                    delay = stagger_uniform(0.0, think_mean)
                    env._eid = eid = env._eid + 1
                    replace(queue, (now + delay, _NORMAL_KEY | eid, task))
                    budget -= 1
                    if budget == 0:
                        return
                    continue
                # One page cycle. Hits: randint(low, high) with the
                # rejection loop of Random._randbelow_with_getrandbits,
                # consumption-exact.
                r = hits_getrandbits(hits_bits)
                while r >= hits_width:
                    r = hits_getrandbits(hits_bits)
                hits = hits_low + r
                # WebServer.offer, inlined (same checks, same op order).
                if hits <= 0:
                    raise SimulationError(
                        f"a page burst must have >= 1 hit, got {hits!r}"
                    )
                last = server._last_update
                if now < last:
                    raise SimulationError(
                        f"time went backwards: {now!r} < {last!r}"
                    )
                backlog = server._backlog
                elapsed = now - last
                busy = backlog if backlog <= elapsed else elapsed
                backlog -= busy
                server._busy_in_window += busy
                server._last_update = now
                service = hits / server.capacity
                stats = server.response_times
                sojourn = backlog + service
                stats.count = count = stats.count + 1
                delta = sojourn - stats._mean
                stats._mean = mean = stats._mean + delta / count
                stats._m2 += delta * (sojourn - mean)
                if sojourn < stats.minimum:
                    stats.minimum = sojourn
                if sojourn > stats.maximum:
                    stats.maximum = sojourn
                server._backlog = backlog + service
                server._hits_in_window += hits
                server.total_hits += hits
                server.total_pages += 1
                domain_hits = server.domain_hits
                try:
                    domain_hits[domain_id] += hits
                except KeyError:
                    domain_hits[domain_id] = hits
                pages_acc += 1
                hits_acc += hits
                if resolved_by_dns:
                    routed_acc += hits
                remaining_arr[slot] = remaining - 1
                # Think-sleep: expovariate(lambd) inlined, then the
                # timeout factory's eid/heap-key arithmetic.
                delay = -log(1.0 - think_random()) / think_lambd
                env._eid = eid = env._eid + 1
                replace(queue, (now + delay, _NORMAL_KEY | eid, task))
                budget -= 1
                if budget == 0:
                    return
        finally:
            if population is not None:
                population.total_pages += pages_acc
                population.total_hits += hits_acc
                population.total_sessions += sessions_acc
                population.dns_routed_hits += routed_acc

    def __repr__(self) -> str:
        return (
            f"<ShardClientWake slot={self.slot} "
            f"remaining={self.population._remaining[self.slot]}>"
        )


class ShardedClientPopulation:
    """All clients as flat-slot shards driven by reusable heap wakes.

    Drop-in for :class:`~repro.workload.clients.ClientPopulation` (same
    constructor signature plus ``shard_size``, same attribute surface,
    same metrics, same ``snapshot_state``), selected via
    ``SimulationConfig.population = "lazy"``. See the module docstring
    for the equivalence argument.
    """

    __slots__ = (
        "env",
        "cluster",
        "resolution_chain",
        "domains",
        "session_model",
        "total_clients",
        "tracer",
        "dynamics",
        "client_address_caching",
        "client_cache_hits",
        "layout",
        "network_rtt_stats",
        "_think_rng",
        "_pages_rng",
        "_hits_rng",
        "_stagger_rng",
        "_think_sample",
        "_pages_sample",
        "_hits_sample",
        "dns_routed_hits",
        "total_hits",
        "total_pages",
        "total_sessions",
        "shard_size",
        "shard_count",
        "_shard_sessions",
        "_remaining",
        "_server",
        "_resolved",
        "_home_domain",
        "_session_domain",
        "_cached_domain",
        "_cached_records",
        "_page_rtt",
        "_cb",
        "processes",
        "engine",
    )

    def __init__(
        self,
        env,
        cluster,
        resolution_chain,
        domains: DomainSet,
        session_model: SessionModel,
        total_clients: int,
        streams: RandomStreams,
        tracer=None,
        dynamics=None,
        client_address_caching: bool = False,
        layout=None,
        metrics=None,
        shard_size: int = DEFAULT_SHARD_SIZE,
    ):
        if total_clients < 1:
            raise ConfigurationError(
                f"total_clients must be >= 1, got {total_clients!r}"
            )
        if shard_size < 1:
            raise ConfigurationError(
                f"shard_size must be >= 1, got {shard_size!r}"
            )
        self.env = env
        self.cluster = cluster
        self.resolution_chain = resolution_chain
        self.domains = domains
        self.session_model = session_model
        self.total_clients = total_clients
        self.tracer = tracer if tracer is not None else NullTracer()
        self.dynamics = dynamics if dynamics is not None else StaticDomains()
        self.client_address_caching = bool(client_address_caching)
        self.client_cache_hits = 0
        self.layout = layout
        self.network_rtt_stats = _RttStats()
        self._think_rng = streams.stream("workload.think")
        self._pages_rng = streams.stream("workload.pages")
        self._hits_rng = streams.stream("workload.hits")
        self._stagger_rng = streams.stream("workload.stagger")
        # The same sampler partials the eager generator binds — the
        # event-mode wake handler draws through these, which is what
        # makes the mirror exact for arbitrary session models.
        self._think_sample = session_model.think_time.sampler(self._think_rng)
        self._pages_sample = session_model.pages_per_session.sampler(
            self._pages_rng
        )
        self._hits_sample = session_model.hits_per_page.sampler(self._hits_rng)
        self.dns_routed_hits = 0
        self.total_hits = 0
        self.total_pages = 0
        self.total_sessions = 0
        if metrics is not None:
            metrics.register("workload.sessions", lambda: self.total_sessions)
            metrics.register("workload.pages", lambda: self.total_pages)
            metrics.register("workload.hits", lambda: self.total_hits)
            metrics.register(
                "workload.dns_routed_hits", lambda: self.dns_routed_hits
            )
            metrics.register(
                "workload.client_cache_hits", lambda: self.client_cache_hits
            )
        self.shard_size = shard_size
        self.shard_count = (total_clients + shard_size - 1) // shard_size
        self._shard_sessions = array("q", bytes(8 * self.shard_count))
        # Flat per-client state. ``bytes(8 * n)`` zero-fills an "q"
        # array without building an n-element Python list first.
        self._remaining = array("q", bytes(8 * total_clients))
        for slot in range(total_clients):
            self._remaining[slot] = -1
        self._server = array("q", bytes(8 * total_clients))
        self._resolved = bytearray(total_clients)
        home = array("q")
        for domain_id, count in enumerate(
            domains.iter_client_counts(total_clients)
        ):
            if count:
                home.extend([domain_id] * count)
        self._home_domain = home
        # Under static dynamics a session's domain IS the home domain;
        # the separate array exists only when identities can move.
        self._session_domain = (
            home if self.dynamics.is_static else array("q", home)
        )
        if self.client_address_caching:
            self._cached_domain = array("q", bytes(8 * total_clients))
            for slot in range(total_clients):
                self._cached_domain[slot] = -1
            self._cached_records = [None] * total_clients
        else:
            self._cached_domain = None
            self._cached_records = None
        self._page_rtt = (
            array("d", bytes(8 * total_clients)) if layout is not None else None
        )
        # One shared single-element callbacks list, re-armed onto each
        # wake after dispatch. Safe because the engine iterates its
        # *local* reference after nulling the attribute.
        self._cb = [self._on_wake]
        self.engine = "event"
        if isinstance(env, FastForwardEnvironment):
            reasons = fluid_fallback_reasons(self)
            if reasons:
                for reason in reasons:
                    env.count_fallback(reason)
            else:
                self.engine = "fluid"
        if self.engine == "fluid":
            env.register_task_class(ShardClientWake)
            self.processes = [
                ShardClientWake(env, self, slot)
                for slot in range(total_clients)
            ]
        else:
            cb = self._cb
            processes = []
            append = processes.append
            for slot in range(total_clients):
                wake = ShardClientWake(env, self, slot)
                wake._callbacks = cb
                append(wake)
            self.processes = processes

    @property
    def dns_control_fraction(self) -> float:
        """Fraction of hits in sessions the DNS directly routed."""
        return self.dns_routed_hits / self.total_hits if self.total_hits else 0.0

    def _on_wake(self, wake: ShardClientWake) -> None:
        """Run one client wake (event-mode universal mirror).

        Transcribes one resume of ``ClientPopulation._client`` — same
        stream draws through the same sampler partials, same call order,
        same reschedule arithmetic — then re-arms the wake. The engine
        nulled ``wake._callbacks`` and set ``_processed`` before
        invoking this, so re-arming is two attribute stores.
        """
        env = self.env
        now = env._now
        slot = wake.slot
        remaining = self._remaining[slot]
        if remaining < 0:
            # First dispatch: stagger the session start across one mean
            # think time (the generator's pre-loop yield).
            self._remaining[slot] = 0
            delay = self._stagger_rng.uniform(
                0.0, self.session_model.think_time.mean
            )
            env._eid = eid = env._eid + 1
            heappush(env._queue, (now + delay, _NORMAL_KEY | eid, wake))
            wake._callbacks = self._cb
            wake._processed = False
            return
        session_domain = self._session_domain
        if remaining > 0:
            domain_id = session_domain[slot]
            resolved_by_dns = self._resolved[slot]
        else:
            while True:
                # Session start. The loop mirrors the generator's
                # `while True` head: a model drawing zero pages starts
                # the next session in the same wake, as `range(0)` would.
                home = self._home_domain[slot]
                dynamics = self.dynamics
                domain_id = (
                    home
                    if dynamics.is_static
                    else dynamics.current_domain(home, now)
                )
                chain = self.resolution_chain
                if (
                    self.client_address_caching
                    and self._cached_records[slot] is not None
                    and self._cached_domain[slot] == domain_id
                    and self._cached_records[slot].is_valid(now)
                ):
                    record = self._cached_records[slot]
                    resolved_by_dns = False
                    self.client_cache_hits += 1
                else:
                    before = chain.authoritative_answers
                    record = chain.resolve(domain_id, now, slot)
                    resolved_by_dns = chain.authoritative_answers > before
                    if self.client_address_caching:
                        self._cached_records[slot] = record
                        self._cached_domain[slot] = domain_id
                pages = int(self._pages_sample())
                self.total_sessions += 1
                self._shard_sessions[slot // self.shard_size] += 1
                tracer = self.tracer
                if tracer.enabled:
                    tracer.record(
                        now,
                        "session",
                        {
                            "client": slot,
                            "domain": domain_id,
                            "server": record.server_id,
                            "pages": pages,
                            "dns": resolved_by_dns,
                        },
                    )
                if self.layout is not None:
                    self._page_rtt[slot] = self.layout.rtt(
                        domain_id, record.server_id
                    )
                self._server[slot] = record.server_id
                self._resolved[slot] = 1 if resolved_by_dns else 0
                session_domain[slot] = domain_id
                if pages > 0:
                    remaining = pages
                    break
        # One page cycle (the generator's for-loop body).
        hits = int(self._hits_sample())
        self.cluster.servers[self._server[slot]].offer(now, hits, domain_id)
        self.total_pages += 1
        self.total_hits += hits
        if resolved_by_dns:
            self.dns_routed_hits += hits
        if self.layout is not None:
            self.network_rtt_stats.add(self._page_rtt[slot])
        self._remaining[slot] = remaining - 1
        delay = self._think_sample()
        if not 0.0 <= delay < _INFINITY:
            raise SimulationError(
                f"timeout delay must be finite and >= 0, got {delay!r}"
            )
        env._eid = eid = env._eid + 1
        heappush(env._queue, (now + delay, _NORMAL_KEY | eid, wake))
        wake._callbacks = self._cb
        wake._processed = False

    def shard_stats(self) -> dict:
        """Per-shard accounting for provenance / workload info.

        Small summary (not the raw per-shard table) so manifests stay
        bounded at large populations.
        """
        sessions = self._shard_sessions
        return {
            "shard_size": self.shard_size,
            "shard_count": self.shard_count,
            "sessions_min": min(sessions) if sessions else 0,
            "sessions_max": max(sessions) if sessions else 0,
            "sessions_total": sum(sessions),
        }

    def snapshot_state(self) -> dict:
        """Workload counters and liveness census (for checkpoints).

        Key-for-key and value-for-value identical to the eager
        population's snapshot at any trajectory cut (wakes model endless
        clients, so the census always equals ``total_clients`` — exactly
        as the eager generators report).
        """
        return {
            "total_clients": self.total_clients,
            "total_sessions": self.total_sessions,
            "total_pages": self.total_pages,
            "total_hits": self.total_hits,
            "dns_routed_hits": self.dns_routed_hits,
            "client_cache_hits": self.client_cache_hits,
            "alive": sum(1 for process in self.processes if process.is_alive),
            "network_rtt_stats": self.network_rtt_stats.snapshot_state(),
        }

    def __repr__(self) -> str:
        return (
            f"<ShardedClientPopulation clients={self.total_clients} "
            f"shards={self.shard_count} domains={self.domains.domain_count} "
            f"hits={self.total_hits}>"
        )
