"""Trace-driven workload source: replayed arrival schedules.

The synthetic populations model a *closed* system — a fixed set of
clients cycling through sessions forever. Real authoritative-DNS load is
better described by an *open* arrival process whose rate ramps and swings
diurnally (see PAPERS.md: "Modeling and Predicting DNS Server Load",
Kanuparthy et al.'s rate-driven ingress measurements). This module
provides that source:

:class:`ArrivalSchedule`
    A piecewise-constant session arrival-rate schedule (sessions/second)
    with builders for constant rates, linear ramps, diurnal sine waves,
    and replay of access-log-style JSONL rate traces.
:class:`TraceDrivenPopulation`
    An open population driven by a schedule: per-shard thinned Poisson
    arrival processes (Lewis–Shedler against the schedule's peak rate —
    superposition-exact, so the shard count never changes the aggregate
    law) spawn *sessions*, not clients. Session state lives in flat
    slot arrays recycled through a free pool, so memory is bounded by
    the number of *concurrent* sessions — independent of how many
    arrivals a run replays. Each session resolves once (a fresh client
    identity), issues its geometric page bursts separated by think
    times, and releases its slot.

Selected with ``SimulationConfig.workload_source = "trace"`` / CLI
``--workload-source trace``; the schedule shape comes from the
``trace_profile`` / ``trace_rate`` / ``trace_amplitude`` /
``trace_period`` / ``trace_path`` fields. The source is deterministic
for a given seed (all draws come from the named ``workload.*`` streams)
but makes no bit-parity claim against the synthetic populations — it
models a different system. Under a fast-forward environment it counts a
``trace-workload`` fallback and event-steps.
"""

from __future__ import annotations

import json
import math
from array import array
from bisect import bisect_right
from heapq import heappush
from typing import List, Optional, Sequence, Tuple

from ..errors import ConfigurationError, SimulationError
from ..sim.events import Event, _NORMAL_KEY
from ..sim.fastforward import FastForwardEnvironment
from ..sim.rng import RandomStreams
from ..sim.stats import RunningStats as _RttStats
from ..sim.tracing import NullTracer
from .domains import DomainSet
from .dynamics import StaticDomains
from .sessions import SessionModel

__all__ = ["ArrivalSchedule", "TraceDrivenPopulation", "TraceSessionWake"]

_INFINITY = float("inf")

#: Default piecewise sampling resolution of the analytic profiles.
RAMP_SEGMENTS = 32
DIURNAL_SEGMENTS = 48


class ArrivalSchedule:
    """A piecewise-constant session arrival-rate schedule.

    Parameters
    ----------
    breakpoints:
        ``(time, rate)`` pairs, strictly increasing in time, first time
        0.0, rates >= 0 (sessions/second). Between breakpoints the rate
        is the last breakpoint's; past the final breakpoint it stays
        constant (or wraps when ``periodic``).
    periodic:
        Treat the schedule as one period of length ``period`` and wrap
        ``rate_at`` around it (diurnal profiles).
    period:
        Period length; defaults to the last breakpoint time + its
        segment width for built profiles, required explicitly otherwise
        when ``periodic``.
    """

    __slots__ = ("_times", "_rates", "periodic", "period", "profile")

    def __init__(
        self,
        breakpoints: Sequence[Tuple[float, float]],
        periodic: bool = False,
        period: Optional[float] = None,
        profile: str = "custom",
    ):
        if not breakpoints:
            raise ConfigurationError("an arrival schedule needs breakpoints")
        times: List[float] = []
        rates: List[float] = []
        for t, rate in breakpoints:
            t = float(t)
            rate = float(rate)
            if times and t <= times[-1]:
                raise ConfigurationError(
                    f"breakpoint times must be strictly increasing "
                    f"(got {t!r} after {times[-1]!r})"
                )
            if not 0.0 <= rate < _INFINITY:
                raise ConfigurationError(
                    f"arrival rates must be finite and >= 0, got {rate!r}"
                )
            times.append(t)
            rates.append(rate)
        if times[0] != 0.0:
            raise ConfigurationError(
                f"the first breakpoint must be at t=0, got {times[0]!r}"
            )
        if max(rates) <= 0.0:
            raise ConfigurationError("the schedule never has a positive rate")
        self._times = array("d", times)
        self._rates = array("d", rates)
        self.periodic = bool(periodic)
        if self.periodic:
            if period is None or period <= times[-1]:
                raise ConfigurationError(
                    "a periodic schedule needs period > last breakpoint time"
                )
            self.period = float(period)
        else:
            self.period = None
        self.profile = profile

    @property
    def peak_rate(self) -> float:
        """The schedule's maximum rate (the thinning majorant)."""
        return max(self._rates)

    def rate_at(self, t: float) -> float:
        """Arrival rate in effect at time ``t`` (sessions/second)."""
        if self.periodic:
            t = t % self.period
        elif t < 0.0:
            t = 0.0
        # times[0] == 0.0, so the index is always >= 1.
        return self._rates[bisect_right(self._times, t) - 1]

    # -- builders ----------------------------------------------------------

    @classmethod
    def constant(cls, rate: float) -> "ArrivalSchedule":
        """A stationary arrival rate."""
        return cls([(0.0, rate)], profile="constant")

    @classmethod
    def ramp(
        cls,
        base_rate: float,
        peak_rate: float,
        ramp_duration: float,
        segments: int = RAMP_SEGMENTS,
    ) -> "ArrivalSchedule":
        """A linear ramp from ``base_rate`` to ``peak_rate``.

        Sampled into ``segments`` piecewise-constant steps over
        ``ramp_duration``; the rate holds at ``peak_rate`` afterwards.
        """
        if ramp_duration <= 0:
            raise ConfigurationError(
                f"ramp_duration must be > 0, got {ramp_duration!r}"
            )
        if segments < 1:
            raise ConfigurationError(f"segments must be >= 1, got {segments!r}")
        width = ramp_duration / segments
        points = [
            (
                i * width,
                base_rate + (peak_rate - base_rate) * (i / segments),
            )
            for i in range(segments)
        ]
        points.append((ramp_duration, peak_rate))
        return cls(points, profile="ramp")

    @classmethod
    def diurnal(
        cls,
        mean_rate: float,
        amplitude: float,
        period: float,
        segments: int = DIURNAL_SEGMENTS,
    ) -> "ArrivalSchedule":
        """A diurnal wave: ``mean * (1 + amplitude * sin(2 pi t/period))``.

        Sampled at segment midpoints into a periodic piecewise-constant
        schedule. ``amplitude`` is relative, in [0, 1].
        """
        if period <= 0:
            raise ConfigurationError(f"period must be > 0, got {period!r}")
        if not 0.0 <= amplitude <= 1.0:
            raise ConfigurationError(
                f"amplitude must be in [0, 1], got {amplitude!r}"
            )
        if segments < 2:
            raise ConfigurationError(f"segments must be >= 2, got {segments!r}")
        width = period / segments
        points = []
        for i in range(segments):
            midpoint = (i + 0.5) * width
            rate = mean_rate * (
                1.0 + amplitude * math.sin(2.0 * math.pi * midpoint / period)
            )
            points.append((i * width, max(0.0, rate)))
        return cls(points, periodic=True, period=period, profile="diurnal")

    @classmethod
    def from_jsonl(cls, path: str) -> "ArrivalSchedule":
        """Replay a rate trace from a JSONL file.

        One object per line: ``{"t": <seconds>, "rate": <sessions/s>}``,
        times strictly increasing from 0. Blank lines are skipped.
        """
        points: List[Tuple[float, float]] = []
        with open(path, "r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    obj = json.loads(line)
                    points.append((float(obj["t"]), float(obj["rate"])))
                except (ValueError, KeyError, TypeError) as error:
                    raise ConfigurationError(
                        f"{path}:{lineno}: bad trace line {line!r} ({error})"
                    ) from error
        if not points:
            raise ConfigurationError(f"{path}: empty arrival trace")
        schedule = cls(points, profile="replay")
        return schedule

    def describe(self) -> dict:
        """Schedule summary for provenance manifests."""
        return {
            "profile": self.profile,
            "breakpoints": len(self._times),
            "peak_rate": self.peak_rate,
            "periodic": self.periodic,
            "period": self.period,
        }

    def __repr__(self) -> str:
        return (
            f"<ArrivalSchedule {self.profile} "
            f"breakpoints={len(self._times)} peak={self.peak_rate:g}/s>"
        )


class TraceSessionWake(Event):
    """A recyclable heap entry driving one active session's page cycle.

    Like :class:`~repro.workload.shards.ShardClientWake` but pooled:
    when its session ends, the wake (and its slot in the population's
    flat arrays) returns to the free pool for the next arrival. A
    recycled wake never has a pending heap entry — a session's last
    page burst does not schedule one — so reuse can never alias two
    live entries.
    """

    __slots__ = ("population", "slot")

    def __init__(self, env, population: "TraceDrivenPopulation", slot: int):
        self.env = env
        self.population = population
        self.slot = slot
        self._callbacks = None
        self._waiter = None
        self._value = None
        self._ok = True
        self._processed = False


class TraceDrivenPopulation:
    """Open, schedule-driven session workload (see module docstring).

    Drop-in attribute surface for the simulation wiring
    (``dns_control_fraction``, totals, ``network_rtt_stats``,
    ``snapshot_state``); ``engine`` is always ``"event"``.

    Parameters largely mirror
    :class:`~repro.workload.clients.ClientPopulation`; the additions:

    schedule:
        The :class:`ArrivalSchedule` to replay.
    shard_count:
        Number of independent thinned arrival processes (``None`` =
        sized from the expected concurrent-session count and
        ``shard_size``).
    shard_size:
        Target concurrent sessions per shard when auto-sizing.
    """

    __slots__ = (
        "env",
        "cluster",
        "resolution_chain",
        "domains",
        "session_model",
        "schedule",
        "total_clients",
        "tracer",
        "dynamics",
        "client_address_caching",
        "client_cache_hits",
        "layout",
        "network_rtt_stats",
        "_think_rng",
        "_pages_rng",
        "_hits_rng",
        "_arrival_rng",
        "_think_sample",
        "_pages_sample",
        "_hits_sample",
        "dns_routed_hits",
        "total_hits",
        "total_pages",
        "total_sessions",
        "total_arrivals",
        "active_sessions",
        "peak_active_sessions",
        "shard_count",
        "_shard_arrivals",
        "_remaining",
        "_server",
        "_resolved",
        "_domain",
        "_page_rtt",
        "_wakes",
        "_free",
        "_cb",
        "processes",
        "engine",
    )

    def __init__(
        self,
        env,
        cluster,
        resolution_chain,
        domains: DomainSet,
        session_model: SessionModel,
        schedule: ArrivalSchedule,
        streams: RandomStreams,
        total_clients: int = 0,
        tracer=None,
        dynamics=None,
        layout=None,
        metrics=None,
        shard_count: Optional[int] = None,
        shard_size: int = 4096,
    ):
        self.env = env
        self.cluster = cluster
        self.resolution_chain = resolution_chain
        self.domains = domains
        self.session_model = session_model
        self.schedule = schedule
        #: Nominal closed-population scale this schedule stands in for
        #: (0 = pure open workload); informational only.
        self.total_clients = total_clients
        self.tracer = tracer if tracer is not None else NullTracer()
        self.dynamics = dynamics if dynamics is not None else StaticDomains()
        #: Sessions are fresh client identities; there is nothing to
        #: cache client-side (config validation rejects the combination).
        self.client_address_caching = False
        self.client_cache_hits = 0
        self.layout = layout
        self.network_rtt_stats = _RttStats()
        self._think_rng = streams.stream("workload.think")
        self._pages_rng = streams.stream("workload.pages")
        self._hits_rng = streams.stream("workload.hits")
        #: Dedicated stream: arrival thinning + domain draws stay
        #: independent of the per-session think/pages/hits draws.
        self._arrival_rng = streams.stream("workload.arrivals")
        self._think_sample = session_model.think_time.sampler(self._think_rng)
        self._pages_sample = session_model.pages_per_session.sampler(
            self._pages_rng
        )
        self._hits_sample = session_model.hits_per_page.sampler(self._hits_rng)
        self.dns_routed_hits = 0
        self.total_hits = 0
        self.total_pages = 0
        self.total_sessions = 0
        #: Arrivals accepted by the thinning (== sessions started).
        self.total_arrivals = 0
        self.active_sessions = 0
        self.peak_active_sessions = 0
        if shard_count is None:
            # Expected concurrent sessions at peak rate (Little's law:
            # arrival rate x mean session duration), one shard per
            # `shard_size` of them, clamped to a sane range.
            mean_session = (
                session_model.pages_per_session.mean
                * session_model.think_time.mean
            )
            concurrent = schedule.peak_rate * mean_session
            shard_count = max(1, min(64, -(-int(concurrent) // shard_size)))
        if shard_count < 1:
            raise ConfigurationError(
                f"shard_count must be >= 1, got {shard_count!r}"
            )
        self.shard_count = shard_count
        self._shard_arrivals = array("q", bytes(8 * shard_count))
        # Flat slot-pool session state; grows to the high-water mark of
        # concurrent sessions and is recycled thereafter.
        self._remaining = array("q")
        self._server = array("q")
        self._resolved = bytearray()
        self._domain = array("q")
        self._page_rtt = array("d") if layout is not None else None
        self._wakes: List[TraceSessionWake] = []
        self._free: List[int] = []
        self._cb = [self._on_wake]
        self.engine = "event"
        if isinstance(env, FastForwardEnvironment):
            env.count_fallback("trace-workload")
        if metrics is not None:
            metrics.register("workload.sessions", lambda: self.total_sessions)
            metrics.register("workload.pages", lambda: self.total_pages)
            metrics.register("workload.hits", lambda: self.total_hits)
            metrics.register(
                "workload.dns_routed_hits", lambda: self.dns_routed_hits
            )
            metrics.register(
                "workload.client_cache_hits", lambda: self.client_cache_hits
            )
            metrics.register("workload.arrivals", lambda: self.total_arrivals)
            metrics.register(
                "workload.active_sessions", lambda: self.active_sessions
            )
            metrics.register(
                "workload.session_slots", lambda: len(self._wakes)
            )
        self.processes = [
            env.process(self._shard_driver(shard_id))
            for shard_id in range(shard_count)
        ]

    @property
    def dns_control_fraction(self) -> float:
        """Fraction of hits in sessions the DNS directly routed."""
        return self.dns_routed_hits / self.total_hits if self.total_hits else 0.0

    # -- arrivals ----------------------------------------------------------

    def _shard_driver(self, shard_id: int):
        """One shard's thinned Poisson arrival process (Lewis–Shedler).

        Candidate arrivals come from a homogeneous Poisson process at
        ``peak_rate / shard_count``; each candidate at time ``t`` is
        accepted with probability ``rate_at(t) / peak_rate``. The
        superposition of the shards is exactly a nonhomogeneous Poisson
        process with intensity ``rate_at`` — independent of the shard
        count.
        """
        env = self.env
        timeout = env.timeout
        rng = self._arrival_rng
        expovariate = rng.expovariate
        random = rng.random
        schedule = self.schedule
        rate_at = schedule.rate_at
        peak = schedule.peak_rate
        lam = peak / self.shard_count
        shard_arrivals = self._shard_arrivals
        while True:
            yield timeout(expovariate(lam))
            now = env.now
            if random() * peak <= rate_at(now):
                shard_arrivals[shard_id] += 1
                self._start_session(now)

    def _claim_slot(self) -> int:
        """A free session slot, growing the pool at the high-water mark."""
        free = self._free
        if free:
            return free.pop()
        slot = len(self._wakes)
        self._wakes.append(TraceSessionWake(self.env, self, slot))
        self._remaining.append(0)
        self._server.append(0)
        self._resolved.append(0)
        self._domain.append(0)
        if self._page_rtt is not None:
            self._page_rtt.append(0.0)
        return slot

    def _start_session(self, now: float) -> None:
        """Begin one session: resolve, first page burst, schedule rest."""
        session_id = self.total_arrivals
        self.total_arrivals += 1
        domain_id = self.domains.sample_domain(self._arrival_rng.random())
        dynamics = self.dynamics
        if not dynamics.is_static:
            domain_id = dynamics.current_domain(domain_id, now)
        chain = self.resolution_chain
        before = chain.authoritative_answers
        record = chain.resolve(domain_id, now, session_id)
        resolved_by_dns = chain.authoritative_answers > before
        pages = int(self._pages_sample())
        self.total_sessions += 1
        tracer = self.tracer
        if tracer.enabled:
            tracer.record(
                now,
                "session",
                {
                    "client": session_id,
                    "domain": domain_id,
                    "server": record.server_id,
                    "pages": pages,
                    "dns": resolved_by_dns,
                },
            )
        if pages < 1:
            return  # a zero-page session contributes nothing
        slot = self._claim_slot()
        self._domain[slot] = domain_id
        self._server[slot] = record.server_id
        self._resolved[slot] = 1 if resolved_by_dns else 0
        self._remaining[slot] = pages
        if self.layout is not None:
            self._page_rtt[slot] = self.layout.rtt(domain_id, record.server_id)
        self.active_sessions += 1
        if self.active_sessions > self.peak_active_sessions:
            self.peak_active_sessions = self.active_sessions
        self._run_page(self._wakes[slot], now)

    def _run_page(self, wake: TraceSessionWake, now: float) -> None:
        """Issue one page burst; schedule the next or end the session."""
        slot = wake.slot
        domain_id = self._domain[slot]
        hits = int(self._hits_sample())
        self.cluster.servers[self._server[slot]].offer(now, hits, domain_id)
        self.total_pages += 1
        self.total_hits += hits
        if self._resolved[slot]:
            self.dns_routed_hits += hits
        if self.layout is not None:
            self.network_rtt_stats.add(self._page_rtt[slot])
        remaining = self._remaining[slot] - 1
        self._remaining[slot] = remaining
        if remaining <= 0:
            # Session over: release the slot. No heap entry is pending
            # for this wake, so the next claimant cannot alias it.
            self.active_sessions -= 1
            self._free.append(slot)
            return
        env = self.env
        delay = self._think_sample()
        if not 0.0 <= delay < _INFINITY:
            raise SimulationError(
                f"timeout delay must be finite and >= 0, got {delay!r}"
            )
        wake._callbacks = self._cb
        wake._processed = False
        env._eid = eid = env._eid + 1
        heappush(env._queue, (now + delay, _NORMAL_KEY | eid, wake))

    def _on_wake(self, wake: TraceSessionWake) -> None:
        """Dispatch a pending mid-session page burst."""
        self._run_page(wake, self.env._now)

    # -- reporting ---------------------------------------------------------

    def shard_stats(self) -> dict:
        """Arrival-process accounting for provenance / workload info."""
        arrivals = self._shard_arrivals
        return {
            "shard_count": self.shard_count,
            "arrivals_min": min(arrivals) if arrivals else 0,
            "arrivals_max": max(arrivals) if arrivals else 0,
            "arrivals_total": sum(arrivals),
            "session_slots": len(self._wakes),
            "peak_active_sessions": self.peak_active_sessions,
            "schedule": self.schedule.describe(),
        }

    def snapshot_state(self) -> dict:
        """Workload counters + open-session census (for checkpoints)."""
        return {
            "total_clients": self.total_clients,
            "total_sessions": self.total_sessions,
            "total_pages": self.total_pages,
            "total_hits": self.total_hits,
            "dns_routed_hits": self.dns_routed_hits,
            "client_cache_hits": self.client_cache_hits,
            "alive": self.active_sessions,
            "network_rtt_stats": self.network_rtt_stats.snapshot_state(),
            "arrivals": self.total_arrivals,
            "session_slots": len(self._wakes),
        }

    def __repr__(self) -> str:
        return (
            f"<TraceDrivenPopulation {self.schedule.profile} "
            f"shards={self.shard_count} active={self.active_sessions} "
            f"sessions={self.total_sessions}>"
        )
