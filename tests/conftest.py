"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.core.estimator import OracleEstimator
from repro.core.state import SchedulerState
from repro.sim.engine import Environment
from repro.sim.rng import RandomStreams
from repro.web.cluster import ServerCluster
from repro.workload.domains import DomainSet


@pytest.fixture
def env():
    """A fresh simulation environment."""
    return Environment()


@pytest.fixture
def streams():
    """Deterministic random streams."""
    return RandomStreams(12345)


def make_state(
    heterogeneity: int = 20,
    domain_count: int = 20,
    uniform: bool = False,
) -> SchedulerState:
    """A SchedulerState over a Table 2 cluster with oracle Zipf weights."""
    cluster = ServerCluster.from_heterogeneity(heterogeneity)
    domains = (
        DomainSet.uniform(domain_count)
        if uniform
        else DomainSet.pure_zipf(domain_count)
    )
    return SchedulerState(cluster, OracleEstimator(domains.shares))


@pytest.fixture
def state():
    """Default scheduler state: het 20%, 20 Zipf domains."""
    return make_state()
