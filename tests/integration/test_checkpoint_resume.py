"""Resume-equivalence harness: the checkpoint layer's proof of correctness.

A checkpoint here is a replay marker with a proof obligation (see
:mod:`repro.sim.checkpoint`): resuming rebuilds the simulation from the
recorded config, replays deterministically to the cut and verifies a
SHA-256 digest over the *entire* serializable model state — RNG
substream positions, DNS and NS cache contents and clocks, Welford
accumulators, alarm/monitor state, workload census, metrics registry —
before continuing. These tests turn that design into checked claims:

* an interrupted-then-resumed run returns a ``SimulationResult`` equal
  (dataclass equality — bit-equality of every float) to the
  uninterrupted run's, and its artifact bundle (result JSON, trace
  JSONL, Prometheus metrics) is **byte**-identical;
* the equivalence holds for arbitrary cut positions — Hypothesis drives
  cuts at arbitrary simulated times and at arbitrary *event counts*
  (via ``Environment.run_events``), and a stateful machine interleaves
  advancing, checkpointing and crash-replay at random;
* tampered state, a forged digest, a foreign engine version and an
  empty checkpoint directory all fail loudly instead of resuming
  wrongly.

The heavyweight randomized sweeps are marked ``slow`` (run with
``-m slow``; CI has a dedicated job) — the deterministic parity proofs
stay in tier 1.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.errors import CheckpointError, CheckpointMismatchError
from repro.experiments.checkpointing import (
    make_cell_task,
    resume_run,
    run_checkpointed_cell,
    run_with_checkpoints,
    take_checkpoint,
    verify_checkpoint,
)
from repro.experiments.config import SimulationConfig
from repro.experiments.simulation import Simulation, run_simulation
from repro.sim.checkpoint import (
    latest_checkpoint,
    list_checkpoints,
    read_checkpoint,
    state_digest,
    write_checkpoint,
)

pytestmark = pytest.mark.resume

#: Small but complete: adaptive policy, measured estimator (a periodic
#: collection process), alarms armed, tracing and series retention on —
#: every subsystem whose state a checkpoint must cover is exercised.
SMALL = dict(
    policy="DRR2-TTL/S_K",
    duration=180.0,
    seed=11,
    heterogeneity=50,
    domain_count=6,
    total_clients=40,
    estimator="measured",
    trace=True,
    keep_utilization_series=True,
)


def small_config(**overrides) -> SimulationConfig:
    return SimulationConfig(**{**SMALL, **overrides})


@pytest.fixture(scope="module")
def straight_result():
    """The uninterrupted reference run every parity test compares to."""
    return run_simulation(small_config())


# -- deterministic parity proofs (tier 1) ------------------------------------


def test_uninterrupted_checkpointed_run_matches_plain(
    tmp_path, straight_result
):
    """Checkpointing observes the run without perturbing it."""
    result = run_with_checkpoints(
        small_config(), every=40.0, directory=tmp_path
    )
    assert result == straight_result
    names = [path.name for path in list_checkpoints(tmp_path)]
    assert names == [f"checkpoint-{k:06d}.json" for k in (1, 2, 3, 4)]


@pytest.mark.parametrize("halt_at", [1.0, 75.0, 160.0])
def test_halted_then_resumed_run_is_bit_identical(
    tmp_path, straight_result, halt_at
):
    """Crash at any checkpoint boundary; the stitched run is the run."""
    halted = run_with_checkpoints(
        small_config(), every=40.0, directory=tmp_path, halt_at=halt_at
    )
    assert halted is None, "halt_at must interrupt the run"
    resumed = resume_run(tmp_path)
    assert resumed == straight_result


def test_artifact_bundles_byte_identical(tmp_path, straight_result):
    """Not just equal objects: the on-disk bundles match byte for byte."""
    full_dir = tmp_path / "full"
    cut_dir = tmp_path / "cut"
    full = run_with_checkpoints(
        small_config(), every=40.0, directory=full_dir
    )
    assert full == straight_result
    assert (
        run_with_checkpoints(
            small_config(), every=40.0, directory=cut_dir, halt_at=80.0
        )
        is None
    )
    assert resume_run(cut_dir) == straight_result
    for name in ("run.json", "run.trace.jsonl", "run.metrics.prom"):
        assert (full_dir / name).read_bytes() == (
            cut_dir / name
        ).read_bytes(), f"{name} differs between full and resumed bundles"


def test_double_interruption_still_converges(tmp_path, straight_result):
    """A resumed run can itself crash and resume, indefinitely."""
    config = small_config()
    assert (
        run_with_checkpoints(
            config, every=20.0, directory=tmp_path, halt_at=20.0
        )
        is None
    )
    assert resume_run(tmp_path, halt_at=100.0) is None
    assert resume_run(tmp_path) == straight_result


def test_resume_continues_original_cadence(tmp_path):
    """Post-resume checkpoints land on the original boundary grid."""
    assert (
        run_with_checkpoints(
            small_config(), every=40.0, directory=tmp_path, halt_at=40.0
        )
        is None
    )
    assert resume_run(tmp_path) is not None
    sequences = [
        read_checkpoint(path).sequence for path in list_checkpoints(tmp_path)
    ]
    times = [
        read_checkpoint(path).time for path in list_checkpoints(tmp_path)
    ]
    assert sequences == [1, 2, 3, 4]
    assert times == [40.0, 80.0, 120.0, 160.0]


def test_executor_cell_runs_resumes_and_reloads(tmp_path, straight_result):
    """The grid-cell worker: fresh run, resume, completed-cell reload."""
    config = small_config()
    task = make_cell_task(config, tmp_path, 40.0)
    # Interrupt the cell out-of-band, then let the worker resume it.
    assert (
        run_with_checkpoints(
            config, every=40.0, directory=tmp_path, halt_at=80.0
        )
        is None
    )
    assert run_checkpointed_cell(task) == straight_result
    # A second call must reload the finished bundle — including the
    # trace — rather than recompute, and still compare equal.
    assert run_checkpointed_cell(task) == straight_result


def test_executor_cell_rejects_colliding_directory(tmp_path):
    """A cell directory holding a different config's run fails loudly."""
    config = small_config()
    assert (
        run_with_checkpoints(config, every=40.0, directory=tmp_path)
        is not None
    )
    other = small_config(seed=12)
    with pytest.raises(CheckpointMismatchError):
        run_checkpointed_cell(make_cell_task(other, tmp_path, 40.0))


# -- failure modes must fail loudly ------------------------------------------


def _halted_checkpoint_dir(tmp_path):
    assert (
        run_with_checkpoints(
            small_config(), every=40.0, directory=tmp_path, halt_at=40.0
        )
        is None
    )
    return list_checkpoints(tmp_path)[-1]


def test_resume_rejects_tampered_state(tmp_path):
    """Editing recorded state (digest recomputed) is caught by replay."""
    path = _halted_checkpoint_dir(tmp_path)
    data = json.loads(path.read_text())
    data["state"]["dns"]["resolutions"] += 1
    data["digest"] = state_digest(data["state"])
    path.write_text(json.dumps(data))
    with pytest.raises(CheckpointMismatchError) as excinfo:
        resume_run(tmp_path)
    assert excinfo.value.field == "state.dns"


def test_resume_rejects_forged_digest(tmp_path):
    path = _halted_checkpoint_dir(tmp_path)
    data = json.loads(path.read_text())
    data["digest"] = "0" * 64
    path.write_text(json.dumps(data))
    with pytest.raises(CheckpointMismatchError) as excinfo:
        resume_run(tmp_path)
    assert excinfo.value.field == "digest"


def test_resume_rejects_tampered_config(tmp_path):
    """An edited config no longer matches its recorded hash."""
    path = _halted_checkpoint_dir(tmp_path)
    data = json.loads(path.read_text())
    data["config"]["seed"] = 999
    path.write_text(json.dumps(data))
    with pytest.raises(CheckpointMismatchError) as excinfo:
        resume_run(tmp_path)
    assert excinfo.value.field == "config_hash"


def test_resume_rejects_foreign_engine_version(tmp_path):
    path = _halted_checkpoint_dir(tmp_path)
    data = json.loads(path.read_text())
    data["engine_version"] = "0.0.0"
    path.write_text(json.dumps(data))
    with pytest.raises(CheckpointError, match="0.0.0"):
        resume_run(tmp_path)


def test_resume_requires_checkpoints(tmp_path):
    with pytest.raises(CheckpointError, match="no checkpoints"):
        resume_run(tmp_path / "empty")


def test_checkpoint_file_roundtrip(tmp_path):
    """write -> read reproduces the Checkpoint dataclass exactly."""
    sim = Simulation(small_config())
    sim.advance(50.0)
    checkpoint = take_checkpoint(sim, sequence=1, every=50.0)
    path = write_checkpoint(checkpoint, tmp_path)
    assert read_checkpoint(path) == checkpoint
    assert latest_checkpoint(tmp_path) == checkpoint
    # And the replayed verify passes against the file's contents.
    replay = Simulation(small_config())
    replay.advance(50.0)
    verify_checkpoint(replay, read_checkpoint(path))


# -- randomized cut-point harness --------------------------------------------

#: A faster scenario for the Hypothesis sweeps (one simulation per
#: example): same subsystems, smaller population, shorter clock.
TINY = dict(SMALL, duration=120.0, total_clients=20, seed=23)

_tiny_cache = {}


def _tiny_reference():
    """Straight run of the TINY scenario (computed once per session)."""
    if "result" not in _tiny_cache:
        _tiny_cache["result"] = run_simulation(SimulationConfig(**TINY))
        probe = Simulation(SimulationConfig(**TINY))
        probe.advance(90.0)
        _tiny_cache["digest_at_90"] = state_digest(probe.snapshot_state())
    return _tiny_cache


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    cuts=st.lists(
        st.floats(
            min_value=0.1,
            max_value=89.9,
            allow_nan=False,
            allow_infinity=False,
        ),
        min_size=1,
        max_size=5,
    )
)
def test_arbitrary_time_cuts_preserve_state_and_result(cuts):
    """Segmenting at *any* times changes neither state nor outcome."""
    reference = _tiny_reference()
    sim = Simulation(SimulationConfig(**TINY))
    for cut in sorted(cuts):
        sim.advance(cut)
    sim.advance(90.0)
    assert state_digest(sim.snapshot_state()) == reference["digest_at_90"]
    assert sim.run() == reference["result"]


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(events=st.integers(min_value=0, max_value=3000))
def test_arbitrary_event_count_cuts_preserve_result(events):
    """Cutting after N *dispatched events* (not a time boundary) and
    continuing yields the uninterrupted result — the reference-dispatch
    cut primitive behind arbitrary-position checkpoint proofs."""
    reference = _tiny_reference()
    sim = Simulation(SimulationConfig(**TINY))
    dispatched = sim.env.run_events(events, until=TINY["duration"])
    assert dispatched <= events
    assert sim.run() == reference["result"]


class CheckpointResumeMachine(RuleBasedStateMachine):
    """Random interleaving of advancing, checkpointing and crash-replay.

    Two simulations of the same config march in lockstep; at any point
    the machine may "crash" one of them and replace it with a fresh
    replay (digest-verified against a checkpoint of the victim). The
    invariant — both full-state digests always agree — is exactly the
    claim that a resume is indistinguishable from never having crashed.
    """

    def __init__(self):
        super().__init__()
        self.config = SimulationConfig(**TINY)
        self.reference = Simulation(self.config)
        self.subject = Simulation(self.config)
        self.clock = 0.0

    @rule(delta=st.floats(min_value=0.5, max_value=25.0))
    def advance_both(self, delta):
        self.clock = min(self.clock + delta, self.config.duration)
        self.reference.advance(self.clock)
        self.subject.advance(self.clock)

    # Real checkpoints are only taken at boundaries >= the cadence > 0;
    # "constructed but never run" is not a replayable cut (run(until=0)
    # would dispatch the t=0 start events the constructor only queued).
    @precondition(lambda self: self.clock > 0.0)
    @rule()
    def crash_and_replay(self):
        checkpoint = take_checkpoint(self.subject, sequence=0, every=1.0)
        replacement = Simulation(self.config)
        replacement.advance(checkpoint.time)
        verify_checkpoint(replacement, checkpoint)
        self.subject = replacement

    @invariant()
    def digests_agree(self):
        assert state_digest(self.subject.snapshot_state()) == state_digest(
            self.reference.snapshot_state()
        )


CheckpointResumeMachine.TestCase.settings = settings(
    max_examples=6,
    stateful_step_count=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

TestCheckpointResumeMachine = pytest.mark.slow(
    CheckpointResumeMachine.TestCase
)
