"""Distributed dispatch: the remote backend's determinism and crash proofs.

These tests run a real coordinator (in-process, via
:class:`~repro.experiments.dispatch.RemoteBackend`) against real
``repro worker serve`` agents in subprocesses, over localhost TCP, and
turn the design claims of ``docs/DISTRIBUTED.md`` into checked facts:

* a grid dispatched to two workers returns results **equal in every
  serialized field** to the serial local run, and its checkpointed
  artifact bundles are **byte**-identical file-for-file;
* killing a worker mid-grid (the ``--crash-after`` chaos hook — a real
  ``os._exit`` while holding a lease) loses nothing: the dead worker's
  cells are re-leased, every cell completes exactly once, and the final
  bundles are byte-identical to the undisturbed run's;
* worker provenance lands in the cell manifests, never in the results.

Durations are tiny (a few hundred simulated seconds per cell) so the
whole module stays in tier 1.
"""

import json
import os
import pathlib
import subprocess
import sys

import pytest

from repro.experiments.config import SimulationConfig
from repro.experiments.dispatch import CRASH_EXIT_STATUS, RemoteBackend
from repro.experiments.executor import ParallelExecutor
from repro.experiments.persistence import result_to_dict
from repro.experiments.simulation import run_simulation

#: Artifacts compared byte-for-byte between backends. Manifests are
#: excluded by design: they carry timestamps and (on purpose) the
#: worker identity that produced each cell.
BUNDLE_FILES = ("run.json", "run.trace.jsonl", "run.metrics.prom")


def _grid_configs():
    """A small mixed-policy batch — enough cells to share around."""
    return [
        SimulationConfig(
            policy=policy, heterogeneity=het, duration=400.0, seed=11
        )
        for policy in ("RR", "DAL", "DRR2-TTL/S_K")
        for het in (20, 35)
    ]


def _spawn_worker(address, *, worker_id, crash_after=None, timeout=30.0):
    """Start one ``repro worker serve`` agent as a subprocess."""
    host, port = address
    argv = [
        sys.executable, "-m", "repro", "worker", "serve",
        "--connect", f"{host}:{port}",
        "--connect-timeout", "5",
        "--id", worker_id,
    ]
    if crash_after is not None:
        argv += ["--crash-after", str(crash_after)]
    env = dict(os.environ)
    src = str(pathlib.Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        argv, env=env,
        stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True,
    )


def _run_remote(configs, *, workers, checkpoint_dir=None, crash_first=False,
                lease_timeout=15.0):
    """Dispatch ``configs`` to ``workers`` fresh subprocess agents."""
    backend = RemoteBackend(
        ("127.0.0.1", 0), lease_timeout=lease_timeout, timeout=120.0
    )
    address = backend.bind()
    executor = ParallelExecutor(
        backend=backend,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=100.0 if checkpoint_dir is not None else 0.0,
    )
    agents = []
    try:
        for index in range(workers):
            agents.append(_spawn_worker(
                address,
                worker_id=f"w{index}",
                crash_after=1 if crash_first and index == 0 else None,
            ))
        results = executor.run_simulations(
            configs, labels=[c.policy for c in configs]
        )
    finally:
        backend.close()
        for agent in agents:
            try:
                agent.wait(timeout=30)
            except subprocess.TimeoutExpired:  # pragma: no cover
                agent.kill()
                agent.wait()
            agent.stderr.close()
    return results, executor, agents


class TestRemoteParity:
    def test_two_workers_match_serial_local(self, tmp_path):
        configs = _grid_configs()
        remote_dir = tmp_path / "remote"
        local_dir = tmp_path / "local"

        results, executor, agents = _run_remote(
            configs, workers=2, checkpoint_dir=remote_dir
        )
        assert all(agent.returncode == 0 for agent in agents)

        local = ParallelExecutor(
            workers=1, checkpoint_dir=local_dir, checkpoint_every=100.0
        ).run_simulations(configs)

        # Field-for-field equality of every serialized result...
        assert (
            [result_to_dict(r) for r in results]
            == [result_to_dict(r) for r in local]
        )
        # ...and byte-identical artifact bundles, cell for cell.
        for index in range(len(configs)):
            cell = f"cell-{index:04d}"
            for name in BUNDLE_FILES:
                local_file = local_dir / cell / name
                remote_file = remote_dir / cell / name
                if not local_file.exists():
                    assert not remote_file.exists()
                    continue
                assert remote_file.read_bytes() == local_file.read_bytes(), (
                    f"{cell}/{name} differs between backends"
                )

    def test_stats_and_dispatch_info_describe_the_batch(self):
        configs = _grid_configs()[:4]
        results, executor, agents = _run_remote(configs, workers=2)
        stats = executor.last_stats
        assert stats is not None
        assert stats.cell_count == len(configs)
        assert stats.workers == 2
        info = executor.dispatch_info()
        assert info["backend"] == "remote"
        roster = {entry["worker"]: entry["cells"] for entry in info["roster"]}
        assert set(roster) == {"w0", "w1"}
        assert sum(roster.values()) == len(configs)

    def test_remote_without_checkpointing_matches_plain_runs(self):
        configs = _grid_configs()[:3]
        results, executor, agents = _run_remote(configs, workers=2)
        expected = [run_simulation(c) for c in configs]
        assert (
            [result_to_dict(r) for r in results]
            == [result_to_dict(r) for r in expected]
        )


class TestWorkerCrash:
    def test_killed_worker_loses_no_cells(self, tmp_path):
        configs = _grid_configs()
        crash_dir = tmp_path / "crash"
        clean_dir = tmp_path / "clean"

        # Worker w0 completes one cell, takes another lease, and dies
        # mid-cell via os._exit — no cleanup, no goodbye on the wire.
        results, executor, agents = _run_remote(
            configs, workers=2, checkpoint_dir=crash_dir, crash_first=True
        )
        statuses = sorted(agent.returncode for agent in agents)
        assert statuses == [0, CRASH_EXIT_STATUS]

        # Every cell still completed, exactly once.
        stats = executor.last_stats
        assert stats.cell_count == len(configs)
        seen = [index for index, _, _ in executor.backend.last_outcome.completions]
        assert sorted(seen) == list(range(len(configs)))
        assert executor.backend.last_outcome.retried, (
            "the killed worker's lease was never re-pooled"
        )

        # And the bundles are byte-identical to an undisturbed run's.
        clean, _, _ = _run_remote(
            configs, workers=2, checkpoint_dir=clean_dir
        )
        assert (
            [result_to_dict(r) for r in results]
            == [result_to_dict(r) for r in clean]
        )
        for index in range(len(configs)):
            cell = f"cell-{index:04d}"
            for name in BUNDLE_FILES:
                clean_file = clean_dir / cell / name
                crash_file = crash_dir / cell / name
                if not clean_file.exists():
                    continue
                assert crash_file.read_bytes() == clean_file.read_bytes(), (
                    f"{cell}/{name} differs after the crash-recovery run"
                )


class TestProvenance:
    def test_cell_manifests_name_their_worker(self, tmp_path):
        configs = _grid_configs()[:2]
        directory = tmp_path / "prov"
        results, executor, agents = _run_remote(
            configs, workers=1, checkpoint_dir=directory
        )
        for index in range(len(configs)):
            manifest = json.loads(
                (directory / f"cell-{index:04d}" / "run.manifest.json")
                .read_text()
            )
            dispatch = manifest["dispatch"]
            assert dispatch["backend"] == "remote"
            assert dispatch["worker"] == "w0"
            # The result JSON stays placement-free: byte-identity across
            # backends depends on it.
            result = json.loads(
                (directory / f"cell-{index:04d}" / "run.json").read_text()
            )
            assert "dispatch" not in result


@pytest.mark.slow
class TestRemoteCli:
    def test_grid_command_over_remote_backend(self, tmp_path):
        src = str(pathlib.Path(__file__).resolve().parents[2] / "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        port = 7591
        workers = [
            _spawn_worker(("127.0.0.1", port), worker_id=f"cli{i}")
            for i in range(2)
        ]
        try:
            completed = subprocess.run(
                [
                    sys.executable, "-m", "repro", "grid",
                    "--rows", "policy=RR,DRR2-TTL/S_K",
                    "--cols", "heterogeneity=20,35",
                    "--duration", "300",
                    "--backend", "remote",
                    "--listen", f"127.0.0.1:{port}",
                ],
                env=env, capture_output=True, text=True, timeout=300,
            )
        finally:
            for agent in workers:
                try:
                    agent.wait(timeout=30)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    agent.kill()
                    agent.wait()
                agent.stderr.close()
        assert completed.returncode == 0, completed.stderr
        assert "DRR2-TTL/S_K" in completed.stdout
        assert "workers" in completed.stdout  # the execution block
