"""Smoke tests: every example script runs end-to-end.

Examples are part of the public deliverable; these tests run each one in
a subprocess with a tiny simulated duration so breakage is caught by CI
rather than by readers. Marked ``slow`` (a few minutes total).
"""

import pathlib
import subprocess
import sys

import pytest

pytestmark = pytest.mark.slow

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name, *args, timeout=600):
    """Run one example script; returns its stdout."""
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert completed.returncode == 0, completed.stderr
    return completed.stdout


def test_quickstart():
    out = run_example("quickstart.py", "DRR2-TTL/S_K", "400")
    assert "Cumulative frequency" in out
    assert "DNS directly controlled" in out


def test_compare_policies():
    out = run_example("compare_policies.py", "35", "300")
    assert "DRR2-TTL/S_K" in out
    assert "IDEAL" in out
    assert "P(max<0.98)" in out


def test_noncooperative_resolvers():
    out = run_example("noncooperative_resolvers.py", "50", "300")
    assert "min TTL 120s" in out
    assert "crossover" in out


def test_capacity_planning():
    out = run_example("capacity_planning.py", "300")
    assert "client population" in out
    assert "DRR2-TTL/S_K" in out


def test_custom_policy():
    out = run_example("custom_policy.py", "300")
    assert "P2C" in out
    assert "higher is better" in out


def test_dynamic_workload():
    out = run_example("dynamic_workload.py", "200", "400")
    assert "rotating" in out
    assert "oracle" in out


def test_geographic_routing():
    out = run_example("geographic_routing.py", "300")
    assert "PROXIMITY" in out
    assert "total latency" in out


def test_reproduce_paper(tmp_path):
    out = run_example(
        "reproduce_paper.py", "120", str(tmp_path), timeout=1200
    )
    assert "report written" in out
    report = (tmp_path / "REPORT.md").read_text()
    assert "# Reproduction report" in report
    for figure_id in ("fig1", "fig4", "fig7"):
        assert figure_id in report
        assert (tmp_path / f"{figure_id}.csv").exists()
        assert (tmp_path / f"{figure_id}.json").exists()
