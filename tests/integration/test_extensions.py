"""Integration tests for the extension features.

Client-side address caching, time-varying domain popularity, the
sliding-window estimator, response-time metrics, utilization series
retention, and the analysis toolbox on real simulation output.
"""

import pytest

from repro.analysis import (
    jain_fairness_index,
    max_series,
    overload_episodes,
    paired_comparison,
    server_series,
    stochastically_dominates,
)
from repro.experiments.config import SimulationConfig
from repro.experiments.simulation import Simulation, run_simulation

QUICK = dict(duration=900.0, seed=9)


class TestClientAddressCaching:
    def test_cache_hits_counted(self):
        simulation = Simulation(
            SimulationConfig(policy="RR", client_address_caching=True, **QUICK)
        )
        simulation.run()
        assert simulation.population.client_cache_hits > 0

    def test_caching_reduces_ns_lookups(self):
        plain = Simulation(SimulationConfig(policy="RR", **QUICK))
        plain.run()
        cached = Simulation(
            SimulationConfig(policy="RR", client_address_caching=True, **QUICK)
        )
        cached.run()
        lookups = lambda sim: (
            sim.resolution_chain.cache_answers
            + sim.resolution_chain.authoritative_answers
        )
        assert lookups(cached) < lookups(plain)

    def test_disabled_by_default(self):
        simulation = Simulation(SimulationConfig(policy="RR", **QUICK))
        simulation.run()
        assert simulation.population.client_cache_hits == 0


class TestWorkloadDynamics:
    def test_rotation_config_validated(self):
        with pytest.raises(Exception):
            SimulationConfig(hot_rotation_interval=100.0, hot_rotation_count=1)
        with pytest.raises(Exception):
            SimulationConfig(
                hot_rotation_interval=100.0, hot_rotation_count=50
            )

    def test_rotation_spreads_domain_traffic(self):
        config = SimulationConfig(
            policy="RR",
            hot_rotation_interval=120.0,
            hot_rotation_count=5,
            trace=True,
            **QUICK,
        )
        result = run_simulation(config)
        # Sessions tagged with the hottest nominal domain appear under
        # several rotating identities over time.
        domains_used = {
            record.payload["domain"]
            for record in result.trace
            if record.category == "session"
        }
        assert {0, 1, 2, 3, 4} <= domains_used

    def test_rotation_hurts_stale_oracle(self):
        base = SimulationConfig(
            policy="DRR2-TTL/S_K",
            heterogeneity=35,
            duration=2400.0,
            seed=9,
            hot_rotation_interval=180.0,
        )
        # A rotating workload is *harder*; the run must still behave.
        result = run_simulation(base)
        assert 0.0 <= result.prob_max_below(0.98) <= 1.0
        assert result.total_hits > 0


class TestWindowEstimator:
    def test_window_estimator_runs_end_to_end(self):
        result = run_simulation(
            SimulationConfig(policy="PRR2-TTL/K", estimator="window", **QUICK)
        )
        assert result.total_hits > 0
        assert 0.0 <= result.prob_max_below(0.98) <= 1.0

    def test_window_estimator_wired(self):
        from repro.core.estimator import SlidingWindowEstimator

        simulation = Simulation(
            SimulationConfig(policy="PRR2-TTL/K", estimator="window", **QUICK)
        )
        assert isinstance(simulation.estimator, SlidingWindowEstimator)
        simulation.run()
        assert simulation.estimator.collections > 0


class TestResponseTimes:
    def test_response_time_metrics_populated(self):
        result = run_simulation(SimulationConfig(policy="RR", **QUICK))
        assert result.mean_page_response_time > 0.0
        assert result.max_page_response_time >= result.mean_page_response_time
        assert "mean_page_response_time" in result.summary()

    def test_better_policy_lower_response_time(self):
        rr = run_simulation(
            SimulationConfig(policy="RR", duration=2400.0, seed=9)
        )
        adaptive = run_simulation(
            SimulationConfig(policy="DRR2-TTL/S_K", duration=2400.0, seed=9)
        )
        assert adaptive.mean_page_response_time < rr.mean_page_response_time


class TestUtilizationSeries:
    def test_series_absent_by_default(self):
        result = run_simulation(SimulationConfig(policy="RR", **QUICK))
        assert result.utilization_series is None

    def test_series_retained_when_requested(self):
        result = run_simulation(
            SimulationConfig(
                policy="RR", keep_utilization_series=True, **QUICK
            )
        )
        assert result.utilization_series is not None
        assert len(result.utilization_series) == len(
            result.max_utilization_samples
        )
        now, vector = result.utilization_series[0]
        assert len(vector) == 7

    def test_analysis_tools_consume_series(self):
        result = run_simulation(
            SimulationConfig(
                policy="RR", keep_utilization_series=True, **QUICK
            )
        )
        timeline = max_series(result)
        assert [v for _, v in timeline] == result.max_utilization_samples
        per_server = server_series(result, 0)
        assert len(per_server) == len(timeline)
        episodes = overload_episodes(result, threshold=0.98)
        overloaded_intervals = sum(count for _, _, count in episodes)
        expected = sum(
            1 for v in result.max_utilization_samples if v >= 0.98
        )
        assert overloaded_intervals == expected

    def test_fairness_on_mean_utilizations(self):
        result = run_simulation(SimulationConfig(policy="IDEAL", **QUICK))
        index = jain_fairness_index(result.mean_utilization_per_server)
        assert index > 0.9  # the ideal policy balances well


class TestComparisons:
    def test_paired_comparison_detects_clear_gap(self):
        base = SimulationConfig(policy="RR", duration=1200.0, seed=5)
        comparison = paired_comparison(
            base, "DRR2-TTL/S_K", "RR", replications=3
        )
        assert comparison.mean_difference > 0
        assert comparison.better == "DRR2-TTL/S_K"
        assert "DRR2-TTL/S_K" in str(comparison)

    def test_stochastic_dominance_adaptive_over_rr(self):
        config = SimulationConfig(policy="RR", duration=2400.0, seed=5)
        rr = run_simulation(config)
        adaptive = run_simulation(config.replace(policy="DRR2-TTL/S_K"))
        assert stochastically_dominates(adaptive, rr, tolerance=0.03)
        assert not stochastically_dominates(rr, adaptive, tolerance=0.03)
