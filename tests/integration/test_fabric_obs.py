"""Fabric observability: spans, scrapeable endpoints, crash forensics.

These tests run a real coordinator (in-process, via
:class:`~repro.experiments.dispatch.RemoteBackend`) against real
``repro worker serve`` agents in subprocesses and prove the claims of
the observability plane:

* span logs written by the coordinator and both workers merge into one
  :class:`~repro.obs.spans.FabricTimeline` that **reconciles** — every
  cell submitted, leased, and completed by exactly one winning attempt,
  with gapless attempt numbers — even when a worker is killed mid-cell
  and its leases are re-issued;
* the ``/metrics`` endpoints (coordinator and worker) serve valid
  Prometheus text exposition mid-run and ``/healthz`` answers;
* the crash ring buffer of a killed worker lands in
  ``crash-<worker>.jsonl`` and is readable with the salvage loader;
* **zero cost when disabled, zero effect when enabled**: results of a
  fully-instrumented remote run are field-for-field equal to both an
  uninstrumented remote run and the serial ``workers=1`` local run.

Durations are tiny (a few hundred simulated seconds per cell) so the
module stays in tier 1.
"""

import json
import os
import pathlib
import subprocess
import sys
import urllib.request

from repro.experiments.config import SimulationConfig
from repro.experiments.dispatch import CRASH_EXIT_STATUS, RemoteBackend
from repro.experiments.executor import ParallelExecutor
from repro.experiments.persistence import result_to_dict
from repro.obs.export import parse_prom_text
from repro.obs.http import PROM_CONTENT_TYPE
from repro.obs.spans import (
    FabricTimeline,
    crash_file_name,
    load_span_logs,
    render_fabric_timeline,
    salvage_span_jsonl,
)


def _grid_configs():
    """A small mixed-policy batch — enough cells to share around."""
    return [
        SimulationConfig(
            policy=policy, heterogeneity=het, duration=400.0, seed=11
        )
        for policy in ("RR", "DAL", "DRR2-TTL/S_K")
        for het in (20, 35)
    ]


def _spawn_worker(address, *, worker_id, crash_after=None, span_log=None,
                  metrics_port=None, crash_dir=None):
    """Start one ``repro worker serve`` agent as a subprocess."""
    host, port = address
    argv = [
        sys.executable, "-m", "repro", "worker", "serve",
        "--connect", f"{host}:{port}",
        "--connect-timeout", "5",
        "--id", worker_id,
    ]
    if crash_after is not None:
        argv += ["--crash-after", str(crash_after)]
    if span_log is not None:
        argv += ["--span-log", str(span_log)]
    if metrics_port is not None:
        argv += ["--metrics-port", str(metrics_port)]
    if crash_dir is not None:
        argv += ["--crash-dir", str(crash_dir)]
    env = dict(os.environ)
    src = str(pathlib.Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        argv, env=env,
        stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True,
    )


def _run_observed(configs, tmp_path, *, workers=2, crash_first=False,
                  metrics_probe=None, lease_timeout=15.0):
    """A fully-instrumented remote run: spans + metrics everywhere.

    Returns ``(results, executor, agents, span_paths, crash_dir)``.
    ``metrics_probe`` is called once mid-run with the backend (scrape
    while the batch is live).
    """
    span_dir = tmp_path / "spans"
    span_dir.mkdir(exist_ok=True)
    crash_dir = tmp_path / "forensics"
    backend = RemoteBackend(
        ("127.0.0.1", 0),
        lease_timeout=lease_timeout,
        timeout=120.0,
        span_log=span_dir / "coordinator.jsonl",
        metrics_port=0,
    )
    address = backend.bind()
    if metrics_probe is not None:
        # The endpoint is up as soon as bind() returns — probe it while
        # no batch has ever run, then again after the batch below.
        metrics_probe(backend)
    executor = ParallelExecutor(backend=backend)
    span_paths = [span_dir / "coordinator.jsonl"]
    agents = []
    try:
        for index in range(workers):
            worker_log = span_dir / f"w{index}.jsonl"
            span_paths.append(worker_log)
            agents.append(_spawn_worker(
                address,
                worker_id=f"w{index}",
                crash_after=1 if crash_first and index == 0 else None,
                span_log=worker_log,
                crash_dir=crash_dir,
            ))
        results = executor.run_simulations(
            configs, labels=[c.policy for c in configs]
        )
        if metrics_probe is not None:
            metrics_probe(backend)
    finally:
        backend.close()
        for agent in agents:
            try:
                agent.wait(timeout=30)
            except subprocess.TimeoutExpired:  # pragma: no cover
                agent.kill()
                agent.wait()
            agent.stderr.close()
    return results, executor, agents, span_paths, crash_dir


class TestSpanReconciliation:
    def test_clean_run_reconciles_and_renders(self, tmp_path):
        configs = _grid_configs()
        results, executor, agents, span_paths, _ = _run_observed(
            configs, tmp_path
        )
        assert all(agent.returncode == 0 for agent in agents)

        events, torn = load_span_logs(
            [p for p in span_paths if p.exists()]
        )
        assert torn == 0
        timeline = FabricTimeline.from_events(events)
        assert timeline.run == executor.backend.last_run_id
        report = timeline.reconcile()
        assert report.ok, report.problems
        assert report.cells == len(configs)
        assert report.attempts == len(configs)  # no retries
        assert report.releases == 0
        # Worker-side events joined up with coordinator-side leases.
        for cell in timeline.cells.values():
            winner = cell.winning_attempt()
            assert winner is not None
            assert winner.executed is not None, (
                f"cell {cell.cell}: no worker execute event"
            )
            assert winner.executed.source == winner.leased.worker
            assert cell.phases() is not None
        # Labels survive into the report text.
        text = render_fabric_timeline(timeline, report)
        assert "reconciliation: OK" in text
        assert "per-worker lanes:" in text
        assert "DRR2-TTL/S_K" in text

    def test_killed_worker_run_reconciles_with_re_leases(self, tmp_path):
        configs = _grid_configs()
        results, executor, agents, span_paths, crash_dir = _run_observed(
            configs, tmp_path, crash_first=True, lease_timeout=3.0
        )
        statuses = sorted(agent.returncode for agent in agents)
        assert statuses == [0, CRASH_EXIT_STATUS]

        events, _ = load_span_logs([p for p in span_paths if p.exists()])
        timeline = FabricTimeline.from_events(events)
        report = timeline.reconcile()
        # The invariant under test: a mid-cell kill shows up as expiry
        # or release followed by a re-lease — and *still* reconciles.
        assert report.ok, report.problems
        assert report.cells == len(configs)
        assert report.attempts > len(configs)
        assert report.releases >= 1
        retried = [
            cell for cell in timeline.cells.values()
            if len(cell.attempts) > 1
        ]
        assert retried
        for cell in retried:
            winner = cell.winning_attempt()
            assert winner is not None and winner.worker == "w1"

        # Crash forensics: the dying worker flushed its ring.
        crash_file = crash_dir / crash_file_name("w0")
        assert crash_file.exists(), sorted(crash_dir.iterdir())
        crash_events, _ = salvage_span_jsonl(crash_file)
        assert crash_events, "empty crash ring flush"
        assert crash_events[-1].kind == "crash"
        assert crash_events[-1].extra.get("reason") == "crash-after"
        # The ring captured the fatal lease's execute event too.
        assert any(e.kind == "execute" for e in crash_events)


class TestScrapeableEndpoints:
    def test_coordinator_metrics_and_health_mid_run(self, tmp_path):
        configs = _grid_configs()[:3]
        scrapes = []

        def probe(backend):
            host, port = backend.metrics_address
            with urllib.request.urlopen(
                f"http://{host}:{port}/metrics", timeout=5
            ) as response:
                assert response.headers["Content-Type"] == PROM_CONTENT_TYPE
                text = response.read().decode("utf-8")
            with urllib.request.urlopen(
                f"http://{host}:{port}/healthz", timeout=5
            ) as response:
                health = json.loads(response.read().decode("utf-8"))
            scrapes.append((parse_prom_text(text), health))

        results, executor, agents, _, _ = _run_observed(
            configs, tmp_path, metrics_probe=probe
        )
        before, after = scrapes
        exposition, health = before
        assert health["status"] == "ok"
        assert health["role"] == "coordinator"
        assert exposition.value("repro_fabric_batches") == 0
        assert exposition.value("repro_fabric_cells_total") == 0
        assert exposition.types["repro_fabric_lease_retries"] == "counter"
        assert "Workers with a live coordinator connection" in (
            exposition.helps["repro_fabric_workers_connected"]
        )
        exposition, health = after
        assert health["batches"] == 1
        assert health["run"] == executor.backend.last_run_id
        assert exposition.value("repro_fabric_batches") == 1
        assert exposition.value("repro_fabric_cells_total") == len(configs)
        assert (
            exposition.value("repro_fabric_cells_completed") == len(configs)
        )
        assert exposition.value("repro_fabric_workers_seen") == 2

    def test_worker_metrics_endpoint_serves_telemetry(self, tmp_path):
        # One worker with a pinned metrics port, scraped while it waits
        # for a coordinator (its telemetry is live before any lease).
        agent = _spawn_worker(
            ("127.0.0.1", 1), worker_id="lonely", metrics_port=0
        )
        try:
            # The bound address is announced on stderr before dialing.
            line = agent.stderr.readline()
            assert "metrics on http://" in line, line
            url = line.split("metrics on ", 1)[1].strip()
            with urllib.request.urlopen(url, timeout=5) as response:
                exposition = parse_prom_text(
                    response.read().decode("utf-8")
                )
            assert exposition.value("repro_worker_cells_completed") == 0
            assert exposition.value("repro_worker_rss_bytes") > 0
            assert exposition.value("repro_worker_uptime_seconds") > 0
            assert (
                exposition.types["repro_worker_heartbeats_sent"] == "counter"
            )
            health_url = url.replace("/metrics", "/healthz")
            with urllib.request.urlopen(health_url, timeout=5) as response:
                health = json.loads(response.read().decode("utf-8"))
            assert health["role"] == "worker"
            assert health["worker"] == "lonely"
        finally:
            agent.wait(timeout=30)
            agent.stderr.close()


class TestObservabilityIsFree:
    def test_instrumented_run_matches_bare_remote_and_serial_local(
        self, tmp_path
    ):
        configs = _grid_configs()
        observed, _, agents, span_paths, _ = _run_observed(
            configs, tmp_path
        )
        assert all(agent.returncode == 0 for agent in agents)
        # Spans were really on (the logs are non-trivial)...
        events, _ = load_span_logs([p for p in span_paths if p.exists()])
        assert len(events) > 4 * len(configs)

        # ...yet a bare remote run returns identical serialized results,
        bare_backend = RemoteBackend(
            ("127.0.0.1", 0), lease_timeout=15.0, timeout=120.0
        )
        assert bare_backend.spans is None
        address = bare_backend.bind()
        bare_executor = ParallelExecutor(backend=bare_backend)
        bare_agents = []
        try:
            for index in range(2):
                bare_agents.append(
                    _spawn_worker(address, worker_id=f"bare{index}")
                )
            bare = bare_executor.run_simulations(
                configs, labels=[c.policy for c in configs]
            )
        finally:
            bare_backend.close()
            for agent in bare_agents:
                agent.wait(timeout=30)
                agent.stderr.close()

        # ...and so does the serial local reference.
        local = ParallelExecutor(workers=1).run_simulations(configs)
        observed_dicts = [result_to_dict(r) for r in observed]
        assert observed_dicts == [result_to_dict(r) for r in bare]
        assert observed_dicts == [result_to_dict(r) for r in local]
