"""Integration tests for the figure generators (plumbing, not fidelity).

These run heavily reduced figures (short durations, trimmed sweeps) to
verify structure: every series present, grids correct, values in range.
Fidelity against the paper is covered by the benchmark suite and by
tests/integration/test_paper_checks.py.
"""

import os

import pytest

from repro.experiments import figures
from repro.experiments.config import PAPER_DURATION
from repro.experiments.figures import (
    FIG1_POLICIES,
    FIG2_POLICIES,
    FIGURES,
    default_duration,
    fig1,
    fig3,
    fig4,
    fig6,
    table1,
    table2,
)

SHORT = 400.0


class TestDefaultDuration:
    def test_quick_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_PAPER_FIDELITY", raising=False)
        assert default_duration() == 3600.0

    def test_paper_fidelity_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PAPER_FIDELITY", "1")
        assert default_duration() == PAPER_DURATION


class TestCdfFigures:
    def test_fig1_structure(self):
        figure = fig1(duration=SHORT, seed=2, grid=[0.8, 0.9, 1.0])
        assert figure.figure_id == "fig1"
        assert [s.label for s in figure.series] == FIG1_POLICIES
        for series in figure.series:
            assert series.x == [0.8, 0.9, 1.0]
            assert all(0.0 <= y <= 1.0 for y in series.y)
            assert series.y == sorted(series.y)  # CDFs are monotone

    def test_y_at_accessor(self):
        figure = fig1(duration=SHORT, seed=2, grid=[0.9, 1.0])
        assert figure.y_at("RR", 1.0) >= figure.y_at("RR", 0.9)

    def test_series_by_label(self):
        figure = fig1(duration=SHORT, seed=2, grid=[1.0])
        assert set(figure.series_by_label()) == set(FIG1_POLICIES)


class TestSweepFigures:
    def test_fig3_structure(self):
        figure = fig3(duration=SHORT, seed=2, levels=[20, 65])
        assert [s.x for s in figure.series] == [[20.0, 65.0]] * len(
            figure.series
        )
        assert all(
            0.0 <= y <= 1.0 for series in figure.series for y in series.y
        )

    def test_fig4_sweeps_min_ttl(self):
        figure = fig4(duration=SHORT, seed=2, thresholds=[0.0, 120.0])
        assert figure.x_label == "Minimum TTL (sec)"
        assert figure.series[0].x == [0.0, 120.0]

    def test_fig6_sweeps_error(self):
        figure = fig6(duration=SHORT, seed=2, errors=[0.0, 0.3])
        assert figure.x_label == "Estimation Error %"
        assert len(figure.series) == 8

    def test_figure_registry_complete(self):
        assert set(FIGURES) == {f"fig{i}" for i in range(1, 8)}


class TestTables:
    def test_table1_contains_key_parameters(self):
        pairs = dict(table1())
        assert pairs["Connected domains K"] == "20"
        assert pairs["Total capacity"] == "500 hits/s"

    def test_table2_levels(self):
        levels = table2()
        assert set(levels) == {20, 35, 50, 65}
        assert levels[65] == [1.0, 1.0, 0.8, 0.8, 0.35, 0.35, 0.35]
        assert 0 not in levels  # the homogeneous row is ours, not Table 2's
