"""Golden-trajectory regression for the DES engine.

The engine's fast paths (direct process resumes, the inlined ``run``
loop, lazy callbacks lists) are pure optimizations: they must not change
a single bit of any trajectory. This test pins that property to a
committed fixture — a full fingerprint (trace, metrics snapshot,
max-utilization samples, utilization series and headline scalars) of one
small-but-complete simulation, recorded on the pre-fast-path engine.

Any engine change that alters event ordering, RNG draw order, or float
arithmetic anywhere in the pipeline shows up here as a diff against the
fixture.

Regenerate (only when a trajectory change is *intended* and understood)::

    PYTHONPATH=src python tests/integration/test_golden_trajectory.py --regenerate
"""

import json
import pathlib

import pytest

from repro.experiments.config import SimulationConfig
from repro.experiments.simulation import run_simulation

FIXTURE = (
    pathlib.Path(__file__).resolve().parent.parent
    / "fixtures"
    / "golden_trajectory.json"
)

#: The golden run: small enough to finish in about a second, yet it
#: exercises every moving part — adaptive scheduling with alarms, the
#: measured estimator's collection process, DNS + NS caches, tracing and
#: the metrics registry.
GOLDEN_CONFIG = {
    "policy": "DRR2-TTL/S_K",
    "duration": 600.0,
    "seed": 97,
    "heterogeneity": 50,
    "domain_count": 10,
    "total_clients": 120,
    "estimator": "measured",
    "trace": True,
    "keep_utilization_series": True,
}


def compute_fingerprint() -> dict:
    """Run the golden config and reduce the result to JSON-safe data.

    The dict round-trips through JSON without loss: every float is
    serialized via ``repr`` (exact for finite doubles), so equality of
    the round-tripped structures is bit-equality of the trajectories.
    """
    result = run_simulation(SimulationConfig(**GOLDEN_CONFIG))
    fingerprint = {
        "config": GOLDEN_CONFIG,
        "max_utilization_samples": result.max_utilization_samples,
        "mean_utilization_per_server": result.mean_utilization_per_server,
        "utilization_series": result.utilization_series,
        "trace": [
            [record.time, record.category, record.payload]
            for record in result.trace
        ],
        "metrics": result.metrics,
        "scalars": {
            "dns_resolutions": result.dns_resolutions,
            "address_request_rate": result.address_request_rate,
            "dns_resolution_fraction": result.dns_resolution_fraction,
            "dns_control_fraction": result.dns_control_fraction,
            "mean_granted_ttl": result.mean_granted_ttl,
            "alarm_signals": result.alarm_signals,
            "ns_ttl_overrides": result.ns_ttl_overrides,
            "mean_page_response_time": result.mean_page_response_time,
            "max_page_response_time": result.max_page_response_time,
            "total_hits": result.total_hits,
            "total_sessions": result.total_sessions,
        },
    }
    # Normalize through JSON so tuples-vs-lists and int-vs-float key
    # differences cannot mask (or fake) a trajectory change.
    return json.loads(json.dumps(fingerprint))


def test_golden_trajectory_bit_identical():
    """The committed fixture must be reproduced bit-for-bit."""
    if not FIXTURE.exists():
        pytest.fail(
            f"golden fixture missing: {FIXTURE} — regenerate with "
            "`PYTHONPATH=src python tests/integration/test_golden_trajectory.py"
            " --regenerate`"
        )
    golden = json.loads(FIXTURE.read_text())
    fresh = compute_fingerprint()
    assert fresh["config"] == golden["config"], "fixture config drifted"
    # Compare section by section for a readable failure, then in full.
    for key in golden:
        assert fresh[key] == golden[key], f"trajectory diverged in {key!r}"
    assert fresh == golden


if __name__ == "__main__":
    import sys

    if "--regenerate" not in sys.argv:
        sys.exit("pass --regenerate to overwrite the golden fixture")
    FIXTURE.parent.mkdir(parents=True, exist_ok=True)
    FIXTURE.write_text(json.dumps(compute_fingerprint(), indent=1) + "\n")
    print(f"wrote {FIXTURE}")
