"""Golden-trajectory regression for the DES engine.

The engine's fast paths (direct process resumes, the inlined ``run``
loop, lazy callbacks lists) are pure optimizations: they must not change
a single bit of any trajectory. This test pins that property to a
committed fixture — a full fingerprint (trace, metrics snapshot,
max-utilization samples, utilization series and headline scalars) of one
small-but-complete simulation, recorded on the pre-fast-path engine.

Any engine change that alters event ordering, RNG draw order, or float
arithmetic anywhere in the pipeline shows up here as a diff against the
fixture.

Regenerate (only when a trajectory change is *intended* and understood)::

    PYTHONPATH=src python tests/integration/test_golden_trajectory.py --regenerate
"""

import json
import pathlib

import pytest

from repro import __version__
from repro.experiments.config import SimulationConfig
from repro.experiments.persistence import config_to_dict
from repro.experiments.simulation import run_simulation
from repro.sim.checkpoint import config_digest

FIXTURE = (
    pathlib.Path(__file__).resolve().parent.parent
    / "fixtures"
    / "golden_trajectory.json"
)

#: The golden run: small enough to finish in about a second, yet it
#: exercises every moving part — adaptive scheduling with alarms, the
#: measured estimator's collection process, DNS + NS caches, tracing and
#: the metrics registry.
GOLDEN_CONFIG = {
    "policy": "DRR2-TTL/S_K",
    "duration": 600.0,
    "seed": 97,
    "heterogeneity": 50,
    "domain_count": 10,
    "total_clients": 120,
    "estimator": "measured",
    "trace": True,
    "keep_utilization_series": True,
}


def fixture_meta() -> dict:
    """What wrote the fixture: engine version and exact config digest.

    Makes the fixture self-describing, so staleness fails loudly: a
    version bump without regeneration, or any drift in the golden
    config (including defaults inherited from ``SimulationConfig``),
    is reported as such instead of surfacing as an inscrutable
    trajectory diff.
    """
    return {
        "engine_version": __version__,
        "config_hash": config_digest(
            config_to_dict(SimulationConfig(**GOLDEN_CONFIG))
        ),
    }


def fingerprint_result(result) -> dict:
    """Reduce a golden-config result to JSON-safe trajectory sections.

    The dict round-trips through JSON without loss: every float is
    serialized via ``repr`` (exact for finite doubles), so equality of
    the round-tripped structures is bit-equality of the trajectories.
    """
    fingerprint = {
        "config": GOLDEN_CONFIG,
        "meta": fixture_meta(),
        "max_utilization_samples": result.max_utilization_samples,
        "mean_utilization_per_server": result.mean_utilization_per_server,
        "utilization_series": result.utilization_series,
        "trace": [
            [record.time, record.category, record.payload]
            for record in result.trace
        ],
        "metrics": result.metrics,
        "scalars": {
            "dns_resolutions": result.dns_resolutions,
            "address_request_rate": result.address_request_rate,
            "dns_resolution_fraction": result.dns_resolution_fraction,
            "dns_control_fraction": result.dns_control_fraction,
            "mean_granted_ttl": result.mean_granted_ttl,
            "alarm_signals": result.alarm_signals,
            "ns_ttl_overrides": result.ns_ttl_overrides,
            "mean_page_response_time": result.mean_page_response_time,
            "max_page_response_time": result.max_page_response_time,
            "total_hits": result.total_hits,
            "total_sessions": result.total_sessions,
        },
    }
    # Normalize through JSON so tuples-vs-lists and int-vs-float key
    # differences cannot mask (or fake) a trajectory change.
    return json.loads(json.dumps(fingerprint))


def compute_fingerprint() -> dict:
    """Run the golden config and fingerprint the result."""
    return fingerprint_result(run_simulation(SimulationConfig(**GOLDEN_CONFIG)))


REGENERATE_HINT = (
    "regenerate with `PYTHONPATH=src python "
    "tests/integration/test_golden_trajectory.py --regenerate`"
)


def load_golden() -> dict:
    """The committed fixture, failing loudly when missing or stale.

    Stale means the fixture does not describe *this* engine and config:
    it predates the self-description meta, was written by a different
    package version, or its config (with all defaults resolved) no
    longer hashes to the same digest. Each case is reported by name —
    a stale fixture must never be debugged as a trajectory diff.
    """
    if not FIXTURE.exists():
        pytest.fail(f"golden fixture missing: {FIXTURE} — {REGENERATE_HINT}")
    golden = json.loads(FIXTURE.read_text())
    recorded = golden.get("meta")
    if recorded is None:
        pytest.fail(
            f"golden fixture is stale: no self-description meta — "
            f"{REGENERATE_HINT}"
        )
    expected = fixture_meta()
    if recorded["engine_version"] != expected["engine_version"]:
        pytest.fail(
            f"golden fixture is stale: written by engine "
            f"{recorded['engine_version']}, this is "
            f"{expected['engine_version']} — {REGENERATE_HINT}"
        )
    if recorded["config_hash"] != expected["config_hash"]:
        pytest.fail(
            "golden fixture is stale: the golden config (including "
            "SimulationConfig defaults) hashes differently now — "
            + REGENERATE_HINT
        )
    return golden


def test_golden_trajectory_bit_identical():
    """The committed fixture must be reproduced bit-for-bit."""
    golden = load_golden()
    fresh = compute_fingerprint()
    assert fresh["config"] == golden["config"], "fixture config drifted"
    # Compare section by section for a readable failure, then in full.
    for key in golden:
        assert fresh[key] == golden[key], f"trajectory diverged in {key!r}"
    assert fresh == golden


def test_golden_trajectory_fastforward_bit_identical():
    """The fast-forward engine reproduces the committed fixture.

    The fixture was recorded on the reference engine, so this holds the
    hybrid fluid/event mode (:mod:`repro.sim.fastforward`) to the same
    anchor as every other engine fast path: not one bit of trajectory
    drift. The golden config is fluid-eligible, and the test insists on
    that — a silent fallback to event-stepping would vacuously pass.
    """
    from repro.experiments.simulation import Simulation

    golden = load_golden()
    sim = Simulation(
        SimulationConfig(**GOLDEN_CONFIG), engine_mode="fastforward"
    )
    fresh = fingerprint_result(sim.run())
    info = sim.engine_info
    assert info["effective_mode"] == "fastforward", info
    assert info["fast_clients"] == GOLDEN_CONFIG["total_clients"], info
    for key in golden:
        assert fresh[key] == golden[key], (
            f"fast-forward trajectory diverged from the fixture in {key!r}"
        )
    assert fresh == golden


@pytest.mark.resume
def test_golden_trajectory_survives_midpoint_resume(tmp_path):
    """Crash the golden run at its midpoint; the resumed run must
    reproduce the committed fixture bit-for-bit.

    This welds the checkpoint layer to the engine's strongest anchor:
    a resume is held to the *same* fixture as an uninterrupted run, so
    any state the checkpoints failed to carry (or any replay
    divergence) shows up as a golden-trajectory diff.
    """
    from repro.experiments.checkpointing import (
        resume_run,
        run_with_checkpoints,
    )

    golden = load_golden()
    config = SimulationConfig(**GOLDEN_CONFIG)
    midpoint = GOLDEN_CONFIG["duration"] / 2
    halted = run_with_checkpoints(
        config, every=midpoint / 2, directory=tmp_path, halt_at=midpoint
    )
    assert halted is None, "the golden run must halt at its midpoint"
    resumed = fingerprint_result(resume_run(tmp_path))
    for key in golden:
        assert resumed[key] == golden[key], (
            f"resumed trajectory diverged from the fixture in {key!r}"
        )
    assert resumed == golden


if __name__ == "__main__":
    import sys

    if "--regenerate" not in sys.argv:
        sys.exit("pass --regenerate to overwrite the golden fixture")
    FIXTURE.parent.mkdir(parents=True, exist_ok=True)
    FIXTURE.write_text(json.dumps(compute_fingerprint(), indent=1) + "\n")
    print(f"wrote {FIXTURE}")
