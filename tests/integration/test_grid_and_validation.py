"""Integration tests for the grid runner, validation, and -FB policies."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import SimulationConfig
from repro.experiments.grid import GridResult, run_grid
from repro.experiments.validation import validate_run

QUICK = SimulationConfig(policy="RR", duration=600.0, seed=6)


class TestGrid:
    def test_empty_axes_rejected(self):
        with pytest.raises(ConfigurationError):
            run_grid(QUICK, {})

    def test_cartesian_product_size(self):
        grid = run_grid(
            QUICK,
            {"policy": ["RR", "DAL"], "heterogeneity": [20, 50]},
        )
        assert len(grid) == 4
        assert grid.parameters == ["policy", "heterogeneity"]

    def test_progress_callback(self):
        seen = []
        run_grid(
            QUICK, {"heterogeneity": [20, 50]}, progress=seen.append
        )
        assert seen == [{"heterogeneity": 20}, {"heterogeneity": 50}]

    def test_value_lookup(self):
        grid = run_grid(QUICK, {"heterogeneity": [20, 50]})
        value = grid.value(heterogeneity=20)
        assert 0.0 <= value <= 1.0

    def test_value_ambiguous_lookup_rejected(self):
        grid = run_grid(
            QUICK, {"policy": ["RR", "DAL"], "heterogeneity": [20, 50]}
        )
        with pytest.raises(ConfigurationError):
            grid.value(heterogeneity=20)  # matches two cells

    def test_pivot_shape(self):
        grid = run_grid(
            QUICK,
            {"policy": ["RR", "DAL"], "heterogeneity": [20, 50]},
        )
        rows, cols, matrix = grid.pivot("policy", "heterogeneity")
        assert rows == ["DAL", "RR"]
        assert cols == [20, 50]
        assert len(matrix) == 2 and len(matrix[0]) == 2

    def test_pivot_bad_axis_rejected(self):
        grid = run_grid(QUICK, {"heterogeneity": [20]})
        with pytest.raises(ConfigurationError):
            grid.pivot("policy", "heterogeneity")

    def test_pivot_table_renders(self):
        grid = run_grid(
            QUICK, {"policy": ["RR", "DAL"], "heterogeneity": [20]}
        )
        text = grid.pivot_table("policy", "heterogeneity")
        assert "RR" in text and "DAL" in text

    def test_csv_long_format(self):
        grid = run_grid(QUICK, {"heterogeneity": [20, 50]})
        csv_text = grid.to_csv()
        lines = csv_text.strip().splitlines()
        assert lines[0] == "heterogeneity,metric"
        assert len(lines) == 3


class TestValidation:
    def test_default_run_passes(self):
        report = validate_run(
            SimulationConfig(duration=1800.0, seed=3)
        )
        assert report.passed, str(report)
        assert len(report.checks) == 6
        assert report.failures() == []

    def test_report_renders(self):
        report = validate_run(SimulationConfig(duration=900.0, seed=3))
        text = str(report)
        assert "mean utilization" in text
        assert "=>" in text

    def test_rate_check_skipped_under_overrides(self):
        report = validate_run(
            SimulationConfig(
                policy="DRR2-TTL/S_K",
                duration=900.0,
                seed=3,
                min_accepted_ttl=120.0,
            )
        )
        rate_check = next(
            c for c in report.checks if "address-request" in c.name
        )
        assert rate_check.passed
        assert "skipped" in rate_check.detail


class TestAlarmScaledTtlPolicies:
    def test_parse_fb_suffix(self):
        from repro.core.registry import parse_policy_name

        spec = parse_policy_name("prr2-ttl/k-fb")
        assert spec.alarm_scaled_ttl
        assert spec.name == "PRR2-TTL/K-FB"

    def test_fb_wraps_ttl_policy(self):
        from repro.core.registry import build_policy
        from repro.core.ttl.feedback import AlarmResponsiveTtlPolicy
        from repro.sim.rng import RandomStreams

        from ..conftest import make_state

        state = make_state()
        _, ttl_policy = build_policy(
            "DRR2-TTL/S_K-FB", state, RandomStreams(1)
        )
        assert isinstance(ttl_policy, AlarmResponsiveTtlPolicy)

    def test_fb_identical_without_alarms(self):
        from repro.core.registry import build_policy
        from repro.sim.rng import RandomStreams

        from ..conftest import make_state

        state = make_state()
        _, plain = build_policy("DRR2-TTL/S_K", state, RandomStreams(1))
        _, wrapped = build_policy(
            "DRR2-TTL/S_K-FB", state, RandomStreams(1)
        )
        assert wrapped.ttl_for(0, 0, 0.0) == plain.ttl_for(0, 0, 0.0)

    def test_fb_scales_down_under_alarms(self):
        from repro.core.registry import build_policy
        from repro.sim.rng import RandomStreams

        from ..conftest import make_state

        state = make_state()
        _, wrapped = build_policy(
            "DRR2-TTL/S_K-FB", state, RandomStreams(1)
        )
        base = wrapped.ttl_for(5, 0, 0.0)
        state.set_alarm(0.0, 3, True)
        assert wrapped.ttl_for(5, 0, 0.0) == pytest.approx(base / 2)
        state.set_alarm(1.0, 4, True)
        assert wrapped.ttl_for(5, 0, 0.0) == pytest.approx(base / 4)
        assert wrapped.scaled_grants == 2

    def test_fb_respects_floor(self):
        from repro.core.ttl.constant import ConstantTtlPolicy
        from repro.core.ttl.feedback import AlarmResponsiveTtlPolicy

        from ..conftest import make_state

        state = make_state()
        policy = AlarmResponsiveTtlPolicy(
            ConstantTtlPolicy(20.0), state, reduction=0.1, min_ttl=10.0
        )
        state.set_alarm(0.0, 0, True)
        assert policy.ttl_for(0, 0, 0.0) == 10.0

    def test_fb_end_to_end(self):
        from repro.experiments.simulation import run_simulation

        result = run_simulation(
            SimulationConfig(
                policy="DRR2-TTL/S_K-FB", duration=900.0, seed=3,
                heterogeneity=65,
            )
        )
        assert result.policy == "DRR2-TTL/S_K-FB"
        assert result.total_hits > 0
