"""Integration tests for live run telemetry.

Three claims are enforced here:

* **Determinism parity** — attaching progress sinks (and running under
  several workers) produces cell-for-cell bit-identical results to a
  silent serial run: heartbeats observe the batch, they never perturb
  cell seeding.
* **Complete heartbeat coverage** — a progress JSONL log of an N-cell
  batch holds exactly one ``started`` and one ``finished`` record per
  cell, bracketed by ``begin``/``end``.
* **Regression gating end to end** — ``repro report --compare`` exits
  zero comparing a bundle against itself and non-zero (under
  ``--fail-on-regression``) against a copy with a worsened
  max-utilization profile.
"""

import json

from repro.cli import main
from repro.experiments.config import SimulationConfig
from repro.experiments.executor import ParallelExecutor
from repro.experiments.grid import run_grid
from repro.obs import (
    JsonlProgressSink,
    TimeSeries,
    read_progress_jsonl,
)

QUICK = SimulationConfig(policy="RR", duration=300.0, seed=17, total_clients=80)

GRID_AXES = {
    "policy": ["RR", "DAL"],
    "heterogeneity": [20, 35, 50, 65],
}


def _exact_metrics(result):
    return (
        result.policy,
        result.max_utilization_samples,
        result.mean_utilization_per_server,
        result.dns_resolutions,
        result.total_hits,
        result.total_sessions,
        result.mean_granted_ttl,
        result.metrics,
    )


class TestDeterminismParity:
    def test_progress_and_workers_do_not_change_results(self, tmp_path):
        silent = run_grid(QUICK, GRID_AXES, workers=1)
        sink = JsonlProgressSink(tmp_path / "progress.jsonl")
        observed = run_grid(
            QUICK,
            GRID_AXES,
            executor=ParallelExecutor(workers=4, progress=sink),
        )
        sink.close()
        assert len(silent) == len(observed) == 8
        for (params_a, result_a), (params_b, result_b) in zip(
            silent.cells, observed.cells
        ):
            assert params_a == params_b
            assert _exact_metrics(result_a) == _exact_metrics(result_b)

    def test_log_has_exactly_one_started_and_finished_per_cell(
        self, tmp_path
    ):
        log = tmp_path / "progress.jsonl"
        sink = JsonlProgressSink(log)
        run_grid(
            QUICK,
            GRID_AXES,
            executor=ParallelExecutor(workers=4, progress=sink),
        )
        sink.close()
        records = read_progress_jsonl(log)
        assert records[0]["event"] == "begin"
        assert records[0]["total"] == 8
        assert records[-1]["event"] == "end"
        assert records[-1]["cells"] == 8
        for kind in ("started", "finished"):
            cells = [r["cell"] for r in records if r["event"] == kind]
            assert sorted(cells) == list(range(8))
        labels = {
            r["label"] for r in records if r["event"] == "started"
        }
        assert "policy=RR,heterogeneity=20" in labels

    def test_timeseries_metrics_identical_across_workers(self):
        configs = [QUICK, QUICK.replace(policy="DAL")]
        serial = ParallelExecutor(workers=1).run_simulations(configs)
        parallel = ParallelExecutor(workers=2).run_simulations(configs)
        for a, b in zip(serial, parallel):
            for name in ("util.max", "dns.assigned_ttl",
                         "workload.control_fraction"):
                assert a.metrics[name] == b.metrics[name]
                assert a.metrics[name]["kind"] == "timeseries"
                assert a.metrics[name]["observations"] > 0


class TestBoundedSeries:
    def test_longer_run_same_budget(self):
        # A 10x longer signal fills the same budget-bounded series.
        budget = 64
        short, long = TimeSeries("s", budget), TimeSeries("l", budget)
        for i in range(500):
            short.record(float(i), 0.5)
        for i in range(5_000):
            long.record(float(i), 0.5)
        assert len(short.samples) < budget
        assert len(long.samples) < budget

    def test_simulation_series_stay_within_budget(self):
        from repro.experiments.simulation import run_simulation
        from repro.obs.metrics import TIMESERIES_BUDGET

        result = run_simulation(QUICK.replace(duration=1200.0))
        for name, value in result.metrics.items():
            if isinstance(value, dict) and value.get("kind") == "timeseries":
                assert len(value["samples"]) < TIMESERIES_BUDGET, name


class TestReportGateEndToEnd:
    def _make_bundle(self, directory):
        assert main([
            "trace", "RR", "--duration", "300", "--clients", "80",
            "--seed", "17", "--categories", "dns,util,alarm",
            "--out", str(directory),
        ]) == 0

    def test_self_compare_exits_zero(self, tmp_path, capsys):
        bundle = tmp_path / "bundle"
        self._make_bundle(bundle)
        code = main([
            "report", "--compare", str(bundle), str(bundle),
            "--fail-on-regression",
        ])
        assert code == 0
        assert "no gated metric regressed" in capsys.readouterr().out

    def test_injected_regression_exits_nonzero(self, tmp_path, capsys):
        bundle = tmp_path / "bundle"
        self._make_bundle(bundle)
        worse = tmp_path / "worse"
        worse.mkdir()
        for path in bundle.iterdir():
            worse.joinpath(path.name).write_bytes(path.read_bytes())
        result_path = worse / "run.json"
        data = json.loads(result_path.read_text())
        data["max_utilization_samples"] = [
            min(1.0, sample * 1.2)
            for sample in data["max_utilization_samples"]
        ]
        result_path.write_text(json.dumps(data))
        code = main([
            "report", "--compare", str(bundle), str(worse),
            "--fail-on-regression", "--threshold", "5",
        ])
        assert code == 1
        captured = capsys.readouterr()
        assert "REGRESSED" in captured.out
        assert "mean_max_utilization" in captured.err

    def test_regression_without_flag_still_exits_zero(
        self, tmp_path, capsys
    ):
        bundle = tmp_path / "bundle"
        self._make_bundle(bundle)
        worse = tmp_path / "worse"
        worse.mkdir()
        for path in bundle.iterdir():
            worse.joinpath(path.name).write_bytes(path.read_bytes())
        result_path = worse / "run.json"
        data = json.loads(result_path.read_text())
        data["max_utilization_samples"] = [
            min(1.0, sample * 1.2)
            for sample in data["max_utilization_samples"]
        ]
        result_path.write_text(json.dumps(data))
        assert main(["report", "--compare", str(bundle), str(worse)]) == 0

    def test_single_bundle_report_to_file(self, tmp_path, capsys):
        bundle = tmp_path / "bundle"
        self._make_bundle(bundle)
        out = tmp_path / "report.html"
        assert main([
            "report", str(bundle), "--format", "html",
            "--out", str(out),
        ]) == 0
        assert out.read_text().startswith("<!DOCTYPE html>")


class TestProgressCli:
    def test_grid_progress_log_and_identical_table(self, tmp_path, capsys):
        argv = [
            "grid", "--rows", "policy=RR,DAL",
            "--cols", "heterogeneity=20,50",
            "--duration", "300", "--clients", "80",
        ]
        assert main(argv) == 0
        silent_table = capsys.readouterr().out
        log = tmp_path / "progress.jsonl"
        assert main(
            argv + ["--workers", "2", "--progress-log", str(log)]
        ) == 0
        observed = capsys.readouterr().out
        # The pivot table is identical; only the timing block differs.
        assert observed.startswith(silent_table.split("\n\n")[0])
        records = read_progress_jsonl(log)
        assert [r["event"] for r in records][0] == "begin"
        assert sum(r["event"] == "finished" for r in records) == 4

    def test_run_progress_renders_to_stderr(self, capsys):
        assert main([
            "run", "RR", "--duration", "300", "--clients", "80",
            "--progress",
        ]) == 0
        captured = capsys.readouterr()
        assert "[progress]" in captured.err
        assert "cells 1/1" in captured.err
