"""Cross-validation: fluid server vs event-driven queueing server.

Both implement a work-conserving FIFO single server, through completely
different code paths (closed-form backlog arithmetic vs a worker process
sleeping through service times). On identical arrival sequences their
busy time, backlog, and per-page sojourn must agree to float precision —
validating the fluid model *and* the engine's process semantics at once.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Environment
from repro.web.queueing import QueueingWebServer
from repro.web.server import WebServer

arrivals = st.lists(
    st.tuples(
        st.floats(min_value=0.01, max_value=30.0, allow_nan=False),
        st.integers(min_value=1, max_value=100),
    ),
    min_size=1,
    max_size=40,
)


def drive_both(schedule, capacity):
    """Feed the same arrivals to both servers inside one environment."""
    env = Environment()
    fluid = WebServer(0, capacity)
    queueing = QueueingWebServer(env, 1, capacity)

    def feeder():
        for gap, hits in schedule:
            yield env.timeout(gap)
            fluid.offer(env.now, hits, 0)
            queueing.offer(env.now, hits, 0)

    env.process(feeder())
    total_gap = sum(gap for gap, _ in schedule)
    total_work = sum(hits for _, hits in schedule) / capacity
    horizon = total_gap + total_work + 1.0
    env.run(until=horizon)
    return env, fluid, queueing, horizon


class TestBusyTimeAgreement:
    @settings(max_examples=60, deadline=None)
    @given(arrivals, st.floats(min_value=1.0, max_value=200.0,
                               allow_nan=False))
    def test_busy_time_matches(self, schedule, capacity):
        env, fluid, queueing, horizon = drive_both(schedule, capacity)
        fluid_busy = fluid.utilization(horizon) * horizon
        assert fluid_busy == pytest.approx(queueing.busy_time, abs=1e-6)

    @settings(max_examples=60, deadline=None)
    @given(arrivals, st.floats(min_value=1.0, max_value=200.0,
                               allow_nan=False))
    def test_all_pages_complete(self, schedule, capacity):
        env, fluid, queueing, horizon = drive_both(schedule, capacity)
        assert queueing.completed_pages == len(schedule)
        assert queueing.queue_length == 0
        fluid.utilization(horizon)  # advance the fluid clock to the end
        assert fluid.backlog_seconds == pytest.approx(0.0, abs=1e-9)

    @settings(max_examples=60, deadline=None)
    @given(arrivals, st.floats(min_value=1.0, max_value=200.0,
                               allow_nan=False))
    def test_sojourn_times_match(self, schedule, capacity):
        """Fluid per-page sojourn == queueing wait + service, summed."""
        env, fluid, queueing, horizon = drive_both(schedule, capacity)
        fluid_total = fluid.response_times.mean * fluid.response_times.count
        assert fluid_total == pytest.approx(queueing.total_sojourn, abs=1e-6)


class TestAgainstHandComputedCase:
    def test_two_overlapping_jobs(self):
        env = Environment()
        server = QueueingWebServer(env, 0, capacity=10.0)

        def feeder():
            server.offer(env.now, 50, 0)  # 5 s of service at t=0
            yield env.timeout(2.0)
            server.offer(env.now, 20, 0)  # 2 s, queued behind 3 s left

        env.process(feeder())
        env.run(until=20.0)
        assert server.busy_time == pytest.approx(7.0)
        # Sojourns: job1 = 5; job2 arrives t=2, starts t=5, ends t=7 -> 5.
        assert server.total_sojourn == pytest.approx(10.0)
        assert server.utilization(20.0) == pytest.approx(7.0 / 20.0)

    def test_random_load_utilization_sane(self):
        rng = random.Random(5)
        env = Environment()
        server = QueueingWebServer(env, 0, capacity=100.0)

        def feeder():
            for _ in range(200):
                yield env.timeout(rng.expovariate(1.0))
                server.offer(env.now, rng.randint(5, 15), 0)

        env.process(feeder())
        env.run(until=400.0)
        utilization = server.utilization(400.0)
        # Offered: ~1 page/s x 10 hits / 100 hits/s for the first ~200 s.
        assert 0.02 < utilization < 0.2
