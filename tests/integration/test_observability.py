"""End-to-end tests of the observability layer.

One seeded scenario is traced with every category enabled and each
category's record count is cross-checked against the component counters
the simulation maintains independently — the trace must agree with the
model, not merely exist. A second scenario checks the reproducibility
contract: identical configs produce bit-identical traces through any
worker count of the parallel executor. Finally, the NullTracer path is
proven to never construct a record when tracing is off.
"""

import dataclasses

import pytest

from repro.experiments.config import SimulationConfig
from repro.experiments.executor import ParallelExecutor
from repro.experiments.persistence import (
    config_from_dict,
    load_json,
    save_run_artifacts,
)
from repro.experiments.simulation import run_simulation
from repro.obs import category_counts, read_manifest, read_trace_jsonl
from repro.sim.tracing import TRACE_CATEGORIES, NullTracer

#: A scenario hot enough to trip alarms (so *every* category fires).
ALARMING = SimulationConfig(
    policy="RR",
    duration=1200.0,
    total_clients=1200,
    seed=3,
    trace=True,
)


@pytest.fixture(scope="module")
def alarming_result():
    return run_simulation(ALARMING)


class TestCategoryCounts:
    def test_every_category_fires(self, alarming_result):
        counts = alarming_result.trace_category_counts()
        assert set(counts) == set(TRACE_CATEGORIES)
        assert all(count > 0 for count in counts.values())

    def test_dns_records_match_resolution_counter(self, alarming_result):
        counts = alarming_result.trace_category_counts()
        assert counts["dns"] == alarming_result.dns_resolutions
        assert counts["dns"] == alarming_result.metrics["dns.resolutions"]

    def test_ns_records_match_answer_counters(self, alarming_result):
        counts = alarming_result.trace_category_counts()
        metrics = alarming_result.metrics
        assert counts["ns"] == (
            metrics["ns.cache_answers"] + metrics["ns.authoritative_answers"]
        )

    def test_session_records_match_session_counter(self, alarming_result):
        counts = alarming_result.trace_category_counts()
        assert counts["session"] == alarming_result.total_sessions
        assert counts["session"] == alarming_result.metrics[
            "workload.sessions"
        ]

    def test_util_records_match_window_counter(self, alarming_result):
        counts = alarming_result.trace_category_counts()
        assert counts["util"] == alarming_result.metrics["util.windows"]

    def test_alarm_records_match_transition_counters(self, alarming_result):
        counts = alarming_result.trace_category_counts()
        metrics = alarming_result.metrics
        assert metrics["alarm.signals"] == alarming_result.alarm_signals
        assert counts["alarm"] == (
            metrics["alarm.signals"] + metrics["alarm.normal_signals"]
        )
        # Every alarm transition reaches the scheduler as a sched record.
        assert counts["sched"] == counts["alarm"]

    def test_records_are_time_ordered(self, alarming_result):
        times = [record.time for record in alarming_result.trace]
        assert times == sorted(times)


class TestPayloadSchemas:
    def test_dns_payloads(self, alarming_result):
        for record in alarming_result.trace:
            if record.category != "dns":
                continue
            payload = record.payload
            assert payload["policy"] == "RR"
            assert 0 <= payload["domain"] < ALARMING.domain_count
            assert isinstance(payload["server"], int)
            assert payload["ttl"] >= 0
            assert 0 <= payload["weight"] <= 1

    def test_ns_payloads(self, alarming_result):
        hits = misses = 0
        for record in alarming_result.trace:
            if record.category != "ns":
                continue
            if record.payload["hit"]:
                hits += 1
                assert record.payload["expires_at"] >= record.time
            else:
                misses += 1
                assert "effective_ttl" in record.payload
                assert "overridden" in record.payload
        metrics = alarming_result.metrics
        assert hits == metrics["ns.cache_answers"]
        assert misses == metrics["ns.authoritative_answers"]

    def test_util_payloads(self, alarming_result):
        server_count = len(alarming_result.mean_utilization_per_server)
        for record in alarming_result.trace:
            if record.category != "util":
                continue
            payload = record.payload
            assert len(payload["utilizations"]) == server_count
            assert payload["max"] == max(payload["utilizations"])
            assert payload["utilizations"][payload["argmax"]] == payload["max"]

    def test_sched_payloads_track_exclusions(self, alarming_result):
        server_count = len(alarming_result.mean_utilization_per_server)
        for record in alarming_result.trace:
            if record.category != "sched":
                continue
            payload = record.payload
            everyone = len(payload["eligible"]) == server_count
            if payload["excluded"] and not everyone:
                # (When *all* servers are alarmed the scheduler state
                # falls back to the full set, so an excluded server can
                # legitimately appear eligible.)
                assert payload["server"] not in payload["eligible"]
            elif not payload["excluded"]:
                assert payload["server"] in payload["eligible"]
            assert 0 < len(payload["eligible"]) <= server_count


class TestCategoryFiltering:
    def test_only_selected_categories_recorded(self):
        config = dataclasses.replace(
            ALARMING, duration=600.0, trace_categories=("dns", "alarm")
        )
        result = run_simulation(config)
        assert set(result.trace_category_counts()) <= {"dns", "alarm"}
        assert result.trace_category_counts()["dns"] > 0


class TestWorkerParity:
    def test_trace_counts_identical_across_worker_counts(self):
        config = dataclasses.replace(
            ALARMING, duration=600.0, total_clients=400
        )
        configs = [config, dataclasses.replace(config, seed=11)]
        serial = ParallelExecutor(workers=1).run_simulations(configs)
        parallel = ParallelExecutor(workers=4).run_simulations(configs)
        for left, right in zip(serial, parallel):
            assert left.trace_category_counts() == (
                right.trace_category_counts()
            )
            assert left.trace == right.trace
            assert left.metrics == right.metrics
            assert left.summary() == right.summary()


class TestNullTracerPath:
    def test_untraced_run_never_constructs_a_record(self, monkeypatch):
        def explode(self, time, category, payload=None):
            raise AssertionError(
                "NullTracer.record called despite tracer.enabled guard"
            )

        monkeypatch.setattr(NullTracer, "record", explode)
        config = dataclasses.replace(
            ALARMING, duration=600.0, total_clients=400, trace=False
        )
        result = run_simulation(config)
        assert result.trace is None
        assert result.metrics["dns.resolutions"] > 0  # metrics still work


class TestArtifactBundle:
    def test_round_trip(self, tmp_path, alarming_result):
        paths = save_run_artifacts(
            alarming_result, tmp_path / "bundle", extra={"suite": "tests"}
        )
        restored = load_json(paths["result"])
        assert restored.summary() == alarming_result.summary()
        assert restored.metrics == alarming_result.metrics

        records = read_trace_jsonl(paths["trace"])
        assert category_counts(records) == (
            alarming_result.trace_category_counts()
        )

        manifest = read_manifest(paths["manifest"])
        assert manifest["extra"] == {"suite": "tests"}
        assert config_from_dict(manifest["config"]) == ALARMING
