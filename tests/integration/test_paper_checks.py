"""Qualitative fidelity: run reduced figures through the paper checks.

Marked ``slow``: each test regenerates a (shortened) paper figure. Run
with ``pytest -m slow`` or as part of the full suite; durations are
chosen so the whole module stays around a couple of minutes.
"""

import pytest

from repro.experiments import figures
from repro.experiments.paper import CHECKS

pytestmark = pytest.mark.slow

#: Long enough for the orderings to be stable at a fixed seed.
DURATION = 2400.0
SEED = 11


@pytest.fixture(scope="module")
def fig1_result():
    return figures.fig1(duration=DURATION, seed=SEED)


@pytest.fixture(scope="module")
def fig2_result():
    return figures.fig2(duration=DURATION, seed=SEED)


@pytest.fixture(scope="module")
def fig3_result():
    return figures.fig3(duration=DURATION, seed=SEED)


def test_fig1_expectations(fig1_result):
    assert CHECKS["fig1"](fig1_result) == []


def test_fig2_expectations(fig2_result):
    assert CHECKS["fig2"](fig2_result) == []


def test_fig3_expectations(fig3_result):
    assert CHECKS["fig3"](fig3_result) == []


def test_fig4_expectations():
    figure = figures.fig4(duration=DURATION, seed=SEED)
    assert CHECKS["fig4"](figure) == []


def test_fig5_expectations():
    figure = figures.fig5(duration=DURATION, seed=SEED)
    assert CHECKS["fig5"](figure) == []


def test_fig6_expectations():
    figure = figures.fig6(
        duration=DURATION, seed=SEED, errors=[0.0, 0.3, 0.5]
    )
    assert CHECKS["fig6"](figure) == []


def test_fig7_expectations():
    figure = figures.fig7(
        duration=DURATION, seed=SEED, errors=[0.0, 0.3, 0.5]
    )
    assert CHECKS["fig7"](figure) == []
