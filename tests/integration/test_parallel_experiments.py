"""Integration tests: parallel drivers are bit-identical to serial.

The determinism contract (docs/PERFORMANCE.md): every experiment driver
derives each cell's full configuration — seed included — before any cell
runs, so the result set is a pure function of the inputs and must not
depend on the worker count or on completion order.
"""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import SimulationConfig
from repro.experiments.grid import run_grid
from repro.experiments.runner import (
    compare_policies,
    run_replications,
    sweep,
)

QUICK = SimulationConfig(policy="RR", duration=600.0, seed=11)

GRID_AXES = {
    "policy": ["RR", "DAL", "PRR2-TTL/K", "DRR2-TTL/S_K"],
    "heterogeneity": [20, 50],
}


def _exact_metrics(result):
    """Every raw measurement that downstream metrics derive from."""
    return (
        result.policy,
        result.max_utilization_samples,
        result.mean_utilization_per_server,
        result.dns_resolutions,
        result.total_hits,
        result.total_sessions,
        result.mean_granted_ttl,
    )


class TestGridParallelism:
    def test_eight_cells_identical_across_worker_counts(self):
        serial = run_grid(QUICK, GRID_AXES, workers=1)
        parallel = run_grid(QUICK, GRID_AXES, workers=4)
        assert len(serial) == len(parallel) == 8
        for (params_a, result_a), (params_b, result_b) in zip(
            serial.cells, parallel.cells
        ):
            assert params_a == params_b
            assert _exact_metrics(result_a) == _exact_metrics(result_b)

    def test_pivot_identical_across_worker_counts(self):
        serial = run_grid(QUICK, GRID_AXES, workers=1)
        parallel = run_grid(QUICK, GRID_AXES, workers=2)
        assert serial.pivot("policy", "heterogeneity") == parallel.pivot(
            "policy", "heterogeneity"
        )

    def test_execution_stats_attached(self):
        grid = run_grid(QUICK, {"heterogeneity": [20, 50]}, workers=2)
        assert grid.execution is not None
        assert grid.execution.workers == 2
        assert grid.execution.cell_count == 2
        assert grid.execution.wall_time > 0

    def test_progress_fires_for_every_cell(self):
        seen = []
        run_grid(
            QUICK, {"heterogeneity": [20, 50]},
            progress=seen.append, workers=2,
        )
        assert seen == [{"heterogeneity": 20}, {"heterogeneity": 50}]

    def test_invalid_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            run_grid(QUICK, {"heterogeneity": [20]}, workers=0)


class TestRunnerParallelism:
    def test_replications_identical_across_worker_counts(self):
        serial = run_replications(QUICK, replications=3, workers=1)
        parallel = run_replications(QUICK, replications=3, workers=2)
        assert serial.replication_count == parallel.replication_count == 3
        for a, b in zip(serial.results, parallel.results):
            assert _exact_metrics(a) == _exact_metrics(b)
        assert serial.prob_max_below() == parallel.prob_max_below()
        assert parallel.execution is not None
        assert parallel.execution.workers == 2

    def test_sweep_identical_across_worker_counts(self):
        values = [20, 35, 50]
        serial = sweep(QUICK, "heterogeneity", values, workers=1)
        parallel = sweep(QUICK, "heterogeneity", values, workers=2)
        assert [(v, m) for v, m, _ in serial] == [
            (v, m) for v, m, _ in parallel
        ]
        for (_, _, a), (_, _, b) in zip(serial, parallel):
            assert _exact_metrics(a) == _exact_metrics(b)

    def test_sweep_metric_lambda_allowed_with_workers(self):
        # Metrics run in the parent process, so unpicklable callables
        # are fine even under workers > 1.
        rows = sweep(
            QUICK, "heterogeneity", [20, 50],
            metric=lambda r: r.mean_max_utilization, workers=2,
        )
        assert len(rows) == 2

    def test_compare_identical_across_worker_counts(self):
        policies = ["RR", "DAL", "DRR2-TTL/S_K"]
        serial = compare_policies(QUICK, policies, workers=1)
        parallel = compare_policies(QUICK, policies, workers=2)
        assert list(serial) == list(parallel) == policies
        for policy in policies:
            assert _exact_metrics(serial[policy]) == _exact_metrics(
                parallel[policy]
            )

    def test_invalid_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            run_replications(QUICK, replications=2, workers=-1)


class TestCliWorkers:
    def test_compare_with_workers(self, capsys):
        from repro.cli import main

        code = main(
            ["compare", "RR", "DAL", "--duration", "600", "--workers", "2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "speedup vs serial" in out

    def test_grid_with_workers_matches_serial_output(self, capsys):
        from repro.cli import main

        argv = [
            "grid", "--rows", "policy=RR,DAL",
            "--cols", "heterogeneity=20,50", "--duration", "600",
        ]
        assert main(argv + ["--workers", "1"]) == 0
        serial_out = capsys.readouterr().out
        assert main(argv + ["--workers", "2"]) == 0
        parallel_out = capsys.readouterr().out
        # The pivot table (everything before the timing block) is
        # identical; timing lines are run-dependent by nature.
        assert parallel_out.startswith(serial_out.rstrip("\n"))

    def test_serial_invocation_prints_no_timing_block(self, capsys):
        from repro.cli import main

        assert main(["compare", "RR", "--duration", "600"]) == 0
        assert "speedup" not in capsys.readouterr().out
