"""End-to-end policy-ordering tests — the paper's headline claims.

Each test runs moderate-length simulations (30-60 simulated minutes) at a
fixed seed and asserts the *qualitative* relationships the paper reports.
Margins are generous: single short runs are noisy, and the claims tested
are about clear separations, not ties.
"""

import pytest

from repro.experiments.config import SimulationConfig
from repro.experiments.runner import compare_policies
from repro.experiments.simulation import run_simulation

DURATION = 2400.0


def prob(policy, seed=11, threshold=0.98, **overrides):
    config = SimulationConfig(
        policy=policy, duration=DURATION, seed=seed, **overrides
    )
    return run_simulation(config).prob_max_below(threshold)


class TestHeadlineOrdering:
    """Fig. 1/2 core claims at moderate heterogeneity."""

    def test_adaptive_ttl_beats_plain_rr(self):
        rr = prob("RR")
        adaptive = prob("DRR2-TTL/S_K")
        assert adaptive > rr + 0.3

    def test_full_adaptation_near_ideal(self):
        ideal = prob("IDEAL")
        adaptive = prob("DRR2-TTL/S_K")
        assert adaptive > ideal - 0.15

    def test_server_only_adaptation_is_weak(self):
        """TTL/S_1 'does not improve performance much with respect to RR'."""
        s1 = prob("DRR2-TTL/S_1")
        sk = prob("DRR2-TTL/S_K")
        assert sk > s1 + 0.2

    def test_probabilistic_routing_alone_insufficient(self):
        """PRR-TTL/1 is clearly below the adaptive probabilistic schemes."""
        constant = prob("PRR-TTL/1", heterogeneity=35)
        adaptive = prob("PRR-TTL/K", heterogeneity=35)
        assert adaptive > constant + 0.2

    def test_two_tier_helps(self):
        """RR2-based strategies are better than RR-based counterparts."""
        rr_based = prob("DRR-TTL/S_K")
        rr2_based = prob("DRR2-TTL/S_K")
        assert rr2_based > rr_based - 0.08

    def test_ttl2_between_constant_and_ttlk(self):
        constant = prob("PRR2-TTL/1", heterogeneity=35)
        two = prob("PRR2-TTL/2", heterogeneity=35)
        full = prob("PRR2-TTL/K", heterogeneity=35)
        assert two > constant
        assert full > two - 0.08


class TestHeterogeneitySensitivity:
    """Fig. 3 claims."""

    def test_adaptive_stable_across_heterogeneity(self):
        values = [
            prob("DRR2-TTL/S_K", heterogeneity=level)
            for level in (20, 50, 65)
        ]
        assert min(values) > 0.55

    def test_rr_poor_at_every_level(self):
        values = [prob("RR", heterogeneity=level) for level in (20, 65)]
        assert max(values) < 0.45

    def test_deterministic_vs_probabilistic_gap_shrinks(self):
        """'The difference tends to diminish when heterogeneity increases'
        — at least, the deterministic advantage must not explode."""
        gap_low = prob("DRR2-TTL/S_K", heterogeneity=20) - prob(
            "PRR2-TTL/K", heterogeneity=20
        )
        gap_high = prob("DRR2-TTL/S_K", heterogeneity=65) - prob(
            "PRR2-TTL/K", heterogeneity=65
        )
        assert gap_high < gap_low + 0.25


class TestMinTtlRobustness:
    """Fig. 4/5 claims."""

    def test_drr2_sk_degrades_with_min_ttl(self):
        free = prob("DRR2-TTL/S_K", heterogeneity=50)
        clamped = prob("DRR2-TTL/S_K", heterogeneity=50, min_accepted_ttl=120.0)
        assert clamped < free - 0.2

    def test_prr2_k_more_robust_than_drr2_sk_at_high_het(self):
        drr_drop = prob("DRR2-TTL/S_K", heterogeneity=50) - prob(
            "DRR2-TTL/S_K", heterogeneity=50, min_accepted_ttl=120.0
        )
        prr_drop = prob("PRR2-TTL/K", heterogeneity=50) - prob(
            "PRR2-TTL/K", heterogeneity=50, min_accepted_ttl=120.0
        )
        assert prr_drop < drr_drop + 0.05

    def test_prr2_ttl2_flat_below_its_hot_ttl(self):
        free = prob("PRR2-TTL/2")
        clamped = prob("PRR2-TTL/2", min_accepted_ttl=60.0)
        assert abs(free - clamped) < 0.12


class TestEstimationErrorRobustness:
    """Fig. 6/7 claims."""

    def test_ttlk_robust_to_error(self):
        clean = prob("DRR2-TTL/S_K", heterogeneity=50)
        noisy = prob("DRR2-TTL/S_K", heterogeneity=50, workload_error=0.3)
        assert noisy > clean - 0.2

    def test_ttl2_degrades_substantially_at_high_het_and_error(self):
        noisy_two = prob("PRR2-TTL/2", heterogeneity=50, workload_error=0.4)
        noisy_full = prob("PRR2-TTL/K", heterogeneity=50, workload_error=0.4)
        assert noisy_full > noisy_two + 0.1

    def test_error_increases_skew_hence_hurts(self):
        clean = prob("PRR2-TTL/2", heterogeneity=50)
        noisy = prob("PRR2-TTL/2", heterogeneity=50, workload_error=0.5)
        assert noisy < clean


class TestCommonRandomNumbers:
    def test_compare_policies_uses_common_scenario(self):
        base = SimulationConfig(policy="RR", duration=600.0, seed=3)
        results = compare_policies(base, ["RR", "DAL"])
        assert set(results) == {"RR", "DAL"}
        assert results["RR"].config.seed == results["DAL"].config.seed
