"""Eager vs sharded (lazy) client populations are bit-identical.

The sharded population is not an approximation: per configuration it
must replay the eager generator's RNG draw order exactly, so results,
metrics, and mid-run checkpoint digests agree value-for-value in both
engine modes.  These named configurations pin the feature dimensions
that could plausibly diverge — adaptive TTL policies with non-oracle
estimators, domain rotation, client address caching, geography, and
multi-nameserver resolution.
"""

import dataclasses
import json

import pytest

from repro.experiments.config import SimulationConfig
from repro.experiments.simulation import Simulation, run_simulation
from repro.sim.checkpoint import state_digest

#: The golden-trajectory configuration (tests/fixtures) plus one named
#: config per feature dimension.  Keys are test ids.
CONFIGS = {
    "golden": dict(
        policy="DRR2-TTL/S_K",
        duration=600.0,
        seed=97,
        heterogeneity=50,
        domain_count=10,
        total_clients=120,
        estimator="measured",
        trace=True,
        keep_utilization_series=True,
    ),
    "rotation": dict(
        policy="PRR-TTL/K",
        duration=400.0,
        seed=11,
        hot_rotation_interval=120.0,
        hot_rotation_count=4,
    ),
    "caching": dict(
        policy="RR",
        duration=400.0,
        seed=23,
        client_address_caching=True,
    ),
    "estimator-window": dict(
        policy="MRL",
        duration=400.0,
        seed=31,
        workload_error=0.3,
        estimator="window",
    ),
    "multi-ns": dict(
        policy="DAL",
        duration=400.0,
        seed=41,
        nameservers_per_domain=2,
        min_accepted_ttl=60.0,
    ),
}


def fingerprint(result) -> str:
    """Exact serialized result, minus the population selector itself.

    The embedded config echoes ``population`` back, which differs by
    construction; every behavioral field must still match exactly.
    """
    data = dataclasses.asdict(result)
    data["config"].pop("population", None)
    return json.dumps(data, sort_keys=True, default=repr)


@pytest.mark.parametrize("name", sorted(CONFIGS))
@pytest.mark.parametrize("mode", ["event", "fastforward"])
def test_results_bit_identical(name, mode):
    results = {}
    for population in ("eager", "lazy"):
        config = SimulationConfig(population=population, **CONFIGS[name])
        results[population] = run_simulation(config, engine_mode=mode)
    assert fingerprint(results["eager"]) == fingerprint(results["lazy"])
    assert results["eager"].total_sessions > 0


@pytest.mark.parametrize("mode", ["event", "fastforward"])
def test_midrun_digests_identical(mode):
    """Checkpoint digests agree at every cut, not just at the finish."""
    digests = {}
    for population in ("eager", "lazy"):
        config = SimulationConfig(population=population, **CONFIGS["golden"])
        sim = Simulation(config, engine_mode=mode)
        cuts = []
        for t in (150.0, 300.0, 450.0, 600.0):
            sim.advance(t)
            cuts.append(state_digest(sim.snapshot_state()))
        digests[population] = cuts
    assert digests["eager"] == digests["lazy"]


def test_auto_population_resolves_by_scale():
    small = SimulationConfig(total_clients=120)
    assert small.effective_population() == "eager"
    large = SimulationConfig(total_clients=200_000, domain_count=1000)
    assert large.effective_population() == "lazy"
    forced = SimulationConfig(total_clients=120, population="lazy")
    assert forced.effective_population() == "lazy"


def test_workload_info_reports_population():
    config = SimulationConfig(
        duration=120.0, population="lazy", shard_size=32
    )
    sim = Simulation(config)
    sim.run()
    info = sim.workload_info
    assert info["source"] == "synthetic"
    assert info["population"] == "ShardedClientPopulation"
    assert info["shards"]["shard_size"] == 32
