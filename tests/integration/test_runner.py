"""Integration tests for the replication/sweep runner."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import SimulationConfig
from repro.experiments.runner import (
    ReplicationSet,
    run_replications,
    sweep,
)

BASE = SimulationConfig(policy="RR", duration=600.0, seed=4)


class TestReplications:
    def test_runs_requested_count(self):
        replication_set = run_replications(BASE, replications=3)
        assert replication_set.replication_count == 3

    def test_replications_use_distinct_seeds(self):
        replication_set = run_replications(BASE, replications=3)
        seeds = {result.config.seed for result in replication_set.results}
        assert len(seeds) == 3

    def test_replications_deterministic(self):
        first = run_replications(BASE, replications=2)
        second = run_replications(BASE, replications=2)
        assert [r.total_hits for r in first.results] == [
            r.total_hits for r in second.results
        ]

    def test_pooled_cdf_pools_samples(self):
        replication_set = run_replications(BASE, replications=2)
        pooled = replication_set.pooled_cdf()
        assert pooled.sample_count == sum(
            len(r.max_utilization_samples) for r in replication_set.results
        )

    def test_prob_max_below_ci(self):
        replication_set = run_replications(BASE, replications=3)
        mean, half = replication_set.prob_max_below_ci(0.9)
        assert 0.0 <= mean <= 1.0
        assert half >= 0.0

    def test_single_replication_zero_halfwidth(self):
        replication_set = run_replications(BASE, replications=1)
        _, half = replication_set.prob_max_below_ci()
        assert half == 0.0

    def test_zero_replications_rejected(self):
        with pytest.raises(ConfigurationError):
            run_replications(BASE, replications=0)


class TestSweep:
    def test_sweep_over_heterogeneity(self):
        rows = sweep(BASE, "heterogeneity", [20, 50])
        assert [value for value, _, _ in rows] == [20, 50]
        for _, metric_value, result in rows:
            assert 0.0 <= metric_value <= 1.0
            assert result.total_hits > 0

    def test_sweep_custom_metric(self):
        rows = sweep(
            BASE, "heterogeneity", [20],
            metric=lambda result: result.mean_max_utilization,
        )
        assert rows[0][1] == pytest.approx(
            rows[0][2].mean_max_utilization
        )

    def test_sweep_applies_parameter(self):
        rows = sweep(BASE, "min_accepted_ttl", [0.0, 120.0])
        assert rows[0][2].config.min_accepted_ttl == 0.0
        assert rows[1][2].config.min_accepted_ttl == 120.0
